//! # gridscale
//!
//! A reproduction of **“Measuring Scalability of Resource Management
//! Systems”** (A. Mitra, M. Maheswaran, S. Ali — IPDPS 2005): an
//! isoefficiency-based scalability metric for the resource-management
//! component of managed distributed systems, evaluated by discrete-event
//! simulation of seven Grid RMS models.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | Role |
//! |---|---|
//! | [`desim`] | deterministic discrete-event simulation kernel |
//! | [`topology`] | Internet-like topology generation + link-state routing |
//! | [`workload`] | synthetic moldable supercomputer workloads |
//! | [`gridsim`] | the managed-Grid model (resources, schedulers, estimators) |
//! | [`rms`] | the seven RMS policies (CENTRAL, LOWEST, …, Sy-I) |
//! | [`core`] | the scalability metric and measurement procedure |
//!
//! ## Quickstart
//!
//! ```
//! use gridscale::prelude::*;
//!
//! // A small Grid: 60 nodes, 5 scheduler clusters, default workload.
//! let cfg = GridConfig {
//!     nodes: 60,
//!     schedulers: 5,
//!     workload: WorkloadConfig {
//!         arrival_rate: 0.02,
//!         duration: SimTime::from_ticks(10_000),
//!         ..WorkloadConfig::default()
//!     },
//!     ..GridConfig::default()
//! };
//!
//! // Run the LOWEST policy (Zhou's random-polling load balancer).
//! let mut policy = RmsKind::Lowest.build();
//! let report = run_simulation(&cfg, policy.as_mut());
//! assert!(report.completed > 0);
//! assert!(report.efficiency > 0.0 && report.efficiency < 1.0);
//! ```
//!
//! ## Measuring scalability
//!
//! The paper's four-step procedure is one call:
//!
//! ```no_run
//! use gridscale::prelude::*;
//!
//! let opts = MeasureOptions::default();                  // k = 1..6
//! let curve = measure_rms(RmsKind::Lowest, CaseId::NetworkSize, &opts);
//! println!("G(k) slopes: {:?}", curve.g_slopes());       // the metric
//! println!("verdict: {:?}", curve.verdict().scalable_through);
//! ```

pub use gridscale_core as core;
pub use gridscale_desim as desim;
pub use gridscale_gridsim as gridsim;
pub use gridscale_rms as rms;
pub use gridscale_topology as topology;
pub use gridscale_workload as workload;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use gridscale_core::jogalekar::ProductivityModel;
    pub use gridscale_core::sensitivity::{cost_sensitivity, verdict_stability};
    pub use gridscale_core::{
        anneal, anneal_batch, config_for, measure_all, measure_all_with_bench, measure_rms,
        measure_rms_with_bench, probe_replication_speedup, rep_stats, resolve_e0, t_critical_975,
        tune_point, AnnealConfig, BatchAnnealConfig, CaseId, CurvePoint, E0Mode, EnergyPool,
        IsoefficiencyModel, MeasureOptions, PointBench, Preset, RepProbe, RepStats,
        ReplicationMode, ScalabilityCurve, ScalabilityVerdict, TuningBench, VerdictConfidence,
    };
    pub use gridscale_desim::{QueueDiscipline, QueueTelemetry, SimRng, SimTime};
    pub use gridscale_gridsim::{
        run_simulation, BandwidthConfig, Clock, Comms, Ctx, Dispatch, Enablers, GridConfig,
        OverheadCosts, Policy, PolicyMsg, QueueSummary, ReplayStats, ShardSummary, SimReport,
        SimTemplate, Telemetry, Thresholds, Timeline, Timers, TopologySpec,
    };
    pub use gridscale_rms::{RmsKind, RmsPolicy};
    pub use gridscale_topology::{generate, Graph, GridMap, NodeRole, RoutingTable};
    pub use gridscale_workload::{
        analyze_trace, DependencyGraph, ExecTimeModel, Job, JobClass, JobTrace, TraceStats,
        WorkloadConfig,
    };
}
