//! The `gridscale` command-line interface.
//!
//! ```text
//! gridscale run     --model LOWEST [--nodes 170] [--schedulers 8] [--rate 0.08]
//!                   [--duration 60000] [--seed 7] [--estimators 0] [--json]
//! gridscale measure --model LOWEST --case 1 [--quick|--paper] [--kmax 6]
//!                   [--iters 40] [--seed 7] [--threads 0] [--batch 4]
//!                   [--shards 1|auto] [--no-warm] [--bw [0.05]]
//!                   [--replications 1] [--rep-mode fresh|shared]
//!                   [--rep-probe [16]]
//!                   [--bench-out BENCH_tuning.json] [--json]
//! gridscale bench-sim [--model LOWEST] [--reps 5] [--kmax 16]
//!                   [--out BENCH_sim.json]
//! gridscale bench-sim --shards 4|auto [--model LOWEST] [--reps 3] [--kmax 4]
//!                   [--mega 1000000] [--out BENCH_shard.json]
//! gridscale bench-sim --bw [0.05] [--model LOWEST] [--reps 3] [--kmax 8]
//!                   [--out BENCH_net.json]
//! gridscale trace   [--rate 0.05] [--duration 20000] [--seed 7] [--swf]
//! gridscale topo    --kind ba|waxman|ts [--nodes 300] [--seed 7]
//! gridscale models
//! gridscale audit   [--root DIR] [--json REPORT.json] [--sarif REPORT.sarif]
//!                   [--deny-warnings] [--no-call-graph] [--no-baseline]
//!                   [--baseline FILE] [--write-baseline]
//! ```
//!
//! `run` simulates one configuration; `measure` executes the paper's full
//! four-step scalability procedure — `--replications N` replicates every
//! tuned point N× (`--rep-mode shared` replays one pooled world with
//! per-replication RNG streams; `fresh`, the default, rebuilds a world
//! per replicate) and reports 95% confidence intervals on every curve
//! value and verdict margin, while `--rep-probe [N]` times the
//! sequential fresh-world loop against the parallel shared-world fan-out
//! and records the speedup in `BENCH_tuning.json`; `bench-sim` times
//! clone-per-run world
//! rebuilding against zero-clone shared-template replay (under both `dyn`
//! and enum policy dispatch, plus a forced binary-heap event queue as the
//! ladder-queue baseline) and writes `BENCH_sim.json`; `bench-sim
//! --shards N` (or `auto`, deferring the split to the topology-aware
//! planner) instead times the sharded conservative-parallel executor
//! against the sequential replay on large grids (asserting bit-identical
//! fingerprints) and writes `BENCH_shard.json` with per-shard hot-state
//! footprints, optionally proving a `--mega`-node shared world builds
//! with O(world) mutable memory; `bench-sim --bw`
//! sweeps link capacity down on a fixed grid under the bandwidth-aware
//! flow model, asserting the sharded executor reproduces every contended
//! run bit-for-bit and that the measured transfer share of `H` grows as
//! capacity shrinks, and writes `BENCH_net.json` (a Case-4 before/after
//! pair shows how much overhead the legacy constant model hid); `trace`
//! generates (optionally SWF) workloads; `topo`
//! generates a topology and prints its structural metrics; `models` lists
//! the RMS models; `audit` runs the workspace determinism linter in
//! call-graph mode (rules D1–D9 plus cross-file taint flow, checked
//! against the committed `audit-baseline.toml`; `--no-call-graph` for
//! per-file-only linting — see the `gridscale-audit` crate and
//! DESIGN.md §6.4).

use gridscale::prelude::*;
use std::collections::HashMap;
use std::process::exit;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            let val = args
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| "true".to_string());
            if val != "true" {
                i += 1;
            }
            out.insert(key.to_string(), val);
        } else {
            eprintln!("unexpected argument: {a}");
            exit(2);
        }
        i += 1;
    }
    out
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--{key}: cannot parse '{v}'");
            exit(2);
        }),
    }
}

/// Parses `--shards`: a positive count, or `auto` → the `0` sentinel
/// [`MeasureOptions::shards`] and the shard bench understand as "pick
/// shards and workers from the topology and the host core count".
fn shards_flag(flags: &HashMap<String, String>, default: usize) -> usize {
    match flags.get("shards").map(String::as_str) {
        Some("auto") => 0,
        _ => get(flags, "shards", default).max(1),
    }
}

/// Parses `--bw`: bare (default capacity scale 0.05) or an explicit
/// scale, with `--bw-paths` picking the virtual-link fan-out. `None` when
/// absent — each scaling case then keeps its own bandwidth default.
fn bw_flag(flags: &HashMap<String, String>) -> Option<BandwidthConfig> {
    let v = flags.get("bw")?;
    let capacity_scale = if v == "true" {
        0.05
    } else {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--bw: cannot parse '{v}' as a capacity scale");
            exit(2);
        })
    };
    Some(BandwidthConfig {
        enabled: true,
        capacity_scale,
        k_paths: get(flags, "bw-paths", 2usize).max(1),
    })
}

fn model_of(flags: &HashMap<String, String>) -> RmsKind {
    let name = flags.get("model").map(String::as_str).unwrap_or("LOWEST");
    RmsKind::from_name(name).unwrap_or_else(|| {
        eprintln!("unknown model '{name}'; try `gridscale models`");
        exit(2);
    })
}

fn cmd_models() {
    println!("paper models:");
    for k in RmsKind::ALL {
        println!(
            "  {:<8} {}",
            k.name(),
            if k.uses_middleware() {
                "(middleware family)"
            } else if k.is_centralized() {
                "(centralized)"
            } else {
                ""
            }
        );
    }
    println!("extensions:\n  HIER     (two-level scheduler hierarchy)");
}

fn cmd_run(flags: HashMap<String, String>) {
    let kind = model_of(&flags);
    let nodes = get(&flags, "nodes", 170usize);
    let schedulers = get(
        &flags,
        "schedulers",
        if kind.is_centralized() {
            1
        } else {
            (nodes / 16).max(2)
        },
    );
    let cfg = GridConfig {
        nodes,
        schedulers,
        estimators: get(&flags, "estimators", 0usize),
        workload: WorkloadConfig {
            arrival_rate: get(&flags, "rate", 0.08),
            duration: SimTime::from_ticks(get(&flags, "duration", 60_000u64)),
            ..WorkloadConfig::default()
        },
        seed: get(&flags, "seed", 7u64),
        dag_edge_prob: get(&flags, "dag", 0.0),
        ..GridConfig::default()
    };
    if let Err(e) = cfg.validate() {
        eprintln!("invalid configuration: {e}");
        exit(2);
    }
    let mut policy = kind.build();
    let r = run_simulation(&cfg, policy.as_mut());
    if flags.contains_key("json") {
        println!("{}", serde_json::to_string_pretty(&r).unwrap());
        return;
    }
    println!("{} on {} nodes / {} clusters", r.policy, nodes, schedulers);
    println!(
        "jobs {} | completed {} | success {:.1}% | resp {:.0} (p95 {:.0})",
        r.jobs_total,
        r.completed,
        100.0 * r.success_rate(),
        r.mean_response,
        r.p95_response
    );
    println!(
        "F {:.3e} | G {:.3e} | H {:.3e} | E {:.3} | bottleneck {:.1}%",
        r.f_work,
        r.g_overhead,
        r.h_overhead,
        r.efficiency,
        100.0 * r.bottleneck_utilization()
    );
}

fn cmd_measure(flags: HashMap<String, String>) {
    let kind = model_of(&flags);
    let case = match get(&flags, "case", 1u32) {
        1 => CaseId::NetworkSize,
        2 => CaseId::ServiceRate,
        3 => CaseId::Estimators,
        4 => CaseId::Lp,
        5 => CaseId::Bandwidth,
        other => {
            eprintln!("--case must be 1..5, got {other}");
            exit(2);
        }
    };
    let preset = if flags.contains_key("paper") {
        Preset::Paper
    } else {
        Preset::Quick
    };
    let kmax = get(&flags, "kmax", 6u32).max(1);
    let replication_mode = match flags.get("rep-mode").map(String::as_str) {
        None | Some("fresh") => ReplicationMode::FreshWorld,
        Some("shared") => ReplicationMode::SharedWorld,
        Some(other) => {
            eprintln!("--rep-mode must be fresh|shared, got {other}");
            exit(2);
        }
    };
    let opts = MeasureOptions {
        ks: (1..=kmax).collect(),
        preset,
        anneal: AnnealConfig {
            iterations: get(&flags, "iters", 40usize),
            ..AnnealConfig::default()
        },
        seed: get(&flags, "seed", 0x15_0EFFu64),
        replications: get(&flags, "replications", 1usize).max(1),
        replication_mode,
        threads: get(&flags, "threads", 0usize),
        shards: shards_flag(&flags, 1),
        batch: get(&flags, "batch", 4usize).max(1),
        warm_start: !flags.contains_key("no-warm"),
        bandwidth: bw_flag(&flags),
        ..MeasureOptions::default()
    };
    let (curve, mut bench) = measure_rms_with_bench(kind, case, &opts);
    if let Some(v) = flags.get("rep-probe") {
        let probe_reps = if v == "true" {
            16
        } else {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--rep-probe: cannot parse '{v}' as a replication count");
                exit(2);
            })
        };
        let probe_threads = if opts.threads == 0 {
            std::thread::available_parallelism().map_or(1, |c| c.get())
        } else {
            opts.threads
        };
        let probe = probe_replication_speedup(kind, case, kmax, probe_reps, probe_threads, &opts);
        eprintln!(
            "replication probe @ k={kmax}: {} reps — fresh sequential {:.1} ms ({} worlds) | shared ×{} threads {:.1} ms (1 world) | speedup {:.2}x | G {:.3e}±{:.1e}",
            probe.replications,
            probe.fresh_sequential_ms,
            probe.fresh_templates_built,
            probe.threads,
            probe.shared_parallel_ms,
            probe.speedup,
            probe.g_mean_shared,
            probe.g_ci_shared
        );
        bench.replication = Some(probe);
    }
    let bench_path = flags
        .get("bench-out")
        .cloned()
        .unwrap_or_else(|| "BENCH_tuning.json".to_string());
    match std::fs::write(&bench_path, serde_json::to_string_pretty(&bench).unwrap()) {
        Ok(()) => eprintln!(
            "tuning bench → {bench_path}: {} points, {} simulations, {:.0} ms total",
            bench.points.len(),
            bench.total_evaluations(),
            bench.total_wall_ms()
        ),
        Err(e) => eprintln!("cannot write {bench_path}: {e}"),
    }
    if flags.contains_key("json") {
        println!("{}", serde_json::to_string_pretty(&curve).unwrap());
        return;
    }
    println!(
        "{} — case {} ({:?}), E0 = {:.3}",
        kind.name(),
        case.number(),
        preset,
        curve.e0
    );
    if opts.replications > 1 {
        println!(
            "{:>3} {:>12} {:>10} {:>8} {:>8} {:>7} {:>8} {:>5}",
            "k", "G(k)", "±95%", "g(k)", "f(k)", "E", "±95%", "band"
        );
        for (p, n) in curve.points.iter().zip(curve.normalized()) {
            println!(
                "{:>3} {:>12.4e} {:>10.2e} {:>8.2} {:>8.2} {:>7.3} {:>8.1e} {:>5}",
                p.k,
                p.g,
                p.g_ci,
                n.g,
                n.f,
                p.efficiency,
                p.efficiency_ci,
                if p.feasible { "in" } else { "OUT" }
            );
        }
    } else {
        println!(
            "{:>3} {:>12} {:>8} {:>8} {:>7} {:>5}",
            "k", "G(k)", "g(k)", "f(k)", "E", "band"
        );
        for (p, n) in curve.points.iter().zip(curve.normalized()) {
            println!(
                "{:>3} {:>12.4e} {:>8.2} {:>8.2} {:>7.3} {:>5}",
                p.k,
                p.g,
                n.g,
                n.f,
                p.efficiency,
                if p.feasible { "in" } else { "OUT" }
            );
        }
    }
    let v = curve.verdict();
    // `?` marks a fragile check: the margin's 95% CI straddles the
    // Eq. (2) boundary, so the boolean is within replication noise.
    println!(
        "Eq.(2) margins: {:?}",
        v.margins
            .iter()
            .zip(&v.margin_cis)
            .zip(&v.confidence)
            .map(|(((k, m), (_, hw)), (_, c))| format!(
                "k={k}:{m:+.2}±{hw:.2}{}",
                if *c == VerdictConfidence::Fragile {
                    "?"
                } else {
                    ""
                }
            ))
            .collect::<Vec<_>>()
    );
    println!(
        "scalable through k = {}",
        v.scalable_through
            .map(|k| k.to_string())
            .unwrap_or_else(|| "-".into())
    );
}

/// The scaled point the `sim_replay` criterion bench uses: `k` multiplies
/// the pool size and the offered load together (the paper's Case 1 shape).
fn bench_sim_point(k: usize, centralized: bool) -> GridConfig {
    let nodes = 20 * k;
    GridConfig {
        nodes,
        schedulers: if centralized { 1 } else { (nodes / 10).max(2) },
        estimators: 0,
        workload: WorkloadConfig {
            arrival_rate: 0.012 * k as f64,
            duration: SimTime::from_ticks(3_000),
            ..WorkloadConfig::default()
        },
        drain: SimTime::from_ticks(5_000),
        seed: 0xBEEF + k as u64,
        ..GridConfig::default()
    }
}

/// Runs `body` `reps` times and returns the mean wall-clock seconds per
/// repetition. The CLI's only stopwatch: simulation *results* must never
/// depend on it — it feeds the timing columns of `bench-sim` and nothing
/// else, which is why the wall-clock opt-out lives here and not at the
/// call sites.
fn timed<F: FnMut()>(reps: usize, mut body: F) -> f64 {
    // audit:allow(wall-clock, reason="bench-sim stopwatch; timing telemetry only, never feeds sim state")
    let t = std::time::Instant::now();
    for _ in 0..reps {
        body();
    }
    t.elapsed().as_secs_f64() / reps as f64
}

/// The scaled point of the shard bench: grids big enough that parallel
/// event processing pays. `k` multiplies the pool and the offered load
/// together; nodes = 2_500·k, so `k = 4` crosses the 10⁴-node line the
/// conservative executor targets. Scheduler clusters follow the
/// large-grid sizing rule nodes/64, capped at 256.
fn bench_shard_point(k: usize) -> GridConfig {
    let nodes = 2_500 * k;
    GridConfig {
        nodes,
        schedulers: (nodes / 64).clamp(2, 256),
        estimators: 2,
        // Transit-stub is the realistic shape for sharding: stub-local
        // traffic is short-haul, transit crossings are long, so the
        // latency-aware planner gets a real lookahead window to find.
        topology: TopologySpec::TransitStub,
        workload: WorkloadConfig {
            arrival_rate: 0.25 * k as f64,
            duration: SimTime::from_ticks(8_000),
            ..WorkloadConfig::default()
        },
        drain: SimTime::from_ticks(12_000),
        seed: 0x5AA5 + k as u64,
        ..GridConfig::default()
    }
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`);
/// `None` where `/proc` is unavailable. Bench telemetry only.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// `bench-sim --shards N`: times the sharded conservative-parallel
/// executor against the sequential replay of the same template, asserting
/// the event fingerprints agree bit-for-bit, and writes the speedup plus
/// the barrier/idle telemetry to `BENCH_shard.json`. With `--mega N` it
/// additionally builds an N-node shared world (and drives one short
/// sharded replay over it) to pin the memory footprint at 10⁵–10⁶ nodes.
fn cmd_bench_shard(flags: HashMap<String, String>) {
    let kind = model_of(&flags);
    // `--shards auto` (0) defers the split to `ShardPlan::auto`: the
    // widest-lookahead plan the topology and host core count allow.
    let shards = shards_flag(&flags, 4);
    let auto = shards == 0;
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    // Extra workers beyond the physical cores only add scheduling churn;
    // --workers overrides for overload experiments.
    let workers = get(&flags, "workers", shards.min(cores)).max(1);
    let reps = get(&flags, "reps", 3usize).max(1);
    let kmax = get(&flags, "kmax", 4usize).max(1);
    let mega = get(&flags, "mega", 0usize);
    let mut rows = Vec::new();
    for &k in [1usize, 2, 4, 8, 16].iter().filter(|&&k| k <= kmax) {
        let cfg = bench_shard_point(k);
        let template = SimTemplate::new(&cfg);
        // Reference run: fixes the fingerprint every timed replay — and
        // every sharded replay — must reproduce exactly.
        let report = template.run(cfg.enablers, &mut kind.build_static());
        let events = report.events_processed;
        let fp = report.event_fingerprint;

        let seq_s = timed(reps, || {
            let r = template.run(cfg.enablers, &mut kind.build_static());
            assert_eq!(r.event_fingerprint, fp, "sequential replay diverged");
        });

        let mut summary = None;
        let shard_s = timed(reps, || {
            let (r, s) = if auto {
                template.run_sharded_auto(cfg.enablers, || kind.build_static())
            } else {
                template.run_sharded(cfg.enablers, || kind.build_static(), shards, workers)
            };
            assert_eq!(
                r.event_fingerprint, fp,
                "sharded replay diverged from sequential"
            );
            assert_eq!(r.events_processed, events, "sharded event count diverged");
            summary = Some(s);
        });
        let summary = summary.expect("at least one timed repetition");
        // The 1-shard replay of the same template pins `hot_bytes_solo`:
        // the O(world) mutable floor the sharded total is held against.
        let (solo_r, solo) = template.run_sharded(cfg.enablers, || kind.build_static(), 1, 1);
        assert_eq!(solo_r.event_fingerprint, fp, "solo replay diverged");
        let idle: u64 = summary.idle_windows_per_shard.iter().sum();
        let idle_fraction =
            idle as f64 / (summary.barrier_rounds.max(1) * summary.shards as u64) as f64;
        let speedup = seq_s / shard_s;
        eprintln!(
            "k={:<2} nodes={:<7} clusters={:<3} events={:<9} seq {:>8.1} ms | {} shards {:>8.1} ms ({:>4.2}x) | window {} | rounds {} | idle {:>4.1}% | {:.2e} ev/s | hot {:.2}/{:.2} MB",
            k,
            cfg.nodes,
            template.cluster_count(),
            events,
            seq_s * 1e3,
            summary.shards,
            shard_s * 1e3,
            speedup,
            summary.window_ticks,
            summary.barrier_rounds,
            idle_fraction * 100.0,
            events as f64 / shard_s,
            summary.hot_bytes_total as f64 / 1e6,
            solo.hot_bytes_total as f64 / 1e6
        );
        rows.push(serde_json::json!({
            "k": k,
            "nodes": cfg.nodes,
            "clusters": template.cluster_count(),
            "events_processed": events,
            "event_fingerprint": fp,
            "fingerprint_match": true,
            "sequential": {
                "secs_per_run": seq_s,
                "events_per_sec": events as f64 / seq_s,
            },
            "sharded": {
                "secs_per_run": shard_s,
                "events_per_sec": events as f64 / shard_s,
            },
            "speedup": speedup,
            "shards": summary.shards,
            "workers": summary.workers,
            "window_ticks": summary.window_ticks,
            "min_cross_latency": summary.min_cross_latency,
            "barrier_rounds": summary.barrier_rounds,
            "cross_shard_events": summary.cross_shard_events,
            "events_per_shard": summary.events_per_shard,
            "idle_windows_per_shard": summary.idle_windows_per_shard,
            "idle_fraction": idle_fraction,
            "shared_world_bytes": template.shared_world_bytes(),
            "hot_bytes_per_shard": summary.hot_bytes_per_shard,
            "hot_bytes_total": summary.hot_bytes_total,
            "hot_bytes_solo": solo.hot_bytes_total,
            "peak_rss_bytes": peak_rss_bytes(),
        }));
    }

    // The memory-scaling arm: build a mega-node shared world once, prove
    // a sharded replay drives it, and record the footprint.
    let mega_build = if mega > 0 {
        let cfg = GridConfig {
            nodes: mega,
            schedulers: (mega / 64).clamp(2, 256),
            estimators: 2,
            workload: WorkloadConfig {
                arrival_rate: 0.05,
                duration: SimTime::from_ticks(500),
                ..WorkloadConfig::default()
            },
            drain: SimTime::from_ticks(1_000),
            seed: 0x3E6A,
            ..GridConfig::default()
        };
        let mut built = None;
        let build_s = timed(1, || built = Some(SimTemplate::new(&cfg)));
        let template = built.expect("built once");
        // Before/after pair: the 1-shard replay pins the O(world) hot
        // floor, the sharded one must stay within a constant of it now
        // that shard state is lane-scoped.
        let (r1, s1) = template.run_sharded(cfg.enablers, || kind.build_static(), 1, 1);
        let (r, s) = if auto {
            template.run_sharded_auto(cfg.enablers, || kind.build_static())
        } else {
            template.run_sharded(cfg.enablers, || kind.build_static(), shards, workers)
        };
        assert_eq!(
            r.event_fingerprint, r1.event_fingerprint,
            "mega sharded replay diverged from 1-shard"
        );
        eprintln!(
            "mega: built {} nodes / {} clusters in {:.1} s | shared world ≈ {:.1} MB | hot {:.1} MB over {} shards (solo {:.1} MB) | peak RSS {} MB | replay {} events over {} rounds",
            mega,
            template.cluster_count(),
            build_s,
            template.shared_world_bytes() as f64 / 1e6,
            s.hot_bytes_total as f64 / 1e6,
            s.shards,
            s1.hot_bytes_total as f64 / 1e6,
            peak_rss_bytes().map_or("?".into(), |b| format!("{:.0}", b as f64 / 1e6)),
            r.events_processed,
            s.barrier_rounds
        );
        Some(serde_json::json!({
            "nodes": mega,
            "clusters": template.cluster_count(),
            "build_secs": build_s,
            "shared_world_bytes": template.shared_world_bytes(),
            "peak_rss_bytes": peak_rss_bytes(),
            "events_processed": r.events_processed,
            "window_ticks": s.window_ticks,
            "barrier_rounds": s.barrier_rounds,
            "shards": s.shards,
            "hot_bytes_per_shard": s.hot_bytes_per_shard,
            "hot_bytes_total": s.hot_bytes_total,
            "hot_bytes_solo": s1.hot_bytes_total,
        }))
    } else {
        None
    };

    let out = serde_json::json!({
        "model": kind.name(),
        "reps": reps,
        "kmax": kmax,
        "shards": shards,
        "host_cores": cores,
        "points": rows,
        "mega_build": mega_build,
    });
    let path = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_shard.json".to_string());
    match std::fs::write(&path, serde_json::to_string_pretty(&out).unwrap()) {
        Ok(()) => eprintln!("shard bench → {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

/// The fixed grid of the network bench: transit-stub so cross-cluster
/// flows traverse shared trunk links, estimators on so status batches
/// ride the flow path too. The sweep variable is link capacity, not `k`
/// — `scale <= 0` means the bandwidth model stays disabled (the legacy
/// constant-latency baseline).
fn bench_net_point(scale: f64) -> GridConfig {
    let nodes = 640;
    GridConfig {
        nodes,
        schedulers: (nodes / 64).max(2),
        estimators: 2,
        topology: TopologySpec::TransitStub,
        workload: WorkloadConfig {
            arrival_rate: 0.12,
            duration: SimTime::from_ticks(6_000),
            ..WorkloadConfig::default()
        },
        drain: SimTime::from_ticks(9_000),
        seed: 0xBA2D,
        bandwidth: BandwidthConfig {
            enabled: scale > 0.0,
            capacity_scale: if scale > 0.0 { scale } else { 1.0 },
            k_paths: 2,
        },
        ..GridConfig::default()
    }
}

/// `bench-sim --bw`: the bandwidth-aware network stack bench. Sweeps link
/// capacity down `1/k` on a fixed grid, timing the flow-routed replay,
/// counting contention resolutions, and asserting (a) the sharded
/// executor reproduces every contended run bit-for-bit and (b) the
/// measured transfer busy-time grows monotonically as capacity shrinks.
/// A Case-4 before/after pair records how much of the `L_p` experiment's
/// `H(k)` the legacy constant model was hiding. Writes `BENCH_net.json`.
fn cmd_bench_net(flags: HashMap<String, String>) {
    let kind = model_of(&flags);
    let reps = get(&flags, "reps", 3usize).max(1);
    let kmax = get(&flags, "kmax", 8usize).max(1);
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());

    // k = 0 is the disabled legacy baseline; k >= 1 scales capacity 1/k.
    let mut rows = Vec::new();
    let mut busy_sweep = Vec::new();
    for &k in [0usize, 1, 2, 4, 8].iter().filter(|&&k| k <= kmax) {
        let scale = if k == 0 { 0.0 } else { 1.0 / k as f64 };
        let cfg = bench_net_point(scale);
        let template = SimTemplate::new(&cfg);
        let report = template.run(cfg.enablers, &mut kind.build_static());
        let fp = report.event_fingerprint;
        let events = report.events_processed;
        if k == 0 {
            assert_eq!(report.net_flows, 0, "disabled model must admit no flows");
        } else {
            assert!(report.net_flows > 0, "enabled model must route flows");
            busy_sweep.push(report.net_transfer_busy);
        }

        let replay_s = timed(reps, || {
            let r = template.run(cfg.enablers, &mut kind.build_static());
            assert_eq!(r.event_fingerprint, fp, "network bench replay diverged");
        });

        // Sharded differential: flow books are lane-scoped, so the
        // parallel executor must reproduce the contended stream exactly.
        let shards = template.cluster_count().clamp(1, 4);
        let (sh, _) = template.run_sharded(
            cfg.enablers,
            || kind.build_static(),
            shards,
            shards.min(cores),
        );
        assert_eq!(sh.event_fingerprint, fp, "sharded contention diverged");
        assert_eq!(
            sh.net_flows, report.net_flows,
            "sharded flow count diverged"
        );
        assert_eq!(
            sh.net_transfer_busy.to_bits(),
            report.net_transfer_busy.to_bits(),
            "sharded transfer busy-time diverged"
        );

        let h_share = if report.h_overhead > 0.0 {
            report.net_transfer_busy / report.h_overhead
        } else {
            0.0
        };
        eprintln!(
            "cap={:<5.3} flows={:<7} contended={:<7} busy={:>10.1} | H share {:>5.1}% | {:>7.2} ms/run | {:.2e} transfer ev/s | vlinks {:.1} KB",
            scale,
            report.net_flows,
            report.net_flows_contended,
            report.net_transfer_busy,
            h_share * 100.0,
            replay_s * 1e3,
            report.net_flows as f64 / replay_s,
            template.vlink_table_bytes() as f64 / 1e3
        );
        rows.push(serde_json::json!({
            "capacity_scale": scale,
            "bandwidth_enabled": k != 0,
            "nodes": cfg.nodes,
            "clusters": template.cluster_count(),
            "events_processed": events,
            "event_fingerprint": fp,
            "sharded_fingerprint_match": true,
            "secs_per_run": replay_s,
            "events_per_sec": events as f64 / replay_s,
            "net_flows": report.net_flows,
            "transfer_events_per_sec": report.net_flows as f64 / replay_s,
            "net_flows_contended": report.net_flows_contended,
            "net_transfer_busy": report.net_transfer_busy,
            "h_overhead": report.h_overhead,
            "h_net_share": h_share,
            "vlink_table_bytes": template.vlink_table_bytes(),
        }));
    }
    assert!(
        busy_sweep.windows(2).all(|w| w[1] + 1e-9 >= w[0]),
        "transfer busy-time must grow as capacity shrinks: {busy_sweep:?}"
    );

    // Case-4 before/after: the paper's L_p experiment rerun with the
    // legacy constant model and with measured flows at `--bw` capacity.
    let bw_scale = bw_flag(&flags).map_or(0.05, |b| b.capacity_scale);
    let mut case4 = Vec::new();
    for k in [1u32, 2, 4] {
        let mut cfg = config_for(kind, CaseId::Lp, k, Preset::Quick, 0xC4);
        // Trim to bench length: the sweep above owns the timing story.
        cfg.workload.duration = SimTime::from_ticks(6_000);
        cfg.drain = SimTime::from_ticks(9_000);
        let before = run_simulation(&cfg, kind.build().as_mut());
        cfg.bandwidth = BandwidthConfig {
            enabled: true,
            capacity_scale: bw_scale,
            k_paths: 2,
        };
        let after = run_simulation(&cfg, kind.build().as_mut());
        assert!(after.h_overhead > 0.0, "case 4 must accumulate H(k)");
        let share = if after.h_overhead > 0.0 {
            after.net_transfer_busy / after.h_overhead
        } else {
            0.0
        };
        eprintln!(
            "case4 k={k}: H before {:>10.1} | after {:>10.1} | measured transfer {:>9.1} ({:>4.1}%) | {} flows",
            before.h_overhead,
            after.h_overhead,
            after.net_transfer_busy,
            share * 100.0,
            after.net_flows
        );
        case4.push(serde_json::json!({
            "k": k,
            "capacity_scale": bw_scale,
            "h_before": before.h_overhead,
            "h_after": after.h_overhead,
            "net_flows": after.net_flows,
            "net_flows_contended": after.net_flows_contended,
            "net_transfer_busy": after.net_transfer_busy,
            "h_net_share_after": share,
        }));
    }

    let out = serde_json::json!({
        "model": kind.name(),
        "reps": reps,
        "kmax": kmax,
        "host_cores": cores,
        "sweep": rows,
        "case4": case4,
    });
    let path = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_net.json".to_string());
    match std::fs::write(&path, serde_json::to_string_pretty(&out).unwrap()) {
        Ok(()) => eprintln!("network bench → {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

fn cmd_bench_sim(flags: HashMap<String, String>) {
    if flags.contains_key("bw") {
        return cmd_bench_net(flags);
    }
    if flags.contains_key("shards") {
        return cmd_bench_shard(flags);
    }
    let kind = model_of(&flags);
    let reps = get(&flags, "reps", 5usize).max(1);
    let kmax = get(&flags, "kmax", 16usize).max(1);
    let mut rows = Vec::new();
    for &k in [1usize, 4, 16].iter().filter(|&&k| k <= kmax) {
        let cfg = bench_sim_point(k, kind.is_centralized());
        let template = SimTemplate::new(&cfg);
        // Warm-up run: primes the pools and fixes the reference report
        // every timed replay must reproduce bit-for-bit.
        let report = template.run(cfg.enablers, kind.build().as_mut());
        let events = report.events_processed;

        let fp = report.event_fingerprint;

        let clone_s = timed(reps, || {
            let mut p = kind.build();
            let r = run_simulation(&cfg, p.as_mut());
            assert_eq!(r.events_processed, events, "clone-per-run replay diverged");
            assert_eq!(
                r.event_fingerprint, fp,
                "clone-per-run fingerprint diverged"
            );
        });

        let replay_s = timed(reps, || {
            let mut p = kind.build();
            let r = template.run(cfg.enablers, p.as_mut());
            assert_eq!(
                r.events_processed, events,
                "shared-template replay diverged"
            );
            assert_eq!(
                r.event_fingerprint, fp,
                "shared-template fingerprint diverged"
            );
        });

        // Same shared-template replay, but statically dispatched through
        // the RmsPolicy enum instead of `&mut dyn Policy`.
        let enum_s = timed(reps, || {
            let mut p = kind.build_static();
            let r = template.run(cfg.enablers, &mut p);
            assert_eq!(r.events_processed, events, "enum-dispatch replay diverged");
            assert_eq!(
                r.event_fingerprint, fp,
                "enum-dispatch fingerprint diverged"
            );
        });

        // Same shared-template replay again, with the event queue forced
        // onto the reference binary heap: the ladder-vs-heap baseline.
        // Reports are bit-identical either way (the discipline is pure
        // mechanism), so the replay assertion doubles as an oracle.
        template.set_queue_discipline(QueueDiscipline::Heap);
        let heap_s = timed(reps, || {
            let mut p = kind.build();
            let r = template.run(cfg.enablers, p.as_mut());
            assert_eq!(r.events_processed, events, "forced-heap replay diverged");
            assert_eq!(r.event_fingerprint, fp, "forced-heap fingerprint diverged");
        });
        template.set_queue_discipline(QueueDiscipline::Adaptive);

        let stats = template.replay_stats();
        eprintln!(
            "k={:<2} nodes={:<4} events/run={:<8} clone {:>8.2} ms | replay {:>8.2} ms ({:>4.1}x) | enum {:>8.2} ms ({:+5.1}% vs dyn) | heap-q {:>8.2} ms ({:+5.1}% vs ladder) | {:.2e} ev/s",
            k,
            cfg.nodes,
            events,
            clone_s * 1e3,
            replay_s * 1e3,
            clone_s / replay_s,
            enum_s * 1e3,
            (enum_s / replay_s - 1.0) * 100.0,
            heap_s * 1e3,
            (heap_s / replay_s - 1.0) * 100.0,
            events as f64 / enum_s
        );
        rows.push(serde_json::json!({
            "k": k,
            "nodes": cfg.nodes,
            "events_processed": events,
            "msgs_sent": report.msgs_sent,
            "clone_per_run": {
                "secs_per_run": clone_s,
                "events_per_sec": events as f64 / clone_s,
            },
            "shared_template_replay": {
                "secs_per_run": replay_s,
                "events_per_sec": events as f64 / replay_s,
            },
            "enum_dispatch_replay": {
                "secs_per_run": enum_s,
                "events_per_sec": events as f64 / enum_s,
            },
            "heap_queue_replay": {
                "secs_per_run": heap_s,
                "events_per_sec": events as f64 / heap_s,
            },
            "speedup": clone_s / replay_s,
            "dispatch_delta": 1.0 - enum_s / replay_s,
            "queue_delta": 1.0 - replay_s / heap_s,
            "replay_stats": stats,
            "report": report,
        }));
    }
    let out =
        serde_json::json!({ "model": kind.name(), "reps": reps, "kmax": kmax, "points": rows });
    let path = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    match std::fs::write(&path, serde_json::to_string_pretty(&out).unwrap()) {
        Ok(()) => eprintln!("sim bench → {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

fn cmd_trace(flags: HashMap<String, String>) {
    let cfg = WorkloadConfig {
        arrival_rate: get(&flags, "rate", 0.05),
        duration: SimTime::from_ticks(get(&flags, "duration", 20_000u64)),
        submit_points: get(&flags, "points", 1u32),
        ..WorkloadConfig::default()
    };
    let mut rng = SimRng::new(get(&flags, "seed", 7u64));
    let trace = gridscale::workload::generate(&cfg, &mut rng);
    if flags.contains_key("swf") {
        print!("{}", gridscale::workload::to_swf(&trace, 1.0));
        return;
    }
    let s = trace.summary(SimTime::from_ticks(700));
    println!(
        "{} jobs | {} LOCAL / {} REMOTE | mean demand {:.0} ticks | span {}",
        s.count, s.local, s.remote, s.mean_demand, s.span
    );
}

fn cmd_topo(flags: HashMap<String, String>) {
    let nodes = get(&flags, "nodes", 300usize);
    let mut rng = SimRng::new(get(&flags, "seed", 7u64));
    let lp = generate::LinkParams::default();
    let kind = flags.get("kind").map(String::as_str).unwrap_or("ba");
    let g = match kind {
        "ba" => generate::barabasi_albert(nodes, 2, lp, &mut rng),
        "waxman" => generate::waxman(nodes, 0.25, 0.4, lp, &mut rng),
        "ts" => {
            // Same shape ratios the simulator uses: ~10% transit, stubs of 8.
            let transits = (nodes / 64).max(1);
            let spt = ((nodes.saturating_sub(transits * 4)) / (transits * 8)).max(1);
            generate::transit_stub(transits, 4, spt, 8, lp, &mut rng)
        }
        other => {
            eprintln!("--kind must be ba|waxman|ts, got {other}");
            exit(2);
        }
    };
    let m = gridscale::topology::metrics::analyze(&g, None);
    println!("{}", serde_json::to_string_pretty(&m).unwrap());
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: gridscale <run|measure|bench-sim|trace|topo|models|audit> [flags]");
        exit(2);
    }
    let cmd = args.remove(0);
    if cmd == "audit" {
        // The determinism linter takes its own flag grammar
        // (--root/--json/--deny-warnings/--quiet), so hand it the raw
        // args instead of the parsed flag map.
        exit(gridscale_audit::run_cli(&args));
    }
    let flags = parse_flags(&args);
    match cmd.as_str() {
        "run" => cmd_run(flags),
        "measure" => cmd_measure(flags),
        "bench-sim" => cmd_bench_sim(flags),
        "trace" => cmd_trace(flags),
        "topo" => cmd_topo(flags),
        "models" => cmd_models(),
        other => {
            eprintln!("unknown command {other}");
            exit(2);
        }
    }
}
