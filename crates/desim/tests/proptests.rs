//! Property-based tests for the DES kernel.

use gridscale_desim::stats::{Histogram, Welford};
use gridscale_desim::{Engine, EventQueue, HeapQueue, SimRng, SimTime, World};
use proptest::prelude::*;

/// One step of the differential queue workload: schedule a same-tick
/// burst, batch-schedule, or pop. `at` mixes near times, a far band,
/// and the representable extremes so the ladder's bucket routing,
/// overflow tier, and saturating bound arithmetic all get exercised.
#[derive(Debug, Clone, Copy)]
enum QueueOp {
    Schedule { at: u64, burst: usize },
    ScheduleBatch { at: u64, burst: usize },
    Pop { count: usize },
}

/// Applies `ops` to both the adaptive ladder and the reference heap,
/// asserting the popped `(at, seq, event)` streams never diverge, then
/// drains both to the end. Shared by the proptest and the seeded
/// offline differential test.
fn run_differential(ops: &[QueueOp]) {
    let mut ladder: EventQueue<u64> = EventQueue::new();
    let mut heap: HeapQueue<u64> = HeapQueue::new();
    let mut payload = 0u64;
    for &op in ops {
        match op {
            QueueOp::Schedule { at, burst } => {
                for _ in 0..burst {
                    ladder.schedule(SimTime::from_ticks(at), payload);
                    heap.schedule(SimTime::from_ticks(at), payload);
                    payload += 1;
                }
            }
            QueueOp::ScheduleBatch { at, burst } => {
                // Same-tick pairs inside the batch stress FIFO ties.
                let batch: Vec<(SimTime, u64)> = (0..burst)
                    .map(|j| {
                        let ev = payload + j as u64;
                        (SimTime::from_ticks(at.saturating_add(j as u64 / 2)), ev)
                    })
                    .collect();
                payload += burst as u64;
                ladder.schedule_batch(batch.iter().copied());
                heap.schedule_batch(batch.iter().copied());
            }
            QueueOp::Pop { count } => {
                for _ in 0..count {
                    let (a, b) = (ladder.pop(), heap.pop());
                    match (a, b) {
                        (None, None) => break,
                        (Some(x), Some(y)) => {
                            assert_eq!(
                                (x.at, x.seq, x.event),
                                (y.at, y.seq, y.event),
                                "ladder diverged from heap mid-stream"
                            );
                        }
                        (a, b) => panic!("length divergence: ladder={a:?} heap={b:?}"),
                    }
                }
            }
        }
        assert_eq!(ladder.len(), heap.len());
        assert_eq!(ladder.peek_time(), heap.peek_time());
    }
    loop {
        match (ladder.pop(), heap.pop()) {
            (None, None) => break,
            (Some(x), Some(y)) => {
                assert_eq!((x.at, x.seq, x.event), (y.at, y.seq, y.event));
            }
            (a, b) => panic!("length divergence at drain: ladder={a:?} heap={b:?}"),
        }
    }
}

/// Seeded differential workload generator: the same op distribution as
/// the proptest below, but driven by [`SimRng`] so it runs (and shrinks
/// the search space deterministically) even where `proptest` is
/// unavailable. Heavy on same-tick bursts and extreme times.
#[test]
fn ladder_matches_heap_seeded_differential() {
    for seed in 0..12u64 {
        let mut rng = SimRng::new(seed * 7 + 1);
        let mut ops = Vec::new();
        for _ in 0..rng.int_range(20, 200) {
            let at = match rng.index(6) {
                0 => rng.int_range(0, 64),
                1 => rng.int_range(0, 5_000),
                2 => rng.int_range(100_000, 1_000_000),
                3 => u64::MAX - 1,
                4 => u64::MAX,
                _ => rng.int_range(0, 1_000),
            };
            let burst = rng.int_range(1, 12) as usize;
            ops.push(match rng.index(3) {
                0 => QueueOp::Schedule { at, burst },
                1 => QueueOp::ScheduleBatch { at, burst },
                _ => QueueOp::Pop {
                    count: rng.int_range(1, 20) as usize,
                },
            });
        }
        run_differential(&ops);
    }
}

/// A dense, large seeded workload that reliably pushes the ladder
/// through engage → spill → re-engage cycles before draining.
#[test]
fn ladder_matches_heap_seeded_hold_model() {
    let mut rng = SimRng::new(0xD15C);
    let mut ops = Vec::new();
    for round in 0..40 {
        ops.push(QueueOp::Schedule {
            at: rng.int_range(0, 2_000) + round * 500,
            burst: 40,
        });
        ops.push(QueueOp::Pop { count: 25 });
    }
    ops.push(QueueOp::Pop { count: usize::MAX });
    run_differential(&ops);
}

proptest! {
    /// Differential oracle: any interleaving of `schedule`,
    /// `schedule_batch`, and `pop` — same-tick bursts, `SimTime::MAX`,
    /// and `u64::MAX - 1` included — produces the exact `(at, seq,
    /// event)` stream from the adaptive ladder that the reference
    /// binary heap produces.
    #[test]
    fn ladder_matches_heap_differential(
        raw_ops in prop::collection::vec(
            (
                0u8..3,
                prop_oneof![
                    0u64..64,
                    0u64..5_000,
                    100_000u64..1_000_000,
                    Just(u64::MAX - 1),
                    Just(u64::MAX),
                ],
                1usize..12,
            ),
            1..150,
        )
    ) {
        let ops: Vec<QueueOp> = raw_ops
            .into_iter()
            .map(|(kind, at, n)| match kind {
                0 => QueueOp::Schedule { at, burst: n },
                1 => QueueOp::ScheduleBatch { at, burst: n },
                _ => QueueOp::Pop { count: n * 2 },
            })
            .collect();
        run_differential(&ops);
    }

    /// The queue is a stable priority queue: pops come out sorted by time,
    /// and equal-time events preserve insertion order.
    #[test]
    fn event_queue_is_stable_priority_queue(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ticks(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push((ev.at, ev.event));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Merged Welford accumulators agree with a single-pass accumulator
    /// regardless of the split point.
    #[test]
    fn welford_merge_associative(
        xs in prop::collection::vec(-1e6f64..1e6, 2..100),
        split in 0usize..100,
    ) {
        let split = split % xs.len();
        let mut whole = Welford::new();
        for &x in &xs { whole.push(x); }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..split] { a.push(x); }
        for &x in &xs[split..] { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() <= 1e-5 * (1.0 + whole.variance()));
        prop_assert_eq!(a.min(), whole.min());
        prop_assert_eq!(a.max(), whole.max());
    }

    /// Histogram quantiles are monotone in q and total mass is conserved.
    #[test]
    fn histogram_quantiles_monotone(xs in prop::collection::vec(0.0f64..500.0, 1..300)) {
        let mut h = Histogram::new(10.0, 40);
        for &x in &xs { h.push(x); }
        prop_assert_eq!(h.total(), xs.len() as u64);
        let q25 = h.quantile(0.25).unwrap();
        let q50 = h.quantile(0.50).unwrap();
        let q95 = h.quantile(0.95).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q95);
    }

    /// SimTime arithmetic: associativity of addition and the saturating
    /// subtraction identity max(a-b, 0).
    #[test]
    fn simtime_arithmetic(a in 0u64..u64::MAX/4, b in 0u64..u64::MAX/4, c in 0u64..u64::MAX/4) {
        let (ta, tb, tc) = (SimTime::from_ticks(a), SimTime::from_ticks(b), SimTime::from_ticks(c));
        prop_assert_eq!((ta + tb) + tc, ta + (tb + tc));
        prop_assert_eq!((ta - tb).ticks(), a.saturating_sub(b));
        prop_assert_eq!(ta.max(tb).ticks(), a.max(b));
    }

    /// Engine delivery honors an arbitrary set of one-shot events.
    #[test]
    fn engine_delivers_everything_before_horizon(times in prop::collection::vec(0u64..5000, 1..100)) {
        struct Collect(Vec<u64>);
        impl World for Collect {
            type Event = u64;
            fn handle(&mut self, now: SimTime, ev: u64, _q: &mut EventQueue<u64>) {
                assert_eq!(now.ticks(), ev);
                self.0.push(ev);
            }
        }
        let mut w = Collect(Vec::new());
        let mut e = Engine::new();
        for &t in &times {
            e.queue_mut().schedule(SimTime::from_ticks(t), t);
        }
        e.run_until(&mut w, SimTime::from_ticks(5000));
        prop_assert_eq!(w.0.len(), times.len());
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(w.0, sorted);
    }

    /// The RNG's distributions stay within their support.
    #[test]
    fn distributions_respect_support(seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.uniform01() < 1.0);
            prop_assert!(rng.exponential(0.1) >= 0.0);
            prop_assert!(rng.log_normal(2.0, 0.5) > 0.0);
            let w = rng.weibull(2.0, 3.0);
            prop_assert!(w >= 0.0);
            let bp = rng.bounded_pareto(1.2, 5.0, 50.0);
            prop_assert!((5.0..=50.0).contains(&bp));
            let z = rng.zipf(10, 1.2);
            prop_assert!((1..=10).contains(&z));
        }
    }
}
