//! The simulation clock.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or duration of) simulated time, measured in integer ticks.
///
/// The paper's simulator works in abstract "time units" (e.g. `T_CPU = 700
/// time units`); we adopt the same convention. Using an integer clock rather
/// than `f64` makes event ordering total and runs reproducible: two events
/// scheduled for the same tick are delivered in scheduling order.
///
/// `SimTime` doubles as a duration type; arithmetic saturates on underflow
/// rather than panicking so that latency computations can never produce a
/// negative time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs a time from raw ticks.
    #[inline]
    pub const fn from_ticks(t: u64) -> Self {
        SimTime(t)
    }

    /// Returns the raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Returns the time as an `f64` tick count (for statistics).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Constructs a time by rounding a fractional tick count, saturating at
    /// zero for negative inputs.
    #[inline]
    pub fn from_f64(t: f64) -> Self {
        if t <= 0.0 {
            SimTime::ZERO
        } else if t >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(t.round() as u64)
        }
    }

    /// Saturating subtraction; returns `ZERO` instead of underflowing.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// True if this is time zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Saturating: never produces negative time.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl From<u64> for SimTime {
    #[inline]
    fn from(t: u64) -> Self {
        SimTime(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrip() {
        assert_eq!(SimTime::from_ticks(42).ticks(), 42);
        assert_eq!(SimTime::from(7u64), SimTime::from_ticks(7));
        assert_eq!(SimTime::ZERO.ticks(), 0);
        assert!(SimTime::ZERO.is_zero());
        assert!(!SimTime::from_ticks(1).is_zero());
    }

    #[test]
    fn arithmetic_basics() {
        let a = SimTime::from_ticks(10);
        let b = SimTime::from_ticks(3);
        assert_eq!((a + b).ticks(), 13);
        assert_eq!((a - b).ticks(), 7);
        assert_eq!((a * 4).ticks(), 40);
        assert_eq!((a / 2).ticks(), 5);
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_ticks(3);
        let b = SimTime::from_ticks(10);
        assert_eq!(a - b, SimTime::ZERO);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
    }

    #[test]
    fn addition_saturates_at_max() {
        assert_eq!(SimTime::MAX + SimTime::from_ticks(1), SimTime::MAX);
        assert_eq!(SimTime::MAX * 2, SimTime::MAX);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(SimTime::MAX.checked_add(SimTime::from_ticks(1)), None);
        assert_eq!(
            SimTime::from_ticks(1).checked_add(SimTime::from_ticks(2)),
            Some(SimTime::from_ticks(3))
        );
    }

    #[test]
    fn f64_conversion_clamps() {
        assert_eq!(SimTime::from_f64(-5.0), SimTime::ZERO);
        assert_eq!(SimTime::from_f64(2.6).ticks(), 3);
        assert_eq!(SimTime::from_f64(f64::INFINITY), SimTime::MAX);
        assert_eq!(SimTime::from_ticks(9).as_f64(), 9.0);
    }

    #[test]
    fn ordering_and_min_max() {
        let a = SimTime::from_ticks(5);
        let b = SimTime::from_ticks(8);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4).map(SimTime::from_ticks).sum();
        assert_eq!(total.ticks(), 10);
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_ticks(700).to_string(), "700t");
    }
}
