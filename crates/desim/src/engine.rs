//! The event-loop driver.

use crate::queue::EventQueue;
use crate::time::SimTime;

/// A simulation model.
///
/// The engine pops the earliest event from the queue and calls
/// [`World::handle`]; the model reacts by mutating its own state and
/// scheduling further events. This is the classic event-oriented DES
/// world-view (the same one the paper's Parsec model uses, minus Parsec's
/// optimistic parallelism, which the paper does not rely on).
pub trait World {
    /// The model-defined event payload type.
    type Event;

    /// Processes one event occurring at time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);

    /// Observes each event immediately before [`World::handle`] delivers
    /// it, together with the scheduling sequence number that orders
    /// same-timestamp events. Default: no-op.
    ///
    /// This is the hook behind event-stream fingerprinting: a model can
    /// fold `(at, seq, event)` into a running hash and compare it across
    /// replays — two runs that deliver the same events in the same order
    /// produce the same fingerprint regardless of queue discipline,
    /// pooling, or thread placement. Kept separate from `handle` so the
    /// observation provably cannot mutate scheduling state.
    fn observe(&mut self, _at: SimTime, _seq: u64, _event: &Self::Event) {}

    /// Called once when the run finishes (horizon reached or queue drained).
    /// Default: no-op. Models use this to close time-weighted statistics.
    fn finish(&mut self, _now: SimTime) {}
}

/// Why a call to [`Engine::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained before the horizon.
    Drained,
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The event budget (`max_events`) was exhausted — a runaway-model guard.
    EventBudgetExhausted,
}

/// The simulation engine: owns the clock and the future-event list.
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
    max_events: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with an effectively unlimited event
    /// budget.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            max_events: u64::MAX,
        }
    }

    /// Creates an engine around an existing queue — typically one recycled
    /// via [`EventQueue::reset`] so its heap allocation survives across
    /// runs. The clock and counters start from zero as in [`Engine::new`].
    pub fn from_queue(queue: EventQueue<E>) -> Self {
        Engine {
            queue,
            now: SimTime::ZERO,
            processed: 0,
            max_events: u64::MAX,
        }
    }

    /// Consumes the engine and returns its queue, so the caller can pool
    /// the allocation for a later [`Engine::from_queue`].
    pub fn into_queue(self) -> EventQueue<E> {
        self.queue
    }

    /// Caps the total number of events processed across the engine's
    /// lifetime. Exceeding the cap stops the run with
    /// [`RunOutcome::EventBudgetExhausted`] — a guard against models that
    /// schedule unboundedly (e.g. a zero-delay message loop).
    pub fn with_event_budget(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Mutable access to the event queue, e.g. to seed initial events.
    pub fn queue_mut(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Shared access to the event queue.
    pub fn queue(&self) -> &EventQueue<E> {
        &self.queue
    }

    /// Runs until the queue drains, the clock passes `horizon`, or the event
    /// budget is exhausted. Events stamped exactly at `horizon` are still
    /// processed; later ones are left pending.
    ///
    /// The loop peeks before every pop to check the horizon without
    /// consuming the event — the queue keeps its minimum surfaced (the
    /// ladder's *settled* invariant), so `peek_time` stays O(1) and this
    /// costs nothing over a pop-and-push-back scheme.
    pub fn run_until<W>(&mut self, world: &mut W, horizon: SimTime) -> RunOutcome
    where
        W: World<Event = E>,
    {
        let outcome = loop {
            let Some(at) = self.queue.peek_time() else {
                break RunOutcome::Drained;
            };
            if at > horizon {
                break RunOutcome::HorizonReached;
            }
            if self.processed >= self.max_events {
                break RunOutcome::EventBudgetExhausted;
            }
            // Unwrap is fine: peek_time just returned Some.
            let ev = self
                .queue
                .pop()
                .expect("event vanished between peek and pop");
            debug_assert!(ev.at >= self.now, "event queue must be time-ordered");
            self.now = ev.at;
            self.processed += 1;
            world.observe(ev.at, ev.seq, &ev.event);
            world.handle(self.now, ev.event, &mut self.queue);
        };
        let end = match outcome {
            RunOutcome::HorizonReached => horizon,
            _ => self.now,
        };
        self.now = end;
        world.finish(end);
        outcome
    }

    /// Runs until the queue drains (or the event budget is exhausted).
    pub fn run_to_completion<W>(&mut self, world: &mut W) -> RunOutcome
    where
        W: World<Event = E>,
    {
        self.run_until(world, SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        fired: Vec<u64>,
        finished_at: Option<SimTime>,
        respawn: bool,
    }

    impl World for Counter {
        type Event = u64;
        fn handle(&mut self, now: SimTime, ev: u64, q: &mut EventQueue<u64>) {
            self.fired.push(ev);
            if self.respawn {
                q.schedule(now + SimTime::from_ticks(10), ev + 1);
            }
        }
        fn finish(&mut self, now: SimTime) {
            self.finished_at = Some(now);
        }
    }

    fn world(respawn: bool) -> Counter {
        Counter {
            fired: vec![],
            finished_at: None,
            respawn,
        }
    }

    #[test]
    fn drains_when_no_respawn() {
        let mut w = world(false);
        let mut e = Engine::new();
        e.queue_mut().schedule(SimTime::from_ticks(5), 1);
        e.queue_mut().schedule(SimTime::from_ticks(2), 0);
        let outcome = e.run_until(&mut w, SimTime::from_ticks(100));
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(w.fired, vec![0, 1]);
        assert_eq!(e.now(), SimTime::from_ticks(5), "clock stops at last event");
        assert_eq!(e.processed(), 2);
    }

    #[test]
    fn horizon_stops_infinite_chain() {
        let mut w = world(true);
        let mut e = Engine::new();
        e.queue_mut().schedule(SimTime::ZERO, 0);
        let outcome = e.run_until(&mut w, SimTime::from_ticks(35));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        // Events at t = 0, 10, 20, 30 fire; t = 40 is pending.
        assert_eq!(w.fired, vec![0, 1, 2, 3]);
        assert_eq!(e.queue().len(), 1);
        assert_eq!(
            e.now(),
            SimTime::from_ticks(35),
            "clock advances to horizon"
        );
        assert_eq!(w.finished_at, Some(SimTime::from_ticks(35)));
    }

    #[test]
    fn event_exactly_at_horizon_is_processed() {
        let mut w = world(false);
        let mut e = Engine::new();
        e.queue_mut().schedule(SimTime::from_ticks(50), 9);
        e.run_until(&mut w, SimTime::from_ticks(50));
        assert_eq!(w.fired, vec![9]);
    }

    #[test]
    fn event_budget_guard() {
        let mut w = world(true);
        let mut e = Engine::new().with_event_budget(5);
        e.queue_mut().schedule(SimTime::ZERO, 0);
        let outcome = e.run_to_completion(&mut w);
        assert_eq!(outcome, RunOutcome::EventBudgetExhausted);
        assert_eq!(w.fired.len(), 5);
    }

    #[test]
    fn finish_called_on_drain() {
        let mut w = world(false);
        let mut e = Engine::new();
        e.queue_mut().schedule(SimTime::from_ticks(3), 1);
        e.run_to_completion(&mut w);
        assert_eq!(w.finished_at, Some(SimTime::from_ticks(3)));
    }

    #[test]
    fn recycled_queue_runs_identically() {
        let run = |mut e: Engine<u64>| -> (Vec<u64>, EventQueue<u64>) {
            let mut w = world(false);
            e.queue_mut().schedule(SimTime::from_ticks(5), 1);
            e.queue_mut().schedule(SimTime::from_ticks(2), 0);
            e.run_until(&mut w, SimTime::from_ticks(100));
            (w.fired, e.into_queue())
        };
        let (fresh, q) = run(Engine::new());
        let mut q = q;
        q.reset();
        let (recycled, _) = run(Engine::from_queue(q));
        assert_eq!(fresh, recycled);
    }

    #[test]
    fn observe_sees_every_delivery_in_order() {
        struct Spy {
            seen: Vec<(SimTime, u64, u64)>,
        }
        impl World for Spy {
            type Event = u64;
            fn handle(&mut self, _now: SimTime, _ev: u64, _q: &mut EventQueue<u64>) {}
            fn observe(&mut self, at: SimTime, seq: u64, ev: &u64) {
                self.seen.push((at, seq, *ev));
            }
        }
        let mut w = Spy { seen: vec![] };
        let mut e = Engine::new();
        // Two same-timestamp events: seq must break the tie in FIFO order.
        e.queue_mut().schedule(SimTime::from_ticks(7), 10);
        e.queue_mut().schedule(SimTime::from_ticks(7), 11);
        e.queue_mut().schedule(SimTime::from_ticks(2), 12);
        e.run_to_completion(&mut w);
        assert_eq!(
            w.seen,
            vec![
                (SimTime::from_ticks(2), 2, 12),
                (SimTime::from_ticks(7), 0, 10),
                (SimTime::from_ticks(7), 1, 11),
            ]
        );
    }

    #[test]
    fn empty_queue_finishes_immediately() {
        let mut w = world(false);
        let mut e: Engine<u64> = Engine::new();
        let outcome = e.run_until(&mut w, SimTime::from_ticks(10));
        assert_eq!(outcome, RunOutcome::Drained);
        assert!(w.fired.is_empty());
        assert_eq!(w.finished_at, Some(SimTime::ZERO));
    }
}
