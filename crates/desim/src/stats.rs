//! Online statistics for simulation outputs.
//!
//! All accumulators are single-pass and allocation-free (except the
//! histogram's fixed bin vector), so they can sit on hot event-handling
//! paths.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Resets to the empty state so a pooled accumulator can be reused
    /// across simulation runs without reallocating.
    pub fn reset(&mut self) {
        *self = Welford::new();
    }

    /// Merges another accumulator into this one (Chan et al. parallel
    /// combination), enabling per-shard accumulation in parallel sweeps.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A time-weighted average of a piecewise-constant signal, e.g. queue
/// length or resource load over simulated time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    started: bool,
    start_time: SimTime,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Creates an accumulator; the signal is undefined until the first
    /// [`TimeWeighted::record`].
    pub fn new() -> Self {
        TimeWeighted {
            last_time: SimTime::ZERO,
            last_value: 0.0,
            weighted_sum: 0.0,
            started: false,
            start_time: SimTime::ZERO,
        }
    }

    /// Records that the signal takes value `value` from time `now` onward.
    /// Times must be nondecreasing.
    pub fn record(&mut self, now: SimTime, value: f64) {
        if self.started {
            debug_assert!(now >= self.last_time, "time went backwards");
            let dt = (now - self.last_time).as_f64();
            self.weighted_sum += self.last_value * dt;
        } else {
            self.started = true;
            self.start_time = now;
        }
        self.last_time = now;
        self.last_value = value;
    }

    /// Closes the signal at `end` and returns the time-weighted mean over
    /// `[first_record, end]`. Returns 0 if nothing was recorded or the
    /// window is empty.
    pub fn mean_until(&self, end: SimTime) -> f64 {
        if !self.started || end <= self.start_time {
            return 0.0;
        }
        let tail = (end - self.last_time).as_f64() * self.last_value;
        let span = (end - self.start_time).as_f64();
        (self.weighted_sum + tail) / span
    }

    /// The most recently recorded value.
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

/// A fixed-width-bin histogram over `[0, max)` with an overflow bin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: f64,
    bins: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// `bins` bins of width `bin_width`; values `>= bins * bin_width` land
    /// in the overflow bin.
    pub fn new(bin_width: f64, bins: usize) -> Self {
        assert!(bin_width > 0.0 && bins > 0);
        Histogram {
            bin_width,
            bins: vec![0; bins],
            overflow: 0,
            total: 0,
        }
    }

    /// Zeroes all counts while keeping the bin vector's allocation, so a
    /// pooled histogram can be recycled across simulation runs.
    pub fn reset(&mut self) {
        self.bins.iter_mut().for_each(|b| *b = 0);
        self.overflow = 0;
        self.total = 0;
    }

    /// Adds one observation (negative values clamp into bin 0).
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < 0.0 {
            self.bins[0] += 1;
            return;
        }
        let idx = (x / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bin `i`.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Count of observations beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Folds another histogram's counts into this one, bin by bin. Both
    /// histograms must share the same geometry (bin width and count) —
    /// merging is exact then: the result equals a single histogram fed
    /// every observation, in any order. This is what lets sharded
    /// simulation partitions keep private histograms and combine them at
    /// the barrier without ordering effects.
    pub fn absorb(&mut self, other: &Histogram) {
        assert_eq!(
            self.bins.len(),
            other.bins.len(),
            "histogram geometries differ"
        );
        assert_eq!(
            self.bin_width.to_bits(),
            other.bin_width.to_bits(),
            "histogram geometries differ"
        );
        for (b, &o) in self.bins.iter_mut().zip(&other.bins) {
            *b += o;
        }
        self.overflow += other.overflow;
        self.total += other.total;
    }

    /// Approximate quantile (`q` in `[0,1]`) from bin midpoints; overflow
    /// reports the lower edge of the overflow region. `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i as f64 + 0.5) * self.bin_width);
            }
        }
        Some(self.bins.len() as f64 * self.bin_width)
    }
}

/// A monotone event counter with a rate helper.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Count per unit time over `span` (0 for an empty span).
    pub fn rate(&self, span: SimTime) -> f64 {
        if span.is_zero() {
            0.0
        } else {
            self.0 as f64 / span.as_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    #[test]
    fn welford_basics() {
        let mut w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..33] {
            a.push(x);
        }
        for &x in &xs[33..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(3.0);
        let b = Welford::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Welford::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 3.0);
    }

    #[test]
    fn welford_reset_clears_state() {
        let mut w = Welford::new();
        w.push(1.0);
        w.push(5.0);
        w.reset();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.min(), None);
        w.push(2.0);
        assert_eq!(w.mean(), 2.0);
    }

    #[test]
    fn histogram_reset_keeps_shape() {
        let mut h = Histogram::new(10.0, 5);
        for x in [1.0, 25.0, 1e9] {
            h.push(x);
        }
        h.reset();
        assert_eq!(h.total(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!((0..5).map(|i| h.bin(i)).sum::<u64>(), 0);
        h.push(25.0);
        assert_eq!(h.bin(2), 1);
    }

    #[test]
    fn time_weighted_piecewise() {
        let mut tw = TimeWeighted::new();
        tw.record(t(0), 1.0); // value 1 on [0, 10)
        tw.record(t(10), 3.0); // value 3 on [10, 20)
        assert_eq!(tw.current(), 3.0);
        // Mean over [0, 20) = (1*10 + 3*10)/20 = 2.
        assert!((tw.mean_until(t(20)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_starts_at_first_record() {
        let mut tw = TimeWeighted::new();
        tw.record(t(100), 4.0);
        assert!((tw.mean_until(t(200)) - 4.0).abs() < 1e-12);
        assert_eq!(tw.mean_until(t(100)), 0.0, "empty window");
        assert_eq!(TimeWeighted::new().mean_until(t(50)), 0.0, "no records");
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(10.0, 5);
        for x in [0.0, 5.0, 9.99, 10.0, 49.0, 50.0, 1e9, -3.0] {
            h.push(x);
        }
        assert_eq!(h.bin(0), 4); // 0, 5, 9.99, and clamped -3
        assert_eq!(h.bin(1), 1); // 10
        assert_eq!(h.bin(4), 1); // 49
        assert_eq!(h.overflow(), 2); // 50, 1e9
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.push(i as f64);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 49.5).abs() <= 1.0);
        assert_eq!(Histogram::new(1.0, 4).quantile(0.5), None);
    }

    #[test]
    fn histogram_absorb_matches_single_feed() {
        // Split one observation stream across two histograms, absorb, and
        // compare against a single histogram fed everything.
        let xs: Vec<f64> = (0..200).map(|i| (i as f64) * 0.7 - 3.0).collect();
        let mut whole = Histogram::new(10.0, 8);
        let mut left = Histogram::new(10.0, 8);
        let mut right = Histogram::new(10.0, 8);
        for (i, &x) in xs.iter().enumerate() {
            whole.push(x);
            if i % 3 == 0 {
                left.push(x)
            } else {
                right.push(x)
            }
        }
        left.absorb(&right);
        assert_eq!(left.total(), whole.total());
        assert_eq!(left.overflow(), whole.overflow());
        for i in 0..8 {
            assert_eq!(left.bin(i), whole.bin(i), "bin {i}");
        }
        assert_eq!(left.quantile(0.95), whole.quantile(0.95));
    }

    #[test]
    #[should_panic(expected = "geometries differ")]
    fn histogram_absorb_rejects_mismatched_geometry() {
        let mut a = Histogram::new(10.0, 8);
        a.absorb(&Histogram::new(10.0, 9));
    }

    #[test]
    fn counter_rate() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert!((c.rate(t(5)) - 2.0).abs() < 1e-12);
        assert_eq!(c.rate(SimTime::ZERO), 0.0);
    }
}
