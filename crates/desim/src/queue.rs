//! The future-event list.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event together with its delivery time and a tie-breaking sequence
/// number assigned at scheduling time.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Simulated delivery time.
    pub at: SimTime,
    /// Monotonic insertion sequence; earlier-scheduled events at the same
    /// tick are delivered first.
    pub seq: u64,
    /// The model-defined event payload.
    pub event: E,
}

/// Heap entry ordered so that `BinaryHeap` (a max-heap) pops the *earliest*
/// `(at, seq)` pair first.
struct Entry<E>(ScheduledEvent<E>);

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smallest (at, seq) is the heap maximum.
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

/// A deterministic future-event list.
///
/// Events are delivered in nondecreasing time order; events scheduled for
/// the same tick are delivered in the order they were scheduled (FIFO).
/// This total order is what makes every simulation run reproducible.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Creates an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedules `event` for delivery at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry(ScheduledEvent { at, seq, event }));
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop().map(|e| e.0)
    }

    /// The delivery time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drops all pending events (the schedule counter is retained).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            let ev = q.pop().unwrap();
            assert_eq!(ev.event, i);
            assert_eq!(ev.at, t(5));
        }
    }

    #[test]
    fn interleaved_ties_and_times() {
        let mut q = EventQueue::new();
        q.schedule(t(2), "x1");
        q.schedule(t(1), "a");
        q.schedule(t(2), "x2");
        q.schedule(t(1), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "x1", "x2"]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn counters_and_clear() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        q.schedule(t(1), 1u8);
        q.schedule(t(2), 2u8);
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2, "clear keeps the lifetime counter");
    }
}
