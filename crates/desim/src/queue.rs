//! The future-event list.
//!
//! Two implementations share one total delivery order:
//!
//! * [`EventQueue`] — the default: an adaptive two-tier **ladder queue**
//!   (bucketed near-future tier + unsorted far-future overflow) with O(1)
//!   amortized `schedule`/`pop`, automatic bucket-width adaptation, and a
//!   packed-key binary-heap fallback for distributions too skewed for
//!   buckets to pay off.
//! * [`HeapQueue`] — the plain packed-key binary heap (O(log n) sift per
//!   operation). It is the reference implementation the differential
//!   tests and the `event_queue` criterion bench compare against, and the
//!   structure the ladder's fallback tier reuses.
//!
//! Both deliver events in ascending `(at, seq)` order — nondecreasing
//! time, FIFO among same-tick ties — so swapping one for the other can
//! never change a simulation result. The ladder keeps that guarantee
//! structurally: every routing decision partitions events into *disjoint
//! key ranges* (front ⊂ [0, front_bound) ∪ buckets ∪ overflow ⊂
//! [window_end, ∞)), and every comparison at a range boundary uses the
//! full packed key, so bucket geometry (a pure performance knob) is
//! invisible to delivery order.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event together with its delivery time and a tie-breaking sequence
/// number assigned at scheduling time.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Simulated delivery time.
    pub at: SimTime,
    /// Monotonic insertion sequence; earlier-scheduled events at the same
    /// tick are delivered first.
    pub seq: u64,
    /// The model-defined event payload.
    pub event: E,
}

/// Entry with `(at, seq)` packed into one `u128` so hot comparisons (heap
/// sift, bucket sort, range routing) compare a single integer instead of
/// a lexicographic tuple.
///
/// `key = (at << 64) | seq`: because both halves are unsigned and occupy
/// disjoint bit ranges, numeric order on `key` equals lexicographic order
/// on `(at, seq)`. Keys are unique (`seq` is monotonic), so the order is
/// total and unstable sorts are safe.
struct Entry<E> {
    key: u128,
    event: E,
}

#[inline]
fn pack(at: SimTime, seq: u64) -> u128 {
    ((at.ticks() as u128) << 64) | seq as u128
}

#[inline]
fn unpack_at(key: u128) -> SimTime {
    SimTime::from_ticks((key >> 64) as u64)
}

impl<E> Entry<E> {
    #[inline]
    fn into_scheduled(self) -> ScheduledEvent<E> {
        ScheduledEvent {
            at: unpack_at(self.key),
            seq: self.key as u64,
            event: self.event,
        }
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smallest key is the heap maximum.
        other.key.cmp(&self.key)
    }
}

/// Which structure backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueDiscipline {
    /// The adaptive ladder: buckets when the population is large and
    /// well-spread, heap otherwise. The default.
    #[default]
    Adaptive,
    /// Force the packed-key binary heap for every event. Used by
    /// `bench-sim` to measure the ladder against the heap on the *same*
    /// simulation (reports are bit-identical either way).
    Heap,
}

/// Per-queue telemetry counters. Zeroed by [`EventQueue::reset`] (they
/// describe one run); geometry fields (`bucket_count`, `bucket_width`)
/// report the retained warm-start hint even right after a reset.
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct QueueTelemetry {
    /// True while the bucketed near tier is live.
    pub engaged: bool,
    /// True when events are being routed to the heap tier exclusively —
    /// either forced by [`QueueDiscipline::Heap`] or latched by the skew
    /// heuristic.
    pub heap_fallback: bool,
    /// Times the ladder engaged (population crossed the threshold).
    pub engagements: u64,
    /// Geometry recomputations that changed the bucket width or count.
    pub resizes: u64,
    /// Overflow redistributions (far tier → near tier).
    pub spills: u64,
    /// Times the skew heuristic latched the heap fallback.
    pub fallback_activations: u64,
    /// Inserts that landed in the front heap while the ladder was engaged
    /// (events due before the end of the active bucket).
    pub front_inserts: u64,
    /// Current near-tier bucket count (warm-start geometry hint).
    pub bucket_count: usize,
    /// Current near-tier bucket width in ticks (warm-start geometry hint).
    pub bucket_width: u64,
    /// Largest single-bucket occupancy observed since the last reset.
    pub max_bucket_occupancy: usize,
}

/// Pending events before the ladder pays for itself; below this the queue
/// is a plain binary heap (which wins on small populations).
const ENGAGE_LEN: usize = 128;
/// Target mean events per bucket; the bucket count is chosen so the
/// population at window-build time averages this occupancy.
const TARGET_PER_BUCKET: usize = 8;
/// Near-tier size bounds (power of two).
const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 4096;
/// Skew check cadence: every this many routed events, measure which
/// fraction landed in the front heap (= before the active bucket's end).
const ROUTE_CHECK: u32 = 1024;
/// Consecutive front-dominated check windows (over 3/4 of routes landing
/// in the front heap — the buckets are not absorbing the traffic, e.g.
/// because one far outlier stretched the bucket width) before the heap
/// fallback latches for the rest of the run.
const SKEW_STRIKES: u32 = 3;
/// Per-bucket capacity kept across [`EventQueue::reset`]; anything above
/// this (a spill artifact) is released so pooled queues don't retain a
/// run's peak memory.
const RESET_BUCKET_RETAIN: usize = 4 * TARGET_PER_BUCKET;

/// Is `key` inside the half-open range ending at `bound`?
/// `u128::MAX` denotes an unbounded range (so an event at
/// `(SimTime::MAX, u64::MAX)` — key `u128::MAX` — can never be stranded
/// beyond every bound).
#[inline]
fn below(key: u128, bound: u128) -> bool {
    bound == u128::MAX || key < bound
}

/// A deterministic future-event list (adaptive ladder queue).
///
/// Events are delivered in nondecreasing time order; events scheduled for
/// the same tick are delivered in the order they were scheduled (FIFO).
/// This total order is what makes every simulation run reproducible, and
/// it is *identical* to [`HeapQueue`]'s order by construction.
///
/// # Structure
///
/// ```text
///            ┌ front: BinaryHeap — keys < front_bound (incl. heap mode)
/// near tier ─┤ active: sorted Vec — the bucket being drained
///            └ buckets[cursor..]: unsorted Vecs, width ticks each
/// far tier  ── overflow: unsorted Vec — keys ≥ window_end
/// ```
///
/// `schedule` routes by key range: O(1) push for bucket/overflow hits,
/// O(log f) for the (small) front heap. `pop` takes the smaller of
/// `front`'s top and `active`'s tail; when both drain it activates the
/// next non-empty bucket (one `sort_unstable` per bucket) or rebuilds the
/// window from the overflow, re-deriving the bucket width from the
/// observed span/population. Workloads whose spills repeatedly capture
/// almost nothing (pathologically skewed distributions) latch the heap
/// fallback instead of thrashing.
pub struct EventQueue<E> {
    // --- counters ---
    next_seq: u64,
    scheduled_total: u64,
    peak_len: usize,
    len: usize,

    // --- tiers ---
    /// Min-heap of everything due before `front_bound`; in heap mode (not
    /// engaged, forced, or latched) it simply holds every event.
    front: BinaryHeap<Entry<E>>,
    /// The activated bucket, sorted descending by key (pop from the back).
    active: Vec<Entry<E>>,
    /// Near-tier buckets; bucket `i` covers
    /// `[window_start + i*width, window_start + (i+1)*width)`.
    buckets: Vec<Vec<Entry<E>>>,
    /// Far tier: unsorted events with keys ≥ `window_end_bound`.
    overflow: Vec<Entry<E>>,

    // --- geometry ---
    /// First key *not* routed to the front heap (exclusive bound).
    front_bound: u128,
    /// First bucket not yet activated.
    cursor: usize,
    window_start: u64,
    /// Bucket width in ticks (≥ 1 once engaged); survives `reset` as the
    /// warm-start hint for the next engagement.
    width: u64,
    /// First key beyond the near tier (exclusive; `u128::MAX` = unbounded).
    window_end_bound: u128,

    // --- mode ---
    discipline: QueueDiscipline,
    engaged: bool,
    /// Skew heuristic latched the heap fallback (survives `reset` as a
    /// learned property of the workload; cleared by `set_discipline`).
    skew_latched: bool,
    skew_strikes: u32,
    routed_since_check: u32,
    front_since_check: u32,

    telemetry: QueueTelemetry,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the default (adaptive) discipline.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            next_seq: 0,
            scheduled_total: 0,
            peak_len: 0,
            len: 0,
            front: BinaryHeap::with_capacity(cap),
            active: Vec::new(),
            buckets: Vec::new(),
            overflow: Vec::new(),
            front_bound: 0,
            cursor: 0,
            window_start: 0,
            width: 0,
            window_end_bound: 0,
            discipline: QueueDiscipline::Adaptive,
            engaged: false,
            skew_latched: false,
            skew_strikes: 0,
            routed_since_check: 0,
            front_since_check: 0,
            telemetry: QueueTelemetry::default(),
        }
    }

    /// Creates an empty queue with a fixed discipline.
    pub fn with_discipline(discipline: QueueDiscipline) -> Self {
        let mut q = Self::new();
        q.discipline = discipline;
        q
    }

    /// Changes the backing discipline. Only valid while the queue is
    /// empty (e.g. right after [`EventQueue::reset`], which is how the
    /// simulation template applies it to pooled queues). Clears any
    /// latched skew fallback, so the new discipline starts clean.
    pub fn set_discipline(&mut self, discipline: QueueDiscipline) {
        assert!(self.is_empty(), "discipline can only change while empty");
        self.discipline = discipline;
        self.skew_latched = false;
    }

    /// The current backing discipline.
    pub fn discipline(&self) -> QueueDiscipline {
        self.discipline
    }

    /// True when every event is currently routed through the heap tier
    /// (forced discipline or latched skew fallback).
    #[inline]
    fn heap_mode(&self) -> bool {
        self.skew_latched || self.discipline == QueueDiscipline::Heap
    }

    /// Schedules `event` for delivery at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(Entry {
            key: pack(at, seq),
            event,
        });
    }

    /// Schedules `event` with a *caller-supplied* tie-break sequence
    /// instead of the internal monotonic counter.
    ///
    /// This is the primitive behind sharded simulation: when `seq` is a
    /// pure function of the scheduling site (e.g. packed
    /// `(lane, per-lane counter)`), the total `(at, seq)` delivery order
    /// no longer depends on global insertion order, so independently
    /// scheduled partitions reproduce the sequential order exactly.
    ///
    /// The caller must keep `(at, seq)` pairs unique for the order to be
    /// total; a run should use either keyed or unkeyed scheduling, never
    /// both (the internal counter is not advanced here).
    pub fn schedule_keyed(&mut self, at: SimTime, seq: u64, event: E) {
        debug_assert_eq!(
            self.next_seq, 0,
            "keyed and unkeyed scheduling must not mix within one run"
        );
        self.insert(Entry {
            key: pack(at, seq),
            event,
        });
    }

    /// Schedules a batch of keyed events (see
    /// [`EventQueue::schedule_keyed`]), reserving capacity up front.
    pub fn schedule_batch_keyed<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, u64, E)>,
    {
        let events = events.into_iter();
        let (lower, _) = events.size_hint();
        self.reserve(lower);
        for (at, seq, event) in events {
            self.schedule_keyed(at, seq, event);
        }
    }

    /// Common insert path: counts, then routes by mode.
    #[inline]
    fn insert(&mut self, entry: Entry<E>) {
        self.scheduled_total += 1;
        self.len += 1;
        if self.len > self.peak_len {
            self.peak_len = self.len;
        }
        if self.engaged {
            self.route(entry);
        } else {
            self.front.push(entry);
            if !self.heap_mode() && self.front.len() >= ENGAGE_LEN {
                self.engage();
            }
        }
    }

    /// Schedules a batch of events, reserving capacity for all of them up
    /// front. Delivery order within the batch follows iteration order (the
    /// usual FIFO tie-break), exactly as if each was scheduled one by one.
    pub fn schedule_batch<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        let events = events.into_iter();
        let (lower, _) = events.size_hint();
        self.reserve(lower);
        for (at, event) in events {
            self.schedule(at, event);
        }
    }

    /// Reserves capacity for at least `additional` more events (in the
    /// tier that absorbs scheduling bursts: the front heap before the
    /// ladder engages, the overflow after).
    pub fn reserve(&mut self, additional: usize) {
        if self.engaged {
            self.overflow.reserve(additional);
        } else {
            self.front.reserve(additional);
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        // The settled invariant (kept by `schedule`/`pop`/`engage`): if
        // the queue is non-empty, its minimum is `front`'s top or
        // `active`'s tail. Both tiers hold keys below `front_bound`, so
        // one full-key comparison picks the true minimum.
        let from_active = match (self.front.peek(), self.active.last()) {
            (None, None) => return None,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (Some(f), Some(a)) => a.key < f.key,
        };
        let entry = if from_active {
            self.active.pop()
        } else {
            self.front.pop()
        }?;
        self.len -= 1;
        if self.engaged {
            self.settle();
        }
        Some(entry.into_scheduled())
    }

    /// The delivery time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match (self.front.peek(), self.active.last()) {
            (None, None) => None,
            (Some(f), None) => Some(unpack_at(f.key)),
            (None, Some(a)) => Some(unpack_at(a.key)),
            (Some(f), Some(a)) => Some(unpack_at(f.key.min(a.key))),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// The largest number of simultaneously pending events seen so far —
    /// the capacity a future run of the same model actually needs (a much
    /// tighter pre-reserve hint than [`EventQueue::scheduled_total`]).
    /// Survives [`EventQueue::reset`] so recycled queues keep the hint.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Telemetry counters for the current run, plus the current geometry.
    pub fn telemetry(&self) -> QueueTelemetry {
        QueueTelemetry {
            engaged: self.engaged,
            heap_fallback: self.heap_mode(),
            bucket_count: self.buckets.len(),
            bucket_width: self.width,
            ..self.telemetry
        }
    }

    /// Drops all pending events and restarts the tie-break sequence, so a
    /// cleared queue is *ordering-equivalent* to a fresh one: the next
    /// same-tick burst gets the same FIFO order either way. Lifetime
    /// counters ([`EventQueue::scheduled_total`], telemetry) are retained;
    /// use [`EventQueue::reset`] to zero those too.
    pub fn clear(&mut self) {
        self.drop_pending();
        // Safe to rewind with nothing pending; keeping it advanced (as
        // this method once did) would break same-tick FIFO equivalence
        // with a fresh queue.
        self.next_seq = 0;
    }

    /// Empties the queue and resets the sequence, schedule, and telemetry
    /// counters, retaining allocations up to a *bounded* warm-start
    /// footprint plus the geometry hints ([`EventQueue::peak_len`], the
    /// bucket width, the latched fallback). This is the recycle entry
    /// point: a reset queue behaves exactly like a freshly constructed
    /// one — only faster, because the next run starts with last run's
    /// capacity and geometry.
    ///
    /// Bounded retention: an overflow-tier spill redistributes the far
    /// tier across the buckets, so after a spill-heavy run the bucket and
    /// active tiers can each hold run-peak-sized allocations — unbounded
    /// retention would pin a million-node run's peak memory across every
    /// pooled replay. `reset` therefore shrinks each bucket (and the
    /// active tier) to `RESET_BUCKET_RETAIN` entries, drops the overflow
    /// allocation, and caps the front heap at its engage threshold.
    /// Callers that want a warm start re-reserve via
    /// [`EventQueue::reserve`] with the retained [`EventQueue::peak_len`]
    /// hint, which restores capacity in the one tier that absorbs the
    /// next run's scheduling burst.
    pub fn reset(&mut self) {
        self.drop_pending();
        self.next_seq = 0;
        self.scheduled_total = 0;
        self.telemetry = QueueTelemetry::default();
        for b in &mut self.buckets {
            b.shrink_to(RESET_BUCKET_RETAIN);
        }
        self.active.shrink_to(RESET_BUCKET_RETAIN);
        self.overflow.shrink_to(0);
        self.front.shrink_to(ENGAGE_LEN);
    }

    /// Total entry capacity currently retained across every tier — the
    /// queue's idle memory footprint in events. Exposed so pooling layers
    /// (and the bounded-retention test) can observe what `reset` keeps.
    pub fn retained_capacity(&self) -> usize {
        self.front.capacity()
            + self.active.capacity()
            + self.overflow.capacity()
            + self.buckets.iter().map(Vec::capacity).sum::<usize>()
    }

    /// Drops pending events from every tier, disengaging the ladder but
    /// keeping allocations, geometry, and the skew latch.
    fn drop_pending(&mut self) {
        self.front.clear();
        self.active.clear();
        for b in &mut self.buckets {
            b.clear();
        }
        self.overflow.clear();
        self.len = 0;
        self.disengage();
    }

    /// Leaves engaged mode with empty tiers, retaining `width` (and the
    /// bucket allocations) as the warm-start hint for the next engage.
    fn disengage(&mut self) {
        self.engaged = false;
        self.cursor = 0;
        self.front_bound = 0;
        self.window_end_bound = 0;
        self.skew_strikes = 0;
        self.routed_since_check = 0;
        self.front_since_check = 0;
    }

    // --- ladder internals -------------------------------------------------

    /// Routes one entry by key range while engaged. Ranges are disjoint
    /// and every bucket index reachable here is ≥ `cursor`, so no event
    /// can land behind the drain point.
    #[inline]
    fn route(&mut self, entry: Entry<E>) {
        if below(entry.key, self.front_bound) {
            self.telemetry.front_inserts += 1;
            self.front_since_check += 1;
            self.front.push(entry);
        } else if below(entry.key, self.window_end_bound) {
            self.push_bucket(entry);
        } else {
            self.overflow.push(entry);
        }
        self.routed_since_check += 1;
        if self.routed_since_check == ROUTE_CHECK {
            self.check_skew();
        }
    }

    /// The skew heuristic: if over 3/4 of the last [`ROUTE_CHECK`] routed
    /// events landed in the front heap, the buckets are not absorbing the
    /// traffic (the active bucket's range swallows nearly every new
    /// event, typically because a far outlier stretched the width). After
    /// [`SKEW_STRIKES`] consecutive such windows, latch the heap fallback
    /// — the front heap was doing all the work anyway.
    fn check_skew(&mut self) {
        let front_dominated = self.front_since_check * 4 > ROUTE_CHECK * 3;
        self.routed_since_check = 0;
        self.front_since_check = 0;
        if front_dominated {
            self.skew_strikes += 1;
            if self.skew_strikes >= SKEW_STRIKES {
                self.latch_fallback();
            }
        } else {
            self.skew_strikes = 0;
        }
    }

    #[inline]
    fn push_bucket(&mut self, entry: Entry<E>) {
        let at = unpack_at(entry.key).ticks();
        let idx = (((at - self.window_start) / self.width) as usize).min(self.buckets.len() - 1);
        let bucket = &mut self.buckets[idx];
        bucket.push(entry);
        if bucket.len() > self.telemetry.max_bucket_occupancy {
            self.telemetry.max_bucket_occupancy = bucket.len();
        }
    }

    /// First engagement: drain the front heap into a fresh window. Uses
    /// the retained width hint when one exists (warm start across
    /// [`EventQueue::reset`]); otherwise derives the width from the
    /// drained population.
    fn engage(&mut self) {
        let drained = std::mem::take(&mut self.front).into_vec();
        self.telemetry.engagements += 1;
        self.engaged = true;
        self.build_window(drained, self.width);
        self.settle();
    }

    /// Rebuilds the near-tier window from `events` (all pending events at
    /// or beyond the new window start — `front` and `active` are empty
    /// here). Geometry adapts to the observed population: the bucket
    /// count tracks its size, the width its time span, so the window
    /// covers every event it is built from (capture is total — a rebuild
    /// can never thrash) at ~[`TARGET_PER_BUCKET`] events per bucket on
    /// average. A non-zero `width_hint` (the warm-start geometry retained
    /// across [`EventQueue::reset`]) overrides the width; events it fails
    /// to cover spill to the overflow and are re-windowed span-based on
    /// the next rebuild, so a stale hint self-heals after one extra pass.
    fn build_window(&mut self, events: Vec<Entry<E>>, width_hint: u64) {
        debug_assert!(!events.is_empty());
        let mut min_key = u128::MAX;
        let mut max_at = 0u64;
        for e in &events {
            min_key = min_key.min(e.key);
            max_at = max_at.max(unpack_at(e.key).ticks());
        }
        let min_at = unpack_at(min_key).ticks();
        let count = events.len();
        let n_buckets = (count / TARGET_PER_BUCKET)
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let width = if width_hint != 0 {
            width_hint
        } else {
            // Strictly covers [min_at, max_at]: n_buckets · width > span.
            (max_at - min_at) / n_buckets as u64 + 1
        };
        if width != self.width || n_buckets != self.buckets.len() {
            self.telemetry.resizes += 1;
        }
        self.width = width;
        self.window_start = min_at;
        self.buckets.resize_with(n_buckets, Vec::new);
        self.window_end_bound = match width
            .checked_mul(n_buckets as u64)
            .and_then(|span| min_at.checked_add(span))
        {
            Some(end) => (end as u128) << 64,
            None => u128::MAX,
        };
        self.cursor = 0;
        self.front_bound = (min_at as u128) << 64;
        for entry in events {
            debug_assert!(!below(entry.key, self.front_bound));
            if below(entry.key, self.window_end_bound) {
                self.push_bucket(entry);
            } else {
                self.overflow.push(entry);
            }
        }
        // The minimum event is always captured (bucket 0 covers at least
        // [min_at, min_at + 1)), so the caller's settle loop activates a
        // bucket right away — a rebuild always makes progress.
    }

    /// The skew heuristic gives up on buckets: move everything into the
    /// front heap and stay there until the queue is recycled.
    fn latch_fallback(&mut self) {
        let mut all = std::mem::take(&mut self.front).into_vec();
        all.append(&mut self.active);
        for b in &mut self.buckets {
            all.append(b);
        }
        all.append(&mut self.overflow);
        self.front = BinaryHeap::from(all);
        self.skew_latched = true;
        self.telemetry.fallback_activations += 1;
        self.disengage();
    }

    /// Restores the settled invariant after a pop (or window rebuild):
    /// activate buckets / respill the overflow until the minimum is
    /// reachable at the front or active tier, or the queue empties.
    fn settle(&mut self) {
        while self.front.is_empty() && self.active.is_empty() {
            while self.cursor < self.buckets.len() && self.buckets[self.cursor].is_empty() {
                self.cursor += 1;
            }
            if self.cursor < self.buckets.len() {
                self.activate(self.cursor);
            } else if !self.overflow.is_empty() {
                self.telemetry.spills += 1;
                let overflow = std::mem::take(&mut self.overflow);
                // Recompute the geometry from the far tier's distribution
                // (the warm hint is only trusted at engage time).
                self.build_window(overflow, 0);
            } else {
                debug_assert_eq!(self.len, 0);
                self.disengage();
                return;
            }
        }
    }

    /// Makes bucket `i` the active (sorted, drain-from-back) tier and
    /// extends the front region over its key range, so later same-range
    /// schedules go to the front heap and stay correctly ordered.
    fn activate(&mut self, i: usize) {
        std::mem::swap(&mut self.active, &mut self.buckets[i]);
        self.active
            .sort_unstable_by_key(|e| std::cmp::Reverse(e.key));
        self.cursor = i + 1;
        self.front_bound = if i + 1 == self.buckets.len() {
            self.window_end_bound
        } else {
            match ((i + 1) as u64)
                .checked_mul(self.width)
                .and_then(|off| self.window_start.checked_add(off))
            {
                Some(end) => (end as u128) << 64,
                None => self.window_end_bound,
            }
        };
    }
}

/// The packed-key binary-heap future-event list — `EventQueue`'s
/// pre-ladder implementation, kept as the reference oracle.
///
/// Delivery order is exactly [`EventQueue`]'s: ascending `(at, seq)`.
/// The differential proptests replay random schedules against both and
/// assert identical `(at, seq, event)` streams; the `event_queue` bench
/// measures the ladder against this baseline.
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    scheduled_total: u64,
    peak_len: usize,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        HeapQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            scheduled_total: 0,
            peak_len: 0,
        }
    }

    /// Schedules `event` for delivery at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry {
            key: pack(at, seq),
            event,
        });
        if self.heap.len() > self.peak_len {
            self.peak_len = self.heap.len();
        }
    }

    /// Schedules a batch of events (iteration order = FIFO tie-break).
    pub fn schedule_batch<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        let events = events.into_iter();
        let (lower, _) = events.size_hint();
        self.heap.reserve(lower);
        for (at, event) in events {
            self.schedule(at, event);
        }
    }

    /// Schedules with a caller-supplied tie-break sequence (reference
    /// counterpart of [`EventQueue::schedule_keyed`]; same uniqueness and
    /// no-mixing contract).
    pub fn schedule_keyed(&mut self, at: SimTime, seq: u64, event: E) {
        debug_assert_eq!(
            self.next_seq, 0,
            "keyed and unkeyed scheduling must not mix within one run"
        );
        self.scheduled_total += 1;
        self.heap.push(Entry {
            key: pack(at, seq),
            event,
        });
        if self.heap.len() > self.peak_len {
            self.peak_len = self.heap.len();
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop().map(Entry::into_scheduled)
    }

    /// The delivery time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| unpack_at(e.key))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Largest number of simultaneously pending events seen so far.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Drops all pending events and restarts the tie-break sequence
    /// (ordering-equivalent to a fresh queue; same contract as
    /// [`EventQueue::clear`]).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
    }

    /// Empties the queue and resets all counters, retaining allocations.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.scheduled_total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    /// Drains a queue into `(at, seq, event)` tuples.
    fn drain<E>(q: &mut EventQueue<E>) -> Vec<(SimTime, u64, E)> {
        std::iter::from_fn(|| q.pop().map(|e| (e.at, e.seq, e.event))).collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            let ev = q.pop().unwrap();
            assert_eq!(ev.event, i);
            assert_eq!(ev.at, t(5));
        }
    }

    #[test]
    fn interleaved_ties_and_times() {
        let mut q = EventQueue::new();
        q.schedule(t(2), "x1");
        q.schedule(t(1), "a");
        q.schedule(t(2), "x2");
        q.schedule(t(1), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "x1", "x2"]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn counters_and_clear() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        q.schedule(t(1), 1u8);
        q.schedule(t(2), 2u8);
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2, "clear keeps the lifetime counter");
    }

    /// Satellite fix: a cleared queue must tie-break exactly like a fresh
    /// one — `clear()` rewinds the sequence counter now that nothing is
    /// pending, so same-tick FIFO streams are identical.
    #[test]
    fn clear_is_ordering_equivalent_to_fresh() {
        let mut cleared = EventQueue::new();
        for i in 0..40 {
            cleared.schedule(t(i), "warm");
        }
        cleared.pop();
        cleared.clear();
        let mut fresh = EventQueue::new();
        let burst = [(t(5), "a"), (t(5), "b"), (t(3), "c"), (t(5), "d")];
        cleared.schedule_batch(burst.iter().copied());
        fresh.schedule_batch(burst.iter().copied());
        assert_eq!(drain(&mut cleared), drain(&mut fresh));
        assert_eq!(cleared.scheduled_total(), 44, "lifetime counter retained");
    }

    #[test]
    fn packed_key_preserves_extreme_times_and_seqs() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::MAX, "last");
        q.schedule(t(0), "first");
        q.schedule(t(u64::MAX - 1), "penultimate");
        let a = q.pop().unwrap();
        assert_eq!((a.at, a.event), (t(0), "first"));
        let b = q.pop().unwrap();
        assert_eq!((b.at, b.event), (t(u64::MAX - 1), "penultimate"));
        let c = q.pop().unwrap();
        assert_eq!((c.at, c.event), (SimTime::MAX, "last"));
    }

    #[test]
    fn pop_reports_sequence_numbers() {
        let mut q = EventQueue::new();
        q.schedule(t(9), "x");
        q.schedule(t(4), "y");
        assert_eq!(q.pop().unwrap().seq, 1, "y was scheduled second");
        assert_eq!(q.pop().unwrap().seq, 0);
    }

    #[test]
    fn schedule_batch_matches_individual_schedules() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        let events = [(t(5), "e5"), (t(1), "e1"), (t(5), "e5b")];
        for &(at, ev) in &events {
            a.schedule(at, ev);
        }
        b.schedule_batch(events.iter().copied());
        assert_eq!(drain(&mut a), drain(&mut b));
        assert_eq!(b.scheduled_total(), 3);
    }

    #[test]
    fn reset_recycles_like_new() {
        let mut q = EventQueue::new();
        for i in 0..50 {
            q.schedule(t(100 - i), i);
        }
        assert_eq!(q.peak_len(), 50);
        q.pop();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 0);
        assert_eq!(q.peak_len(), 50, "reset keeps the capacity hint");
        // Behaves exactly like a fresh queue: seq restarts at zero.
        q.schedule(t(3), 7u64);
        let ev = q.pop().unwrap();
        assert_eq!((ev.at, ev.seq, ev.event), (t(3), 0, 7u64));
    }

    #[test]
    fn reserve_only_grows_capacity() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.reserve(128);
        q.schedule(t(1), 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().event, 1);
    }

    // --- ladder-specific coverage ----------------------------------------

    /// Pushes enough spread-out events to cross the engage threshold.
    fn engaged_queue() -> EventQueue<usize> {
        let mut q = EventQueue::new();
        for i in 0..4 * ENGAGE_LEN {
            q.schedule(t((i as u64 * 37) % 10_000), i);
        }
        assert!(q.telemetry().engaged, "ladder should have engaged");
        q
    }

    #[test]
    fn ladder_engages_and_orders_exactly_like_heap() {
        let mut q = engaged_queue();
        let mut h = HeapQueue::new();
        for i in 0..4 * ENGAGE_LEN {
            h.schedule(t((i as u64 * 37) % 10_000), i);
        }
        let tele = q.telemetry();
        assert!(tele.engagements >= 1);
        assert!(tele.bucket_count >= MIN_BUCKETS);
        assert!(tele.bucket_width >= 1);
        loop {
            match (q.pop(), h.pop()) {
                (None, None) => break,
                (a, b) => {
                    let a = a.expect("same length");
                    let b = b.expect("same length");
                    assert_eq!((a.at, a.seq, a.event), (b.at, b.seq, b.event));
                }
            }
        }
    }

    /// Hold-model workload: pop one, schedule one in the future. This
    /// exercises front-heap inserts (intra-active-bucket), bucket hits,
    /// and overflow spills in one run.
    #[test]
    fn ladder_hold_model_matches_heap() {
        let mut q = EventQueue::new();
        let mut h = HeapQueue::new();
        let sched = |q: &mut EventQueue<u64>, h: &mut HeapQueue<u64>, at: u64, ev: u64| {
            q.schedule(t(at), ev);
            h.schedule(t(at), ev);
        };
        for i in 0..600u64 {
            sched(&mut q, &mut h, i * 11 % 4000, i);
        }
        let mut step = 0u64;
        loop {
            let (a, b) = (q.pop(), h.pop());
            match (&a, &b) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!((x.at, x.seq, x.event), (y.at, y.seq, y.event));
                }
                _ => panic!("queues diverged in length"),
            }
            let now = a.unwrap().at.ticks();
            step += 1;
            if step < 500 {
                // Mix of short (same active bucket), medium, and long hops.
                sched(&mut q, &mut h, now + 1 + step % 7, 10_000 + step);
                if step % 3 == 0 {
                    sched(
                        &mut q,
                        &mut h,
                        now + 5_000 + step * 13 % 9_000,
                        20_000 + step,
                    );
                }
            }
        }
        assert!(q.telemetry().spills >= 1, "overflow tier never exercised");
    }

    /// Forced heap discipline produces the identical stream (it is the
    /// reference structure) and reports heap_fallback telemetry.
    #[test]
    fn heap_discipline_matches_adaptive() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::with_discipline(QueueDiscipline::Heap);
        for i in 0..1000u64 {
            let at = t(i * 7919 % 5000);
            a.schedule(at, i);
            b.schedule(at, i);
        }
        assert!(a.telemetry().engaged);
        assert!(!b.telemetry().engaged);
        assert!(b.telemetry().heap_fallback);
        assert_eq!(drain(&mut a), drain(&mut b));
    }

    /// An adversarially skewed population — one event at the far end of
    /// the time axis stretches the window so wide that the active bucket
    /// swallows all real traffic — latches the heap fallback instead of
    /// degenerating into a sorted-vec queue, and keeps delivering in
    /// exact order.
    #[test]
    fn skew_latches_fallback() {
        let mut q = EventQueue::new();
        let mut h = HeapQueue::new();
        // The far outlier goes in first so it is part of the engage-time
        // window build and blows up the bucket width.
        q.schedule(t(u64::MAX - 1), 0u64);
        h.schedule(t(u64::MAX - 1), 0u64);
        // Dense near-term traffic: after engagement every one of these
        // routes into the front heap (the active bucket covers a huge
        // span), which is exactly the skew signature.
        for i in 1..6000u64 {
            let at = t(i % 911);
            q.schedule(at, i);
            h.schedule(at, i);
        }
        let tele = q.telemetry();
        assert!(
            tele.fallback_activations >= 1,
            "skew heuristic never latched: {tele:?}"
        );
        assert!(tele.heap_fallback);
        // Once latched, later schedules stay on the heap path.
        q.schedule(t(17), 999_999);
        h.schedule(t(17), 999_999);
        loop {
            match (q.pop(), h.pop()) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert_eq!((a.at, a.seq, a.event), (b.at, b.seq, b.event));
                }
                _ => panic!("queues diverged in length"),
            }
        }
    }

    /// Satellite: `reset()` after resizes and overflow spills behaves
    /// exactly like a fresh queue — seq restarts, telemetry counters
    /// zero, and the bucket geometry survives as a warm-start hint.
    #[test]
    fn reset_after_spill_recycles_like_new() {
        let mut q = engaged_queue();
        while q.len() > 10 {
            q.pop();
        }
        // Push far-future mass to force at least one overflow spill.
        for i in 0..3 * ENGAGE_LEN {
            q.schedule(t(1_000_000 + (i as u64 * 97) % 50_000), i);
        }
        while q.pop().is_some() {}
        let before = q.telemetry();
        assert!(before.spills >= 1, "no spill provoked: {before:?}");
        let hint_width = before.bucket_width;
        assert!(hint_width >= 1);

        q.reset();
        let after = q.telemetry();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 0);
        assert_eq!(
            (
                after.engagements,
                after.resizes,
                after.spills,
                after.front_inserts
            ),
            (0, 0, 0, 0),
            "telemetry counters must zero on reset"
        );
        assert_eq!(after.max_bucket_occupancy, 0);
        assert_eq!(after.bucket_width, hint_width, "geometry hint retained");
        assert!(!after.engaged);

        // Replays the exact sequence a fresh queue would see.
        let mut fresh = EventQueue::new();
        for i in 0..3 * ENGAGE_LEN {
            let at = t(i as u64 * 37 % 10_000);
            q.schedule(at, i);
            fresh.schedule(at, i);
        }
        assert_eq!(drain(&mut q), drain(&mut fresh));
    }

    /// Keyed scheduling delivers in `(at, seq)` order regardless of
    /// insertion order, identically across both queue structures — the
    /// property sharded simulation relies on.
    #[test]
    fn keyed_order_is_insertion_invariant() {
        // Two "lanes" with packed (lane << 40 | counter) keys, inserted in
        // two different interleavings, plus the heap oracle.
        let lane = |l: u64, c: u64| (l << 40) | c;
        let events = [
            (t(5), lane(1, 0), "b0"),
            (t(5), lane(0, 0), "a0"),
            (t(2), lane(1, 1), "b1"),
            (t(5), lane(0, 1), "a1"),
            (t(9), lane(2, 0), "c0"),
        ];
        let mut fwd = EventQueue::new();
        let mut rev = EventQueue::new();
        let mut heap = HeapQueue::new();
        fwd.schedule_batch_keyed(events.iter().copied());
        for &(at, seq, ev) in events.iter().rev() {
            rev.schedule_keyed(at, seq, ev);
            heap.schedule_keyed(at, seq, ev);
        }
        let stream = drain(&mut fwd);
        assert_eq!(stream, drain(&mut rev));
        let heap_stream: Vec<_> =
            std::iter::from_fn(|| heap.pop().map(|e| (e.at, e.seq, e.event))).collect();
        assert_eq!(stream, heap_stream);
        assert_eq!(
            stream.iter().map(|&(_, _, e)| e).collect::<Vec<_>>(),
            vec!["b1", "a0", "a1", "b0", "c0"],
            "time first, then lane-packed seq"
        );
    }

    /// Keyed scheduling at scale matches the heap oracle through engage,
    /// bucket, and overflow routing.
    #[test]
    fn keyed_ladder_matches_heap_oracle() {
        let mut q = EventQueue::new();
        let mut h = HeapQueue::new();
        for i in 0..2000u64 {
            let lane = i % 7;
            let seq = (lane << 40) | (i / 7);
            let at = t(i * 37 % 10_000);
            q.schedule_keyed(at, seq, i);
            h.schedule_keyed(at, seq, i);
        }
        assert!(q.telemetry().engaged);
        loop {
            match (q.pop(), h.pop()) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert_eq!((a.at, a.seq, a.event), (b.at, b.seq, b.event));
                }
                _ => panic!("queues diverged in length"),
            }
        }
    }

    /// Satellite: after an overflow spill inflates the bucket tier,
    /// `reset()` releases the excess capacity (bounded retention) instead
    /// of pinning the run's peak memory across pooled replays.
    #[test]
    fn reset_releases_spill_capacity() {
        let mut q = EventQueue::new();
        // Engage with a compact near window, then dump a large far-future
        // mass on a single tick: the rebuild spills it all into one
        // bucket, which then holds a run-peak-sized allocation.
        for i in 0..2 * ENGAGE_LEN {
            q.schedule(t(i as u64 % 64), i);
        }
        for i in 0..60_000 {
            q.schedule(t(1_000_000), i);
        }
        while q.pop().is_some() {}
        assert!(q.telemetry().spills >= 1, "no spill provoked");
        let inflated = q.retained_capacity();
        assert!(
            inflated > 50_000,
            "spill should leave peak-sized capacity behind, got {inflated}"
        );

        q.reset();
        let retained = q.retained_capacity();
        assert!(
            retained < 8 * ENGAGE_LEN,
            "reset must release spill capacity, still retains {retained}"
        );
        assert_eq!(q.peak_len(), 60_000 + 2 * ENGAGE_LEN, "hint survives");

        // Still behaves exactly like a fresh queue after the shrink.
        let mut fresh = EventQueue::new();
        for i in 0..3 * ENGAGE_LEN {
            let at = t(i as u64 * 37 % 10_000);
            q.schedule(at, i);
            fresh.schedule(at, i);
        }
        assert_eq!(drain(&mut q), drain(&mut fresh));
    }

    /// Scheduling earlier than the active bucket (allowed by the API even
    /// though the engine never does it) still delivers in exact order.
    #[test]
    fn past_schedules_while_engaged_stay_ordered() {
        let mut q = engaged_queue();
        for _ in 0..50 {
            q.pop();
        }
        q.schedule(t(0), 999_999);
        let ev = q.pop().unwrap();
        assert_eq!((ev.at, ev.event), (t(0), 999_999));
    }

    #[test]
    fn heap_queue_basics() {
        let mut q = HeapQueue::new();
        q.schedule(t(5), "b");
        q.schedule(t(1), "a");
        q.schedule(t(5), "c");
        assert_eq!(q.peek_time(), Some(t(1)));
        assert_eq!(q.len(), 3);
        assert_eq!(q.scheduled_total(), 3);
        assert_eq!(q.peak_len(), 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        q.schedule(t(9), "z");
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 4, "clear keeps the lifetime counter");
        q.schedule(t(2), "y");
        assert_eq!(q.pop().unwrap().seq, 0, "clear rewinds the sequence");
        q.reset();
        assert_eq!(q.scheduled_total(), 0);
    }

    #[test]
    fn discipline_round_trip() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.discipline(), QueueDiscipline::Adaptive);
        q.set_discipline(QueueDiscipline::Heap);
        assert_eq!(q.discipline(), QueueDiscipline::Heap);
        q.schedule(t(1), 1);
        q.pop();
        q.set_discipline(QueueDiscipline::Adaptive);
        assert_eq!(q.discipline(), QueueDiscipline::Adaptive);
    }
}
