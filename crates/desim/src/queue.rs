//! The future-event list.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event together with its delivery time and a tie-breaking sequence
/// number assigned at scheduling time.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Simulated delivery time.
    pub at: SimTime,
    /// Monotonic insertion sequence; earlier-scheduled events at the same
    /// tick are delivered first.
    pub seq: u64,
    /// The model-defined event payload.
    pub event: E,
}

/// Heap entry with `(at, seq)` packed into one `u128` so the hot heap
/// sift compares a single integer instead of a lexicographic tuple.
///
/// `key = (at << 64) | seq`: because both halves are unsigned and occupy
/// disjoint bit ranges, numeric order on `key` equals lexicographic order
/// on `(at, seq)`.
struct Entry<E> {
    key: u128,
    event: E,
}

#[inline]
fn pack(at: SimTime, seq: u64) -> u128 {
    ((at.ticks() as u128) << 64) | seq as u128
}

#[inline]
fn unpack_at(key: u128) -> SimTime {
    SimTime::from_ticks((key >> 64) as u64)
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smallest key is the heap maximum.
        other.key.cmp(&self.key)
    }
}

/// A deterministic future-event list.
///
/// Events are delivered in nondecreasing time order; events scheduled for
/// the same tick are delivered in the order they were scheduled (FIFO).
/// This total order is what makes every simulation run reproducible.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    scheduled_total: u64,
    peak_len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
            peak_len: 0,
        }
    }

    /// Creates an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            scheduled_total: 0,
            peak_len: 0,
        }
    }

    /// Schedules `event` for delivery at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry {
            key: pack(at, seq),
            event,
        });
        if self.heap.len() > self.peak_len {
            self.peak_len = self.heap.len();
        }
    }

    /// Schedules a batch of events, reserving capacity for all of them up
    /// front. Delivery order within the batch follows iteration order (the
    /// usual FIFO tie-break), exactly as if each was scheduled one by one.
    pub fn schedule_batch<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        let events = events.into_iter();
        let (lower, _) = events.size_hint();
        self.heap.reserve(lower);
        for (at, event) in events {
            self.schedule(at, event);
        }
    }

    /// Reserves capacity for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop().map(|e| ScheduledEvent {
            at: unpack_at(e.key),
            seq: e.key as u64,
            event: e.event,
        })
    }

    /// The delivery time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| unpack_at(e.key))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// The largest number of simultaneously pending events seen so far —
    /// the capacity a future run of the same model actually needs (a much
    /// tighter pre-reserve hint than [`EventQueue::scheduled_total`]).
    /// Survives [`EventQueue::reset`] so recycled queues keep the hint.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Drops all pending events (the schedule counter is retained).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Empties the queue and resets the sequence and schedule counters,
    /// retaining the heap allocation (and the [`EventQueue::peak_len`]
    /// hint). This is the recycle entry point: a reset queue behaves
    /// exactly like a freshly constructed one, so reusing allocations
    /// across simulation runs cannot change results.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.scheduled_total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            let ev = q.pop().unwrap();
            assert_eq!(ev.event, i);
            assert_eq!(ev.at, t(5));
        }
    }

    #[test]
    fn interleaved_ties_and_times() {
        let mut q = EventQueue::new();
        q.schedule(t(2), "x1");
        q.schedule(t(1), "a");
        q.schedule(t(2), "x2");
        q.schedule(t(1), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "x1", "x2"]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn counters_and_clear() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        q.schedule(t(1), 1u8);
        q.schedule(t(2), 2u8);
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2, "clear keeps the lifetime counter");
    }

    #[test]
    fn packed_key_preserves_extreme_times_and_seqs() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::MAX, "last");
        q.schedule(t(0), "first");
        q.schedule(t(u64::MAX - 1), "penultimate");
        let a = q.pop().unwrap();
        assert_eq!((a.at, a.event), (t(0), "first"));
        let b = q.pop().unwrap();
        assert_eq!((b.at, b.event), (t(u64::MAX - 1), "penultimate"));
        let c = q.pop().unwrap();
        assert_eq!((c.at, c.event), (SimTime::MAX, "last"));
    }

    #[test]
    fn pop_reports_sequence_numbers() {
        let mut q = EventQueue::new();
        q.schedule(t(9), "x");
        q.schedule(t(4), "y");
        assert_eq!(q.pop().unwrap().seq, 1, "y was scheduled second");
        assert_eq!(q.pop().unwrap().seq, 0);
    }

    #[test]
    fn schedule_batch_matches_individual_schedules() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        let events = [(t(5), "e5"), (t(1), "e1"), (t(5), "e5b")];
        for &(at, ev) in &events {
            a.schedule(at, ev);
        }
        b.schedule_batch(events.iter().copied());
        loop {
            match (a.pop(), b.pop()) {
                (None, None) => break,
                (x, y) => {
                    let x = x.expect("same length");
                    let y = y.expect("same length");
                    assert_eq!((x.at, x.seq, x.event), (y.at, y.seq, y.event));
                }
            }
        }
        assert_eq!(b.scheduled_total(), 3);
    }

    #[test]
    fn reset_recycles_like_new() {
        let mut q = EventQueue::new();
        for i in 0..50 {
            q.schedule(t(100 - i), i);
        }
        assert_eq!(q.peak_len(), 50);
        q.pop();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 0);
        assert_eq!(q.peak_len(), 50, "reset keeps the capacity hint");
        // Behaves exactly like a fresh queue: seq restarts at zero.
        q.schedule(t(3), 7u64);
        let ev = q.pop().unwrap();
        assert_eq!((ev.at, ev.seq, ev.event), (t(3), 0, 7u64));
    }

    #[test]
    fn reserve_only_grows_capacity() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.reserve(128);
        q.schedule(t(1), 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().event, 1);
    }
}
