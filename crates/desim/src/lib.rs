//! # gridscale-desim
//!
//! A deterministic discrete-event simulation (DES) kernel.
//!
//! This crate is the substrate on which the gridscale Grid simulator is
//! built. The paper this repository reproduces (Mitra, Maheswaran, Ali,
//! *Measuring Scalability of Resource Management Systems*, IPDPS 2005) wrote
//! its simulator in Parsec, a parallel simulation language. Parsec is used
//! there purely as a sequential-semantics DES engine, so this kernel is a
//! faithful substitute: a time-ordered event queue, logical processes, and a
//! seeded random-number layer. Unlike Parsec, every run here is a pure
//! function of `(model, seed)` — ties in event time are broken by insertion
//! sequence, so results are bit-for-bit reproducible.
//!
//! ## Architecture
//!
//! * [`SimTime`] — discrete simulation clock (integer ticks).
//! * [`EventQueue`] — adaptive two-tier ladder future-event list with
//!   deterministic FIFO tie-breaking: O(1) amortized schedule/pop via
//!   time buckets, a far-future overflow tier, self-tuning bucket
//!   geometry, and a packed-key binary-heap fallback
//!   ([`QueueDiscipline`]) for skewed distributions. [`HeapQueue`] is
//!   the plain binary-heap reference with the identical delivery order.
//! * [`Engine`] / [`World`] — the driver loop: the engine pops the earliest
//!   event and hands it to the model, which may schedule more events.
//! * [`SimRng`] — seeded RNG with the distributions the workload and
//!   topology layers need (exponential, log-normal, Weibull, Zipf, …),
//!   implemented in-crate so the only external dependency is `rand`'s core.
//! * [`stats`] — online statistics: counters, Welford mean/variance,
//!   time-weighted averages, fixed-bin histograms.
//!
//! ## Example
//!
//! ```
//! use gridscale_desim::{Engine, EventQueue, SimTime, World};
//!
//! /// Counts ping-pong exchanges until time 100.
//! struct PingPong { pings: u64 }
//!
//! #[derive(Debug, Clone, PartialEq, Eq)]
//! enum Ev { Ping, Pong }
//!
//! impl World for PingPong {
//!     type Event = Ev;
//!     fn handle(&mut self, now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
//!         match ev {
//!             Ev::Ping => {
//!                 self.pings += 1;
//!                 q.schedule(now + SimTime::from_ticks(7), Ev::Pong);
//!             }
//!             Ev::Pong => q.schedule(now + SimTime::from_ticks(3), Ev::Ping),
//!         }
//!     }
//! }
//!
//! let mut world = PingPong { pings: 0 };
//! let mut engine = Engine::new();
//! engine.queue_mut().schedule(SimTime::ZERO, Ev::Ping);
//! // Pings fire at t = 0, 10, 20, …, 100 — eleven in total.
//! engine.run_until(&mut world, SimTime::from_ticks(100));
//! assert_eq!(world.pings, 11);
//! ```

#![warn(missing_docs)]

mod engine;
mod queue;
mod rng;
pub mod stats;
mod time;
pub mod tracelog;

pub use engine::{Engine, RunOutcome, World};
pub use queue::{EventQueue, HeapQueue, QueueDiscipline, QueueTelemetry, ScheduledEvent};
pub use rng::SimRng;
pub use time::SimTime;
pub use tracelog::{TraceEntry, TraceLog};
