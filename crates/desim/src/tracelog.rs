//! A bounded event trace for simulation debugging.
//!
//! Recording every event of a multi-million-event run is infeasible;
//! recording the *most recent* window usually suffices to diagnose a
//! mis-scheduled message or a runaway loop. [`TraceLog`] is a fixed-
//! capacity ring of timestamped entries with cheap filtering — models can
//! embed one and dump it on an assertion failure.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry<T> {
    /// Simulation time of the event.
    pub at: SimTime,
    /// Monotone sequence number across the log's lifetime.
    pub seq: u64,
    /// The recorded payload.
    pub data: T,
}

/// A fixed-capacity ring buffer of timestamped trace entries.
#[derive(Debug, Clone)]
pub struct TraceLog<T> {
    entries: VecDeque<TraceEntry<T>>,
    capacity: usize,
    recorded: u64,
}

impl<T> TraceLog<T> {
    /// A log keeping the most recent `capacity` entries (must be > 0).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace log needs capacity");
        TraceLog {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            recorded: 0,
        }
    }

    /// Records an entry, evicting the oldest when full.
    pub fn record(&mut self, at: SimTime, data: T) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(TraceEntry {
            at,
            seq: self.recorded,
            data,
        });
        self.recorded += 1;
    }

    /// Entries currently retained, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry<T>> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total entries ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Number of entries dropped off the front so far.
    pub fn evicted(&self) -> u64 {
        self.recorded - self.entries.len() as u64
    }

    /// Retained entries within `[from, to]` inclusive, oldest first.
    pub fn between(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &TraceEntry<T>> {
        self.entries
            .iter()
            .filter(move |e| e.at >= from && e.at <= to)
    }

    /// Retained entries matching a predicate, oldest first.
    pub fn matching<'a, F>(&'a self, pred: F) -> impl Iterator<Item = &'a TraceEntry<T>>
    where
        F: Fn(&T) -> bool + 'a,
    {
        self.entries.iter().filter(move |e| pred(&e.data))
    }

    /// Clears retained entries (lifetime counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl<T: fmt::Display> TraceLog<T> {
    /// Formats the retained window as one line per entry.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.evicted() > 0 {
            out.push_str(&format!("… {} earlier entries evicted …\n", self.evicted()));
        }
        for e in &self.entries {
            out.push_str(&format!("[{} #{}] {}\n", e.at, e.seq, e.data));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    fn filled(cap: usize, n: u64) -> TraceLog<String> {
        let mut log = TraceLog::new(cap);
        for i in 0..n {
            log.record(t(i * 10), format!("ev{i}"));
        }
        log
    }

    #[test]
    fn retains_most_recent_window() {
        let log = filled(3, 10);
        assert_eq!(log.len(), 3);
        assert_eq!(log.recorded(), 10);
        assert_eq!(log.evicted(), 7);
        let kept: Vec<&str> = log.entries().map(|e| e.data.as_str()).collect();
        assert_eq!(kept, vec!["ev7", "ev8", "ev9"]);
        assert_eq!(log.entries().next().unwrap().seq, 7);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let log = filled(10, 4);
        assert_eq!(log.len(), 4);
        assert_eq!(log.evicted(), 0);
    }

    #[test]
    fn time_window_filter() {
        let log = filled(100, 10);
        let mid: Vec<u64> = log.between(t(30), t(60)).map(|e| e.at.ticks()).collect();
        assert_eq!(mid, vec![30, 40, 50, 60]);
        assert_eq!(log.between(t(1000), t(2000)).count(), 0);
    }

    #[test]
    fn predicate_filter() {
        let log = filled(100, 10);
        let evens: Vec<&str> = log
            .matching(|d| d.trim_start_matches("ev").parse::<u64>().unwrap() % 2 == 0)
            .map(|e| e.data.as_str())
            .collect();
        assert_eq!(evens.len(), 5);
        assert_eq!(evens[0], "ev0");
    }

    #[test]
    fn dump_mentions_evictions() {
        let log = filled(2, 5);
        let d = log.dump();
        assert!(d.contains("3 earlier entries evicted"));
        assert!(d.contains("ev4"));
        let fresh = filled(10, 2);
        assert!(!fresh.dump().contains("evicted"));
    }

    #[test]
    fn clear_keeps_lifetime_counts() {
        let mut log = filled(5, 5);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.recorded(), 5);
        assert_eq!(log.evicted(), 5);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        TraceLog::<u32>::new(0);
    }
}
