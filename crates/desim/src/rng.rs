//! Seeded randomness and the distributions the simulator needs.
//!
//! Only `rand`'s RNG core is used; the distributions (exponential,
//! log-normal, Weibull, bounded Pareto, Zipf) are implemented here via
//! inverse-CDF / Box–Muller so the dependency footprint stays at the
//! offline-approved set.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded random number generator for simulations.
///
/// Every simulation run is a pure function of `(model, seed)`; `SimRng`
/// wraps [`StdRng`] so seeds are explicit and the distribution helpers used
/// across the workspace live in one place.
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimRng").field("seed", &self.seed).finish()
    }
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator; `stream` distinguishes
    /// subsystems (workload, topology, annealing, …) so adding draws to one
    /// subsystem does not perturb another.
    pub fn fork(&self, stream: u64) -> SimRng {
        // SplitMix64-style mix of (seed, stream) into a fresh seed.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn uniform01(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform draw in `[lo, hi)`. `lo` must be `< hi`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.uniform01()
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.inner.random_range(0..n)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    #[inline]
    pub fn int_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        self.inner.random_range(lo..=hi)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform01() < p
    }

    /// Exponential draw with the given rate (mean `1/rate`).
    ///
    /// Used for Poisson inter-arrival times.
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        // Inverse CDF; 1 - U avoids ln(0).
        -(1.0 - self.uniform01()).ln() / rate
    }

    /// Standard normal draw (Box–Muller, one value per call).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.uniform01(); // (0, 1]
        let u2 = self.uniform01();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Log-normal draw: `exp(N(mu, sigma))`.
    ///
    /// The Cirne–Berman supercomputer workload model fits job execution
    /// times with heavy-tailed distributions of this family.
    #[inline]
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        debug_assert!(sigma >= 0.0);
        self.normal(mu, sigma).exp()
    }

    /// Log-uniform draw in `[lo, hi)`: uniform in log-space, so each decade
    /// is equally likely. `0 < lo < hi` required.
    pub fn log_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo > 0.0 && lo < hi);
        (self.uniform(lo.ln(), hi.ln())).exp()
    }

    /// Weibull draw with shape `k` and scale `lambda` (inverse CDF).
    pub fn weibull(&mut self, shape: f64, scale: f64) -> f64 {
        debug_assert!(shape > 0.0 && scale > 0.0);
        let u = 1.0 - self.uniform01();
        scale * (-u.ln()).powf(1.0 / shape)
    }

    /// Bounded Pareto draw on `[lo, hi]` with tail index `alpha`.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        debug_assert!(alpha > 0.0 && lo > 0.0 && lo < hi);
        let u = self.uniform01();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Zipf draw over ranks `1..=n` with exponent `s`, by inversion over the
    /// precomputed normalizer (O(log n) per draw after O(n) table build is
    /// avoided; this uses rejection-free linear scan only for small `n`,
    /// otherwise approximate inversion).
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        debug_assert!(n > 0);
        // Exact linear inversion; n in this workspace is at most a few
        // thousand (cluster counts), so O(n) worst case is acceptable and
        // exactness keeps property tests simple.
        let h: f64 = (1..=n).map(|i| (i as f64).powf(-s)).sum();
        let mut u = self.uniform01() * h;
        for i in 1..=n {
            u -= (i as f64).powf(-s);
            if u <= 0.0 {
                return i;
            }
        }
        n
    }

    /// Picks a uniformly random element of `slice`.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Draws `k` distinct indices from `0..n` (floyd-style sampling when
    /// `k << n`, shuffle otherwise). `k` is clamped to `n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.sample_indices_into(n, k, &mut out);
        out
    }

    /// Allocation-free variant of [`SimRng::sample_indices`]: clears `out`
    /// and fills it with `k` distinct indices from `0..n`, reusing the
    /// buffer's capacity. The draw sequence is identical to
    /// `sample_indices`, so callers can switch freely without perturbing
    /// downstream randomness.
    pub fn sample_indices_into(&mut self, n: usize, k: usize, out: &mut Vec<usize>) {
        out.clear();
        let k = k.min(n);
        if k == 0 {
            return;
        }
        if k * 3 >= n {
            out.extend(0..n);
            self.shuffle(out);
            out.truncate(k);
        } else {
            // Rejection sampling with a small set; fine for k << n.
            while out.len() < k {
                let c = self.index(n);
                if !out.contains(&c) {
                    out.push(c);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(mut f: impl FnMut(&mut SimRng) -> f64, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| f(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        let xs: Vec<f64> = (0..50).map(|_| a.uniform01()).collect();
        let ys: Vec<f64> = (0..50).map(|_| b.uniform01()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let xs: Vec<u64> = (0..10).map(|_| a.int_range(0, u64::MAX - 1)).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.int_range(0, u64::MAX - 1)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn fork_streams_are_independent_and_stable() {
        let root = SimRng::new(7);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        let mut c1_again = root.fork(0);
        assert_eq!(c1.uniform01(), c1_again.uniform01());
        assert_ne!(c1.uniform01(), c2.uniform01());
    }

    #[test]
    fn exponential_mean_close() {
        let m = mean_of(|r| r.exponential(0.5), 40_000, 9);
        assert!((m - 2.0).abs() < 0.1, "mean {m} should be near 2");
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
        let m = mean_of(|r| r.uniform(2.0, 5.0), 40_000, 4);
        assert!((m - 3.5).abs() < 0.05);
    }

    #[test]
    fn normal_moments() {
        let m = mean_of(|r| r.normal(10.0, 3.0), 40_000, 11);
        assert!((m - 10.0).abs() < 0.1);
        let mut rng = SimRng::new(12);
        let var = {
            let xs: Vec<f64> = (0..40_000).map(|_| rng.normal(0.0, 3.0)).collect();
            let mu = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / xs.len() as f64
        };
        assert!((var - 9.0).abs() < 0.5, "variance {var} should be near 9");
    }

    #[test]
    fn log_normal_positive_and_median() {
        let mut rng = SimRng::new(5);
        let mut xs: Vec<f64> = (0..20_001).map(|_| rng.log_normal(3.0, 1.0)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        // Median of lognormal is exp(mu).
        assert!((median - 3f64.exp()).abs() / 3f64.exp() < 0.1);
    }

    #[test]
    fn log_uniform_within_bounds() {
        let mut rng = SimRng::new(6);
        for _ in 0..1000 {
            let x = rng.log_uniform(10.0, 1000.0);
            assert!((10.0..1000.0).contains(&x));
        }
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        // Weibull(k=1, λ) has mean λ.
        let m = mean_of(|r| r.weibull(1.0, 4.0), 40_000, 8);
        assert!((m - 4.0).abs() < 0.2);
    }

    #[test]
    fn bounded_pareto_within_bounds() {
        let mut rng = SimRng::new(10);
        for _ in 0..2000 {
            let x = rng.bounded_pareto(1.5, 1.0, 100.0);
            assert!((1.0..=100.0).contains(&x), "{x} out of bounds");
        }
    }

    #[test]
    fn zipf_rank_one_most_common() {
        let mut rng = SimRng::new(13);
        let mut counts = [0usize; 6];
        for _ in 0..20_000 {
            let r = rng.zipf(5, 1.0);
            assert!((1..=5).contains(&r));
            counts[r] += 1;
        }
        assert!(counts[1] > counts[2] && counts[2] > counts[3]);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(14);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SimRng::new(15);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let items = [1, 2, 3];
        assert!(items.contains(rng.choose(&items).unwrap()));

        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..50).collect::<Vec<_>>(),
            "shuffle is a permutation"
        );
    }

    #[test]
    fn sample_indices_distinct_and_clamped() {
        let mut rng = SimRng::new(16);
        let s = rng.sample_indices(100, 10);
        assert_eq!(s.len(), 10);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 10, "indices must be distinct");
        assert!(s.iter().all(|&i| i < 100));

        assert_eq!(rng.sample_indices(3, 10).len(), 3, "k clamps to n");
        assert!(rng.sample_indices(5, 0).is_empty());
    }

    #[test]
    fn sample_indices_into_matches_allocating_variant() {
        // Cover both branches: shuffle (k*3 >= n) and rejection (k << n),
        // with follow-up draws proving the generator state also agrees.
        for (n, k) in [(10, 4), (100, 5), (7, 7), (50, 0)] {
            let mut a = SimRng::new(99);
            let mut b = SimRng::new(99);
            let mut buf = vec![42; 3]; // stale contents must be cleared
            let owned = a.sample_indices(n, k);
            b.sample_indices_into(n, k, &mut buf);
            assert_eq!(owned, buf, "n={n} k={k}");
            assert_eq!(a.uniform01(), b.uniform01(), "rng state diverged");
        }
    }
}
