//! HIER: a two-level scheduler hierarchy (extension).
//!
//! The paper's future-work item (a) asks for "strategies to apply this
//! framework to complex RMS architectures". This model is the canonical
//! next step beyond the seven flat designs: cluster 0's scheduler acts as
//! a **super-scheduler** that aggregates periodic load reports from every
//! child scheduler and answers placement requests, so a REMOTE job costs a
//! two-message consultation regardless of Grid size — trading LOWEST's
//! `O(L_p)` per-job polling for a potential central hot-spot that is far
//! lighter than CENTRAL's (it handles per-*job* control messages, not
//! per-resource status updates).

use gridscale_desim::SimTime;
use gridscale_gridsim::{Comms, Ctx, Dispatch, Policy, PolicyMsg, Telemetry, Timers};
use gridscale_workload::Job;
use std::collections::BTreeMap;

/// Timer tag for the periodic load report.
const TAG_REPORT: u64 = 3;

/// The super-scheduler's cluster index.
const SUPER: usize = 0;

/// Two-level hierarchical RMS (see module docs).
#[derive(Debug, Default)]
pub struct Hierarchical {
    /// Super-scheduler's view: last reported mean load per cluster.
    loads: Vec<f64>,
    /// Jobs held at children awaiting a placement decision.
    pending: BTreeMap<u64, Job>,
}

impl Hierarchical {
    fn ensure(&mut self, clusters: usize) {
        if self.loads.len() < clusters {
            self.loads.resize(clusters, 0.0);
        }
    }

    /// Super-side placement rule: least reported load, ties to the lowest
    /// cluster index.
    fn best_cluster(&self) -> usize {
        self.loads
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
            .unwrap_or(SUPER)
    }
}

impl Policy for Hierarchical {
    fn name(&self) -> &'static str {
        "HIER"
    }

    fn init_cluster(&mut self, ctx: &mut Ctx, cluster: usize) {
        self.ensure(ctx.clusters());
        if cluster == SUPER {
            return;
        }
        let period = ctx.enablers().volunteer_interval;
        let phase = ctx.rng().int_range(1, period.max(1));
        ctx.set_timer(cluster, SimTime::from_ticks(phase), TAG_REPORT);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, cluster: usize, tag: u64) {
        if tag != TAG_REPORT || cluster == SUPER {
            return;
        }
        ctx.send_policy(
            cluster,
            SUPER,
            PolicyMsg::LoadReport {
                from: cluster as u32,
                avg_load: ctx.avg_load(cluster),
            },
        );
        let period = ctx.enablers().volunteer_interval;
        ctx.set_timer(cluster, SimTime::from_ticks(period), TAG_REPORT);
    }

    fn on_remote_job(&mut self, ctx: &mut Ctx, cluster: usize, job: Job) {
        self.ensure(ctx.clusters());
        if cluster == SUPER {
            // The super-scheduler places directly from its table.
            self.loads[SUPER] = ctx.avg_load(SUPER);
            let target = self.best_cluster();
            self.loads[target] += 1.0 / ctx.cluster_size(target).max(1) as f64;
            if target == SUPER {
                ctx.dispatch_least_loaded(SUPER, job);
            } else {
                ctx.transfer(SUPER, target, job);
            }
            return;
        }
        let token = ctx.next_token();
        self.pending.insert(token, job);
        ctx.send_policy(
            cluster,
            SUPER,
            PolicyMsg::PlaceRequest {
                from: cluster as u32,
                token,
                job_exec: job.exec_time,
            },
        );
    }

    fn on_policy_msg(&mut self, ctx: &mut Ctx, cluster: usize, msg: PolicyMsg) {
        self.ensure(ctx.clusters());
        match msg {
            PolicyMsg::LoadReport { from, avg_load } => {
                debug_assert_eq!(cluster, SUPER, "reports go to the super-scheduler");
                self.loads[from as usize] = avg_load;
            }
            PolicyMsg::PlaceRequest { from, token, .. } => {
                debug_assert_eq!(cluster, SUPER);
                // The super's own cluster state is first-hand.
                self.loads[SUPER] = ctx.avg_load(SUPER);
                let target = self.best_cluster();
                // Optimistic bump so bursts spread instead of herding at
                // the coldest cluster between reports.
                self.loads[target] += 1.0 / ctx.cluster_size(target).max(1) as f64;
                ctx.send_policy(
                    SUPER,
                    from as usize,
                    PolicyMsg::PlaceReply {
                        from: SUPER as u32,
                        token,
                        target: target as u32,
                    },
                );
            }
            PolicyMsg::PlaceReply { token, target, .. } => {
                if let Some(job) = self.pending.remove(&token) {
                    let target = target as usize;
                    if target == cluster {
                        ctx.dispatch_least_loaded(cluster, job);
                    } else {
                        ctx.transfer(cluster, target, job);
                    }
                }
            }
            _ => {}
        }
    }
}
