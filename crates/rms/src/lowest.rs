//! LOWEST: random polling of `L_p` peers, transfer to the least loaded.

use crate::polling::{PlacementRule, PollPlacer};
use gridscale_gridsim::{Ctx, Policy, PolicyMsg};
use gridscale_workload::Job;

/// The paper's LOWEST model (after Zhou's trace-driven load-balancing
/// study):
///
/// > "The RMS consists of multiple schedulers with each receiving periodic
/// > updates from non-overlapping clusters of resources. On a LOCAL job
/// > arrival, a scheduler will schedule it on the least loaded resource in
/// > its cluster. On a REMOTE job arrival, a scheduler will poll a set of
/// > randomly selected `L_p` remote schedulers. The job is transferred for
/// > execution to a remote scheduler with the least loaded resources."
///
/// LOCAL arrivals use the default least-loaded-local rule; REMOTE arrivals
/// go through the shared [`PollPlacer`] with the
/// [`PlacementRule::LeastLoaded`] decision.
#[derive(Debug)]
pub struct Lowest {
    placer: PollPlacer,
}

impl Default for Lowest {
    fn default() -> Self {
        Lowest {
            placer: PollPlacer::new(PlacementRule::LeastLoaded),
        }
    }
}

impl Policy for Lowest {
    fn name(&self) -> &'static str {
        "LOWEST"
    }

    fn on_remote_job(&mut self, ctx: &mut Ctx, cluster: usize, job: Job) {
        self.placer.start(ctx, cluster, job);
    }

    fn on_policy_msg(&mut self, ctx: &mut Ctx, cluster: usize, msg: PolicyMsg) {
        match msg {
            PolicyMsg::Poll {
                from,
                token,
                job_exec,
            } => PollPlacer::answer_poll(ctx, cluster, from, token, job_exec),
            PolicyMsg::PollReply {
                from,
                token,
                avg_load,
                awt,
                ert,
                rus,
            } => {
                self.placer
                    .on_reply(ctx, token, from, avg_load, awt, ert, rus);
            }
            // LOWEST ignores reservation/auction/volunteer traffic (none is
            // ever sent to it, but stay robust).
            _ => {}
        }
    }
}
