//! S-I: sender-initiated superscheduling through Grid middleware.

use crate::polling::{PlacementRule, PollPlacer};
use gridscale_gridsim::{Ctx, Policy, PolicyMsg};
use gridscale_workload::Job;

/// The paper's S-I model (after Shan, Oliker & Biswas's job
/// superscheduler):
///
/// > "PUSH type RMS. … a set of autonomous local schedulers communicate
/// > with each other through a Grid middleware. … On a REMOTE job arrival,
/// > a scheduler polls `L_p` remote schedulers. The remote schedulers
/// > respond with approximate waiting time (AWT), expected run time (ERT)
/// > for the particular job and resource utilization status (RUS) for the
/// > resources in their cluster. Based on the collected information, the
/// > polling scheduler calculates the potential turnaround cost (TC) at
/// > local cluster and each remote cluster. To compute the optimal TC,
/// > first the minimum approximate turnaround time ATT is calculated as
/// > the sum of the AWT and ERT. If the minimum ATT is within a small
/// > tolerance ψ for multiple schedulers, the scheduler with smallest RUS
/// > is chosen to accept the job."
///
/// Identical state machine to LOWEST but with the turnaround-cost decision
/// rule and all inter-scheduler traffic passing the middleware queue
/// ([`Policy::uses_middleware`]).
#[derive(Debug)]
pub struct SenderInit {
    placer: PollPlacer,
}

impl Default for SenderInit {
    fn default() -> Self {
        SenderInit {
            placer: PollPlacer::new(PlacementRule::TurnaroundCost),
        }
    }
}

impl Policy for SenderInit {
    fn name(&self) -> &'static str {
        "S-I"
    }

    fn uses_middleware(&self) -> bool {
        true
    }

    fn on_remote_job(&mut self, ctx: &mut Ctx, cluster: usize, job: Job) {
        self.placer.start(ctx, cluster, job);
    }

    fn on_policy_msg(&mut self, ctx: &mut Ctx, cluster: usize, msg: PolicyMsg) {
        match msg {
            PolicyMsg::Poll {
                from,
                token,
                job_exec,
            } => PollPlacer::answer_poll(ctx, cluster, from, token, job_exec),
            PolicyMsg::PollReply {
                from,
                token,
                avg_load,
                awt,
                ert,
                rus,
            } => {
                self.placer
                    .on_reply(ctx, token, from, avg_load, awt, ert, rus);
            }
            _ => {}
        }
    }
}
