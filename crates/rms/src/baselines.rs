//! Classic load-sharing baselines (extension).
//!
//! Zhou's trace-driven study — the source of LOWEST and RESERVE — measures
//! its policies against the textbook baselines of Eager, Lazowska &
//! Zahorjan: blind **RANDOM** placement and **THRESHOLD** probing. They
//! are cheap yardsticks for the scalability framework: RANDOM has zero
//! status traffic and no placement intelligence; THRESHOLD pays one probe
//! at a time only when the local cluster looks loaded.

use gridscale_gridsim::{Comms, Ctx, Dispatch, Policy, PolicyMsg, Telemetry};
use gridscale_workload::Job;
use std::collections::BTreeMap;

/// RANDOM: every REMOTE job goes to a uniformly random cluster (possibly
/// its own), with no state consulted at all. The floor for placement
/// quality and the floor for RMS overhead.
#[derive(Debug, Default)]
pub struct RandomPlacement;

impl Policy for RandomPlacement {
    fn name(&self) -> &'static str {
        "RANDOM"
    }

    fn on_remote_job(&mut self, ctx: &mut Ctx, cluster: usize, job: Job) {
        let n = ctx.clusters();
        let target = ctx.rng().index(n);
        if target == cluster {
            ctx.dispatch_least_loaded(cluster, job);
        } else {
            ctx.transfer(cluster, target, job);
        }
    }
}

/// THRESHOLD (Eager et al.): if the local cluster's mean load is at or
/// below `T_l`, place locally; otherwise probe one random peer and
/// transfer only if the peer admits being below threshold, falling back
/// to local placement after a failed probe.
#[derive(Debug, Default)]
pub struct Threshold {
    /// Held jobs awaiting their single probe answer.
    pending: BTreeMap<u64, Job>,
    /// Reused peer-draw buffer (`random_remotes_into` scratch).
    scratch: Vec<usize>,
}

impl Policy for Threshold {
    fn name(&self) -> &'static str {
        "THRESHOLD"
    }

    fn on_remote_job(&mut self, ctx: &mut Ctx, cluster: usize, job: Job) {
        if ctx.avg_load(cluster) <= ctx.thresholds().t_l {
            ctx.dispatch_least_loaded(cluster, job);
            return;
        }
        ctx.random_remotes_into(cluster, 1, &mut self.scratch);
        let Some(&peer) = self.scratch.first() else {
            ctx.dispatch_least_loaded(cluster, job);
            return;
        };
        let token = ctx.next_token();
        self.pending.insert(token, job);
        // Reuse the reservation-probe handshake: it carries exactly the
        // "are you below threshold" question THRESHOLD asks.
        ctx.send_policy(
            cluster,
            peer,
            PolicyMsg::ReserveProbe {
                from: cluster as u32,
                token,
            },
        );
    }

    fn on_policy_msg(&mut self, ctx: &mut Ctx, cluster: usize, msg: PolicyMsg) {
        match msg {
            PolicyMsg::ReserveProbe { from, token } => {
                let accept = ctx.avg_load(cluster) <= ctx.thresholds().t_l;
                ctx.send_policy(
                    cluster,
                    from as usize,
                    PolicyMsg::ReserveProbeReply {
                        from: cluster as u32,
                        token,
                        avg_load: ctx.avg_load(cluster),
                        accept,
                    },
                );
            }
            PolicyMsg::ReserveProbeReply {
                from,
                token,
                accept,
                ..
            } => {
                if let Some(job) = self.pending.remove(&token) {
                    if accept {
                        ctx.transfer(cluster, from as usize, job);
                    } else {
                        ctx.dispatch_least_loaded(cluster, job);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridscale_desim::SimTime;
    use gridscale_gridsim::{run_simulation, GridConfig};
    use gridscale_workload::WorkloadConfig;

    fn cfg() -> GridConfig {
        GridConfig {
            nodes: 60,
            schedulers: 5,
            workload: WorkloadConfig {
                arrival_rate: 0.03,
                duration: SimTime::from_ticks(25_000),
                ..WorkloadConfig::default()
            },
            drain: SimTime::from_ticks(30_000),
            seed: 0xFACE,
            ..GridConfig::default()
        }
    }

    #[test]
    fn random_transfers_most_remote_jobs_with_zero_probes() {
        let r = run_simulation(&cfg(), &mut RandomPlacement);
        assert!(r.completed as f64 > 0.9 * r.jobs_total as f64);
        assert_eq!(r.policy_msgs, 0, "RANDOM never consults anyone");
        // ~4/5 of REMOTE jobs land on another cluster.
        assert!(r.transfers > 0);
    }

    #[test]
    fn threshold_probes_at_most_once_per_remote_job() {
        let mut cfg = cfg();
        cfg.workload.arrival_rate = 0.05; // enough load to trip T_l
        let mut p = Threshold::default();
        let r = run_simulation(&cfg, &mut p);
        assert!(r.completed as f64 > 0.9 * r.jobs_total as f64);
        assert!(r.policy_msgs > 0, "loaded clusters must probe");
        // Each probe is a request/reply pair; at most one pair per job.
        assert!(
            r.policy_msgs <= 2 * r.jobs_total,
            "{} messages for {} jobs",
            r.policy_msgs,
            r.jobs_total
        );
    }

    #[test]
    fn informed_lowest_beats_random_on_success() {
        let mut cfg = cfg();
        // ~80% utilization: enough contention for placement quality to
        // matter, but below saturation (where nothing helps).
        cfg.workload.arrival_rate = 0.035;
        let rand = run_simulation(&cfg, &mut RandomPlacement);
        let mut lw = crate::Lowest::default();
        let low = run_simulation(&cfg, &mut lw);
        assert!(
            low.mean_response < rand.mean_response,
            "informed polling ({:.0}) must respond faster than blind random ({:.0})",
            low.mean_response,
            rand.mean_response
        );
        assert!(
            low.success_rate() + 0.02 >= rand.success_rate(),
            "and not lose on success: {:.3} vs {:.3}",
            low.success_rate(),
            rand.success_rate()
        );
    }

    #[test]
    fn baselines_are_deterministic() {
        let a = run_simulation(&cfg(), &mut RandomPlacement);
        let b = run_simulation(&cfg(), &mut RandomPlacement);
        assert_eq!(a.f_work, b.f_work);
        let c = run_simulation(&cfg(), &mut Threshold::default());
        let d = run_simulation(&cfg(), &mut Threshold::default());
        assert_eq!(c.policy_msgs, d.policy_msgs);
    }
}
