//! # gridscale-rms
//!
//! The seven resource-management-system models the paper evaluates (§3.3),
//! re-implemented as [`gridscale_gridsim::Policy`] plug-ins:
//!
//! | Model | Style | Source cited by the paper |
//! |---|---|---|
//! | [`Central`]  | centralized                 | — |
//! | [`Lowest`]   | distributed, PULL (polling) | Zhou \[17\] |
//! | [`Reserve`]  | distributed, reservations   | Zhou \[17\] |
//! | [`Auction`]  | distributed, PUSH+PULL      | Leland & Ott \[24\] |
//! | [`SenderInit`] (S-I)   | sender-initiated, middleware   | Shan et al. \[6\] |
//! | [`ReceiverInit`] (R-I) | receiver-initiated, middleware | Shan et al. \[6\] |
//! | [`Symmetric`] (Sy-I)   | symmetric hybrid, middleware   | Shan et al. \[6\] |
//!
//! As in the paper, all models share the LOCAL-job rule (least-loaded
//! resource of the submission cluster) and differ in how REMOTE jobs and
//! load imbalance are handled. The paper notes its implementations "do not
//! completely match the native models used in the above papers" — the same
//! holds here; they are re-expressions on the shared Grid model.
//!
//! [`RmsKind`] enumerates the models for experiment drivers;
//! [`RmsKind::build`] instantiates them as `Box<dyn Policy>` trait
//! objects, and [`RmsKind::build_static`] as the statically dispatched
//! [`RmsPolicy`] enum used on measurement hot paths.

#![warn(missing_docs)]

mod auction;
pub mod baselines;
mod central;
mod dispatch;
mod hierarchical;
mod lowest;
pub mod polling;
mod reserve;
mod ri;
mod si;
mod syi;

pub use auction::Auction;
pub use baselines::{RandomPlacement, Threshold};
pub use central::Central;
pub use dispatch::RmsPolicy;
pub use hierarchical::Hierarchical;
pub use lowest::Lowest;
pub use reserve::Reserve;
pub use ri::ReceiverInit;
pub use si::SenderInit;
pub use syi::Symmetric;

use gridscale_gridsim::Policy;
use serde::{Deserialize, Serialize};

/// The seven RMS models, as experiment-driver-friendly values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RmsKind {
    /// Centralized scheduler for the whole pool.
    Central,
    /// Per-cluster schedulers, random polling of `L_p` peers (Zhou).
    Lowest,
    /// Reservation registration by under-loaded schedulers (Zhou).
    Reserve,
    /// Auctions triggered by idle resources (Leland & Ott).
    Auction,
    /// Sender-initiated superscheduling via middleware (Shan et al.).
    SenderInit,
    /// Receiver-initiated volunteering via middleware (Shan et al.).
    ReceiverInit,
    /// Symmetric combination of S-I and R-I (Shan et al.).
    Symmetric,
    /// Extension (paper future-work (a)): two-level scheduler hierarchy
    /// with a super-scheduler aggregating child load reports. Not part of
    /// the paper's seven evaluated models ([`RmsKind::ALL`]).
    Hierarchical,
}

impl RmsKind {
    /// All seven models in the paper's presentation order.
    pub const ALL: [RmsKind; 7] = [
        RmsKind::Central,
        RmsKind::Lowest,
        RmsKind::Reserve,
        RmsKind::Auction,
        RmsKind::SenderInit,
        RmsKind::ReceiverInit,
        RmsKind::Symmetric,
    ];

    /// The paper's seven models plus the hierarchical extension.
    pub const EXTENDED: [RmsKind; 8] = [
        RmsKind::Central,
        RmsKind::Lowest,
        RmsKind::Reserve,
        RmsKind::Auction,
        RmsKind::SenderInit,
        RmsKind::ReceiverInit,
        RmsKind::Symmetric,
        RmsKind::Hierarchical,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            RmsKind::Central => "CENTRAL",
            RmsKind::Lowest => "LOWEST",
            RmsKind::Reserve => "RESERVE",
            RmsKind::Auction => "AUCTION",
            RmsKind::SenderInit => "S-I",
            RmsKind::ReceiverInit => "R-I",
            RmsKind::Symmetric => "Sy-I",
            RmsKind::Hierarchical => "HIER",
        }
    }

    /// Parses a paper display name (case-insensitive).
    pub fn from_name(s: &str) -> Option<RmsKind> {
        RmsKind::EXTENDED
            .iter()
            .copied()
            .find(|k| k.name().eq_ignore_ascii_case(s))
    }

    /// True for the models whose inter-scheduler traffic goes through the
    /// Grid middleware (the Shan et al. family).
    pub fn uses_middleware(self) -> bool {
        matches!(
            self,
            RmsKind::SenderInit | RmsKind::ReceiverInit | RmsKind::Symmetric
        )
    }

    /// True for a centralized manager (one scheduler for the whole pool).
    pub fn is_centralized(self) -> bool {
        self == RmsKind::Central
    }

    /// Instantiates a fresh policy object.
    pub fn build(self) -> Box<dyn Policy> {
        match self {
            RmsKind::Central => Box::new(Central),
            RmsKind::Lowest => Box::new(Lowest::default()),
            RmsKind::Reserve => Box::new(Reserve::default()),
            RmsKind::Auction => Box::new(Auction::default()),
            RmsKind::SenderInit => Box::new(SenderInit::default()),
            RmsKind::ReceiverInit => Box::new(ReceiverInit::default()),
            RmsKind::Symmetric => Box::new(Symmetric::default()),
            RmsKind::Hierarchical => Box::new(Hierarchical::default()),
        }
    }
}

impl std::fmt::Display for RmsKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for k in RmsKind::EXTENDED {
            assert_eq!(RmsKind::from_name(k.name()), Some(k));
            assert_eq!(k.build().name(), k.name());
        }
        assert_eq!(RmsKind::from_name("sy-i"), Some(RmsKind::Symmetric));
        assert_eq!(RmsKind::from_name("nope"), None);
    }

    #[test]
    fn middleware_family() {
        assert!(RmsKind::SenderInit.uses_middleware());
        assert!(RmsKind::ReceiverInit.uses_middleware());
        assert!(RmsKind::Symmetric.uses_middleware());
        assert!(!RmsKind::Lowest.uses_middleware());
        assert!(!RmsKind::Central.uses_middleware());
        for k in RmsKind::ALL {
            assert_eq!(
                k.build().uses_middleware(),
                k.uses_middleware(),
                "{k} policy/middleware flag mismatch"
            );
        }
    }

    #[test]
    fn only_central_is_centralized() {
        assert!(RmsKind::Central.is_centralized());
        assert_eq!(
            RmsKind::ALL.iter().filter(|k| k.is_centralized()).count(),
            1
        );
    }

    #[test]
    fn paper_set_is_exactly_seven() {
        assert_eq!(RmsKind::ALL.len(), 7);
        assert!(!RmsKind::ALL.contains(&RmsKind::Hierarchical));
        assert_eq!(RmsKind::EXTENDED.len(), 8);
        assert_eq!(RmsKind::from_name("HIER"), Some(RmsKind::Hierarchical));
    }
}
