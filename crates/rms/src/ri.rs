//! R-I: receiver-initiated volunteering through Grid middleware.

use gridscale_desim::SimTime;
use gridscale_gridsim::{Comms, Ctx, Dispatch, Policy, PolicyMsg, Telemetry, Timers};
use gridscale_workload::Job;
use std::collections::BTreeMap;

/// Timer tag for the periodic RUS self-check.
const TAG_RUS_CHECK: u64 = 2;

/// The paper's R-I model (after Shan et al.):
///
/// > "Periodically, a scheduler `S_x` checks RUS for the resources in its
/// > cluster. If the RUS for a resource in its cluster is below threshold
/// > `δ`, `S_x` decides to execute remote jobs and informs at most `L_p`
/// > remote schedulers. A remote scheduler `S_y`, receiving `S_x`'s
/// > intention will send `S_x` the resource demands for the first job in
/// > its wait queue. When `S_x` replies back with its ATT and RUS, `S_y`
/// > uses this information to compute TC at local and remote sites and
/// > schedule the job accordingly."
///
/// The periodic check runs on the *volunteer-interval* enabler. The loaded
/// side (`S_y`) approximates its head-of-queue job's demand with the
/// workload's mean (schedulers do not track per-resource queue contents),
/// and when the volunteer's turnaround beats the local estimate by more
/// than the tolerance `ψ`, it recalls one queued job from its most loaded
/// resource and migrates it. REMOTE arrivals place locally — migration is
/// purely receiver-driven.
#[derive(Debug, Default)]
pub struct ReceiverInit {
    /// Pending demand handshakes at the loaded side: token → volunteer.
    pending: BTreeMap<u64, usize>,
    /// Reused peer-draw buffer (`random_remotes_into` scratch).
    scratch: Vec<usize>,
}

impl Policy for ReceiverInit {
    fn name(&self) -> &'static str {
        "R-I"
    }

    fn uses_middleware(&self) -> bool {
        true
    }

    fn init_cluster(&mut self, ctx: &mut Ctx, cluster: usize) {
        let period = ctx.enablers().volunteer_interval;
        let phase = ctx.rng().int_range(1, period.max(1));
        ctx.set_timer(cluster, SimTime::from_ticks(phase), TAG_RUS_CHECK);
    }

    fn on_remote_job(&mut self, ctx: &mut Ctx, cluster: usize, job: Job) {
        // Receiver-initiated: the arrival itself places locally.
        ctx.dispatch_least_loaded(cluster, job);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, cluster: usize, tag: u64) {
        if tag != TAG_RUS_CHECK {
            return;
        }
        let delta = ctx.thresholds().delta;
        // O(1) via the view's tournament tree (same truth value as
        // scanning idle_positions).
        let has_idle = ctx.view(cluster).has_idle(delta);
        if has_idle {
            let lp = ctx.enablers().neighborhood;
            let rus = ctx.rus(cluster);
            ctx.random_remotes_into(cluster, lp, &mut self.scratch);
            for &p in &self.scratch {
                ctx.send_policy(
                    cluster,
                    p,
                    PolicyMsg::Volunteer {
                        from: cluster as u32,
                        rus,
                    },
                );
            }
        }
        let period = ctx.enablers().volunteer_interval;
        ctx.set_timer(cluster, SimTime::from_ticks(period), TAG_RUS_CHECK);
    }

    fn on_policy_msg(&mut self, ctx: &mut Ctx, cluster: usize, msg: PolicyMsg) {
        match msg {
            PolicyMsg::Volunteer { from, .. }
                // We are S_y. Only loaded clusters respond to intentions.
                if ctx.avg_load(cluster) > ctx.thresholds().t_l => {
                    let token = ctx.next_token();
                    self.pending.insert(token, from as usize);
                    let demand = SimTime::from_f64(ctx.mean_demand());
                    ctx.send_policy(
                        cluster,
                        from as usize,
                        PolicyMsg::DemandRequest {
                            from: cluster as u32,
                            token,
                            job_exec: demand,
                        },
                    );
                }
            PolicyMsg::DemandRequest {
                from,
                token,
                job_exec,
            } => {
                // We are S_x (the volunteer): answer with our ATT and RUS.
                let att = ctx.awt(cluster) + ctx.ert(job_exec);
                let rus = ctx.rus(cluster);
                ctx.send_policy(
                    cluster,
                    from as usize,
                    PolicyMsg::DemandReply {
                        from: cluster as u32,
                        token,
                        att,
                        rus,
                    },
                );
            }
            PolicyMsg::DemandReply { from, token, att, .. } => {
                // We are S_y again: compare turnaround costs and migrate
                // one queued job if the volunteer clearly wins.
                let Some(volunteer) = self.pending.remove(&token) else {
                    return;
                };
                debug_assert_eq!(volunteer, from as usize);
                let local_att = ctx.awt(cluster) + ctx.mean_demand() / ctx.service_rate();
                if att + ctx.thresholds().psi < local_att {
                    let t_l = ctx.thresholds().t_l;
                    if let Some(pos) = ctx.view(cluster).most_loaded() {
                        if ctx.view(cluster).get(pos).load > t_l {
                            ctx.recall(cluster, pos, volunteer);
                        }
                    }
                }
            }
            _ => {}
        }
    }
}
