//! Shared poll-and-place machinery.
//!
//! LOWEST and S-I both hold a REMOTE job, poll `L_p` random remote
//! schedulers, and decide from the replies; they differ only in the
//! decision rule. Sy-I reuses the S-I rule as its fallback path. This
//! module implements the common hold/poll/collect state machine.

use gridscale_gridsim::{Comms, Ctx, Dispatch, PolicyMsg, Telemetry};
use gridscale_workload::Job;
use std::collections::BTreeMap;

/// How a [`PollPlacer`] chooses between the polled clusters and home.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementRule {
    /// LOWEST (Zhou): transfer to the polled cluster with the smallest
    /// mean load, if it beats the local mean load.
    LeastLoaded,
    /// S-I (Shan et al.): minimize approximate turnaround time
    /// `ATT = AWT + ERT`; when several candidates are within tolerance
    /// `ψ`, pick the one with the smallest RUS.
    TurnaroundCost,
}

#[derive(Debug)]
struct Pending {
    job: Job,
    home: usize,
    expected: usize,
    replies: Vec<Reply>,
}

#[derive(Debug, Clone, Copy)]
struct Reply {
    cluster: usize,
    avg_load: f64,
    att: f64,
    rus: f64,
}

/// The hold/poll/collect state machine shared by the polling policies.
#[derive(Debug)]
pub struct PollPlacer {
    rule: PlacementRule,
    pending: BTreeMap<u64, Pending>,
    /// Reused peer-draw buffer (`random_remotes_into` scratch).
    scratch: Vec<usize>,
}

impl PollPlacer {
    /// Creates a placer with the given decision rule.
    pub fn new(rule: PlacementRule) -> Self {
        PollPlacer {
            rule,
            pending: BTreeMap::new(),
            scratch: Vec::new(),
        }
    }

    /// Number of jobs currently held awaiting replies.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Holds `job` and polls `L_p` random remote schedulers. Falls back to
    /// a local least-loaded dispatch when the Grid has no peers.
    pub fn start(&mut self, ctx: &mut Ctx, home: usize, job: Job) {
        let lp = ctx.enablers().neighborhood;
        ctx.random_remotes_into(home, lp, &mut self.scratch);
        if self.scratch.is_empty() {
            ctx.dispatch_least_loaded(home, job);
            return;
        }
        let token = ctx.next_token();
        self.pending.insert(
            token,
            Pending {
                job,
                home,
                expected: self.scratch.len(),
                replies: Vec::with_capacity(self.scratch.len()),
            },
        );
        for &p in &self.scratch {
            ctx.send_policy(
                home,
                p,
                PolicyMsg::Poll {
                    from: home as u32,
                    token,
                    job_exec: job.exec_time,
                },
            );
        }
    }

    /// Answers an incoming poll with this cluster's status.
    pub fn answer_poll(
        ctx: &mut Ctx,
        cluster: usize,
        from: u32,
        token: u64,
        job_exec: gridscale_desim::SimTime,
    ) {
        let reply = PolicyMsg::PollReply {
            from: cluster as u32,
            token,
            avg_load: ctx.avg_load(cluster),
            awt: ctx.awt(cluster),
            ert: ctx.ert(job_exec),
            rus: ctx.rus(cluster),
        };
        ctx.send_policy(cluster, from as usize, reply);
    }

    /// Ingests a poll reply; when the last expected reply arrives, decides
    /// and places the held job. Returns `true` if the token belonged to
    /// this placer.
    #[allow(clippy::too_many_arguments)] // mirrors the PollReply fields
    pub fn on_reply(
        &mut self,
        ctx: &mut Ctx,
        token: u64,
        from: u32,
        avg_load: f64,
        awt: f64,
        ert: f64,
        rus: f64,
    ) -> bool {
        let Some(p) = self.pending.get_mut(&token) else {
            return false;
        };
        p.replies.push(Reply {
            cluster: from as usize,
            avg_load,
            att: awt + ert,
            rus,
        });
        if p.replies.len() < p.expected {
            return true;
        }
        let Some(p) = self.pending.remove(&token) else {
            return true;
        };
        self.decide(ctx, p);
        true
    }

    fn decide(&self, ctx: &mut Ctx, p: Pending) {
        let home = p.home;
        match self.rule {
            PlacementRule::LeastLoaded => {
                let local = ctx.avg_load(home);
                let best = p
                    .replies
                    .iter()
                    .min_by(|a, b| a.avg_load.total_cmp(&b.avg_load));
                match best {
                    Some(b) if b.avg_load < local => ctx.transfer(home, b.cluster, p.job),
                    _ => ctx.dispatch_least_loaded(home, p.job),
                }
            }
            PlacementRule::TurnaroundCost => {
                let psi = ctx.thresholds().psi;
                // Local candidate: AWT here + ERT of this very job.
                let local = Reply {
                    cluster: home,
                    avg_load: ctx.avg_load(home),
                    att: ctx.awt(home) + ctx.ert(p.job.exec_time),
                    rus: ctx.rus(home),
                };
                let mut cands: Vec<Reply> = Vec::with_capacity(p.replies.len() + 1);
                cands.push(local);
                cands.extend(p.replies.iter().copied());
                let min_att = cands.iter().map(|r| r.att).fold(f64::INFINITY, f64::min);
                // All candidates within ψ of the optimum; smallest RUS wins
                // (ties → the earliest listed, i.e. prefer local).
                // The ψ band always retains the min_att candidate, so the
                // filter is nonempty; `local` is the defensive fallback.
                let winner = cands
                    .iter()
                    .filter(|r| r.att <= min_att + psi)
                    .min_by(|a, b| a.rus.total_cmp(&b.rus))
                    .copied()
                    .unwrap_or(local);
                if winner.cluster == home {
                    ctx.dispatch_least_loaded(home, p.job);
                } else {
                    ctx.transfer(home, winner.cluster, p.job);
                }
            }
        }
    }
}
