//! CENTRAL: one scheduler decides for every resource in the system.

use gridscale_gridsim::{Ctx, Dispatch, Policy};
use gridscale_workload::Job;

/// The paper's CENTRAL model:
///
/// > "Here a centralized scheduler makes decisions for all the resources in
/// > the system. The resources update the scheduler every τ seconds with
/// > their loading conditions. If loading conditions at the resource did
/// > not change significantly from the previous update, an update might be
/// > suppressed."
///
/// The update machinery (periodic τ, suppression) lives in the simulator
/// and applies to every model; CENTRAL's distinguishing property is purely
/// structural — the experiment configuration gives it a single scheduler
/// whose cluster is the whole resource pool, so every decision scans all
/// `N` resources and every update converges on one server. Both jobs
/// classes therefore go to the believed least-loaded resource of the one
/// global cluster.
#[derive(Debug, Default)]
pub struct Central;

impl Policy for Central {
    fn name(&self) -> &'static str {
        "CENTRAL"
    }

    fn on_remote_job(&mut self, ctx: &mut Ctx, cluster: usize, job: Job) {
        // With a single global cluster there is no "remote": place on the
        // least-loaded resource we know of.
        ctx.dispatch_least_loaded(cluster, job);
    }
}
