//! AUCTION: idle resources trigger auctions; loaded clusters bid work.

use crate::polling::{PlacementRule, PollPlacer};
use gridscale_gridsim::{Comms, Ctx, Dispatch, Policy, PolicyMsg, Telemetry, Timers};
use gridscale_workload::Job;
use std::collections::BTreeMap;

/// Auction-close timers are tagged `TAG_AUCTION_BASE + auction_id`.
const TAG_AUCTION_BASE: u64 = 1 << 62;

#[derive(Debug)]
struct Book {
    bids: Vec<(usize, f64)>,
}

/// The paper's AUCTION model (after Leland & Ott):
///
/// > "When a new job arrives, a scheduler follows the same process as in
/// > LOWEST for initial scheduling. When a scheduler `S_a` finds a resource
/// > in its cluster is idle or has load below threshold `T_l`, it sends out
/// > auction invitations to `L_p` neighboring schedulers. A scheduler `S_b`
/// > receiving the invitation finds a resource in its local cluster with
/// > load above `T_l`, it replies back with a bid to `S_a`. The auctioning
/// > scheduler `S_a` accumulates bids over a small interval and selects the
/// > bid from the bidder with the highest load."
///
/// Initial scheduling is a full LOWEST (poll-based PULL); the auctions add
/// a PUSH channel — the combination is why the paper classifies AUCTION
/// with the hybrids in its Case 3 analysis ("These models use both PUSH
/// and PULL technique for status estimations").
///
/// Idle detection is update-driven: when a processed status update shows a
/// resource at/below `T_l` and no auction is already open at that cluster,
/// one opens; bids accumulate for the `auction_window` threshold and the
/// winner receives an award, answering with a recalled queued job.
#[derive(Debug)]
pub struct Auction {
    placer: PollPlacer,
    /// Per-cluster auction counter; ids are `(cluster << 32) | counter`,
    /// so an auction id is a function of the opening cluster's history
    /// alone — unique across clusters without any global sequencing
    /// (which is what lets the sharded executor reproduce them).
    next_auction: Vec<u64>,
    /// Open auction per cluster (at most one at a time).
    open: Vec<Option<u64>>,
    books: BTreeMap<u64, Book>,
    /// Reused peer-draw buffer (`random_remotes_into` scratch).
    scratch: Vec<usize>,
}

impl Default for Auction {
    fn default() -> Self {
        Auction {
            placer: PollPlacer::new(PlacementRule::LeastLoaded),
            next_auction: Vec::new(),
            open: Vec::new(),
            books: BTreeMap::new(),
            scratch: Vec::new(),
        }
    }
}

impl Auction {
    fn ensure(&mut self, clusters: usize) {
        if self.open.len() < clusters {
            self.open.resize(clusters, None);
            self.next_auction.resize(clusters, 0);
        }
    }
}

impl Policy for Auction {
    fn name(&self) -> &'static str {
        "AUCTION"
    }

    fn on_remote_job(&mut self, ctx: &mut Ctx, cluster: usize, job: Job) {
        // "Same process as in LOWEST for initial scheduling."
        self.placer.start(ctx, cluster, job);
    }

    fn on_update(&mut self, ctx: &mut Ctx, cluster: usize, _res_pos: usize, load: f64) {
        self.ensure(ctx.clusters());
        let t_l = ctx.thresholds().t_l;
        if load >= t_l || self.open[cluster].is_some() {
            return;
        }
        // The peer draw happens before the empty-check on purpose: the RNG
        // stream must advance exactly as it always has.
        let lp = ctx.enablers().neighborhood;
        ctx.random_remotes_into(cluster, lp, &mut self.scratch);
        if self.scratch.is_empty() {
            return;
        }
        self.next_auction[cluster] += 1;
        let auction = ((cluster as u64) << 32) | self.next_auction[cluster];
        self.open[cluster] = Some(auction);
        self.books.insert(auction, Book { bids: Vec::new() });
        for &p in &self.scratch {
            ctx.send_policy(
                cluster,
                p,
                PolicyMsg::AuctionInvite {
                    from: cluster as u32,
                    auction,
                },
            );
        }
        let window = ctx.thresholds().auction_window;
        ctx.set_timer(cluster, window, TAG_AUCTION_BASE + auction);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, cluster: usize, tag: u64) {
        if tag < TAG_AUCTION_BASE {
            return;
        }
        self.ensure(ctx.clusters());
        let auction = tag - TAG_AUCTION_BASE;
        if self.open[cluster] == Some(auction) {
            self.open[cluster] = None;
        }
        let Some(book) = self.books.remove(&auction) else {
            return;
        };
        // "Selects the bid from the bidder with the highest load."
        let winner = book.bids.iter().max_by(|a, b| a.1.total_cmp(&b.1));
        if let Some(&(bidder, _)) = winner {
            ctx.send_policy(
                cluster,
                bidder,
                PolicyMsg::AuctionAward {
                    from: cluster as u32,
                    auction,
                },
            );
        }
    }

    fn on_policy_msg(&mut self, ctx: &mut Ctx, cluster: usize, msg: PolicyMsg) {
        self.ensure(ctx.clusters());
        match msg {
            PolicyMsg::Poll {
                from,
                token,
                job_exec,
            } => PollPlacer::answer_poll(ctx, cluster, from, token, job_exec),
            PolicyMsg::PollReply {
                from,
                token,
                avg_load,
                awt,
                ert,
                rus,
            } => {
                self.placer
                    .on_reply(ctx, token, from, avg_load, awt, ert, rus);
            }
            PolicyMsg::AuctionInvite { from, auction } => {
                let t_l = ctx.thresholds().t_l;
                let has_loaded = ctx
                    .view(cluster)
                    .most_loaded()
                    .map(|p| ctx.view(cluster).get(p).load > t_l)
                    .unwrap_or(false);
                if has_loaded {
                    ctx.send_policy(
                        cluster,
                        from as usize,
                        PolicyMsg::Bid {
                            from: cluster as u32,
                            auction,
                            avg_load: ctx.avg_load(cluster),
                        },
                    );
                }
            }
            PolicyMsg::Bid {
                from,
                auction,
                avg_load,
            } => {
                if let Some(book) = self.books.get_mut(&auction) {
                    book.bids.push((from as usize, avg_load));
                }
            }
            PolicyMsg::AuctionAward { from, .. } => {
                // We won: shed one queued job from our most loaded resource
                // toward the auctioneer (no-op at the resource if its queue
                // emptied in the meantime).
                let t_l = ctx.thresholds().t_l;
                if let Some(pos) = ctx.view(cluster).most_loaded() {
                    if ctx.view(cluster).get(pos).load > t_l {
                        ctx.recall(cluster, pos, from as usize);
                    }
                }
            }
            _ => {}
        }
    }
}
