//! Sy-I: symmetric combination of S-I and R-I.

use crate::polling::{PlacementRule, PollPlacer};
use gridscale_desim::SimTime;
use gridscale_gridsim::{Clock, Comms, Ctx, Dispatch, Policy, PolicyMsg, Telemetry, Timers};
use gridscale_workload::Job;

/// Timer tag for the periodic RUS self-check (shared with R-I semantics).
const TAG_RUS_CHECK: u64 = 2;

#[derive(Debug, Clone, Copy)]
struct Advert {
    from: usize,
    rus: f64,
    at: SimTime,
}

/// The paper's Sy-I model (after Shan et al.):
///
/// > "This combines S-I and R-I. As in R-I, each scheduler will advertise
/// > its own underutilized resources periodically. Based on this
/// > information a scheduler with a new job will schedule the job locally
/// > or send it to the advertising scheduler. However, if a new job
/// > arrives at a scheduler which has received no advertisements, it will
/// > use the S-I approach to schedule the job."
///
/// Advertisements are kept per cluster with their arrival time; they stay
/// valid for two volunteer intervals. A REMOTE arrival with a fresh
/// advertisement transfers straight to the most recent advertiser (if it
/// looked under-utilized); otherwise the S-I poll flow runs.
#[derive(Debug)]
pub struct Symmetric {
    placer: PollPlacer,
    adverts: Vec<Vec<Advert>>,
    /// Reused peer-draw buffer (`random_remotes_into` scratch).
    scratch: Vec<usize>,
}

impl Default for Symmetric {
    fn default() -> Self {
        Symmetric {
            placer: PollPlacer::new(PlacementRule::TurnaroundCost),
            adverts: Vec::new(),
            scratch: Vec::new(),
        }
    }
}

impl Symmetric {
    fn ensure(&mut self, clusters: usize) {
        if self.adverts.len() < clusters {
            self.adverts.resize_with(clusters, Vec::new);
        }
    }

    /// Drops stale advertisements and returns the most recent fresh one.
    fn fresh_advert(&mut self, cluster: usize, now: SimTime, ttl: SimTime) -> Option<Advert> {
        let list = &mut self.adverts[cluster];
        list.retain(|a| now - a.at <= ttl);
        list.last().copied()
    }
}

impl Policy for Symmetric {
    fn name(&self) -> &'static str {
        "Sy-I"
    }

    fn uses_middleware(&self) -> bool {
        true
    }

    fn init_cluster(&mut self, ctx: &mut Ctx, cluster: usize) {
        self.ensure(ctx.clusters());
        let period = ctx.enablers().volunteer_interval;
        let phase = ctx.rng().int_range(1, period.max(1));
        ctx.set_timer(cluster, SimTime::from_ticks(phase), TAG_RUS_CHECK);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, cluster: usize, tag: u64) {
        if tag != TAG_RUS_CHECK {
            return;
        }
        // R-I half: advertise under-utilization periodically. The idle
        // probe is O(1) via the view's tournament tree.
        let delta = ctx.thresholds().delta;
        let has_idle = ctx.view(cluster).has_idle(delta);
        if has_idle {
            let lp = ctx.enablers().neighborhood;
            let rus = ctx.rus(cluster);
            ctx.random_remotes_into(cluster, lp, &mut self.scratch);
            for &p in &self.scratch {
                ctx.send_policy(
                    cluster,
                    p,
                    PolicyMsg::Volunteer {
                        from: cluster as u32,
                        rus,
                    },
                );
            }
        }
        let period = ctx.enablers().volunteer_interval;
        ctx.set_timer(cluster, SimTime::from_ticks(period), TAG_RUS_CHECK);
    }

    fn on_remote_job(&mut self, ctx: &mut Ctx, cluster: usize, job: Job) {
        self.ensure(ctx.clusters());
        let ttl = SimTime::from_ticks(ctx.enablers().volunteer_interval * 2);
        let now = ctx.now();
        if let Some(ad) = self.fresh_advert(cluster, now, ttl) {
            // Schedule locally or at the advertiser, whichever looks less
            // utilized.
            if ad.rus < ctx.rus(cluster) && ad.from != cluster {
                // Consume the advertisement we are acting on.
                self.adverts[cluster].pop();
                ctx.transfer(cluster, ad.from, job);
            } else {
                ctx.dispatch_least_loaded(cluster, job);
            }
            return;
        }
        // No advertisements: S-I fallback.
        self.placer.start(ctx, cluster, job);
    }

    fn on_policy_msg(&mut self, ctx: &mut Ctx, cluster: usize, msg: PolicyMsg) {
        self.ensure(ctx.clusters());
        match msg {
            PolicyMsg::Volunteer { from, rus } => {
                let f = from as usize;
                self.adverts[cluster].retain(|a| a.from != f);
                self.adverts[cluster].push(Advert {
                    from: f,
                    rus,
                    at: ctx.now(),
                });
            }
            PolicyMsg::Poll {
                from,
                token,
                job_exec,
            } => PollPlacer::answer_poll(ctx, cluster, from, token, job_exec),
            PolicyMsg::PollReply {
                from,
                token,
                avg_load,
                awt,
                ert,
                rus,
            } => {
                self.placer
                    .on_reply(ctx, token, from, avg_load, awt, ert, rus);
            }
            _ => {}
        }
    }
}
