//! Static dispatch over the built-in model set.
//!
//! [`RmsPolicy`] wraps the eight built-in policies in one enum that
//! itself implements [`Policy`]. Driving the simulator with a concrete
//! `&mut RmsPolicy` monomorphizes the whole event loop — every policy
//! callback becomes a direct (inlinable) call behind one enum branch,
//! instead of a virtual call through `&mut dyn Policy`. The annealer's
//! hot replay path uses this; `Box<dyn Policy>` from [`RmsKind::build`]
//! remains available for user-defined policies and heterogeneous
//! collections (the `policy_dispatch` bench records the delta).

use crate::{
    Auction, Central, Hierarchical, Lowest, ReceiverInit, Reserve, RmsKind, SenderInit, Symmetric,
};
use gridscale_gridsim::{Ctx, Policy, PolicyMsg};
use gridscale_workload::Job;

/// The eight built-in policies as one statically dispatched enum.
#[derive(Debug)]
pub enum RmsPolicy {
    /// CENTRAL.
    Central(Central),
    /// LOWEST.
    Lowest(Lowest),
    /// RESERVE.
    Reserve(Reserve),
    /// AUCTION.
    Auction(Auction),
    /// S-I.
    SenderInit(SenderInit),
    /// R-I.
    ReceiverInit(ReceiverInit),
    /// Sy-I.
    Symmetric(Symmetric),
    /// HIER (hierarchical extension).
    Hierarchical(Hierarchical),
}

macro_rules! with_policy {
    ($self:ident, $p:ident => $e:expr) => {
        match $self {
            RmsPolicy::Central($p) => $e,
            RmsPolicy::Lowest($p) => $e,
            RmsPolicy::Reserve($p) => $e,
            RmsPolicy::Auction($p) => $e,
            RmsPolicy::SenderInit($p) => $e,
            RmsPolicy::ReceiverInit($p) => $e,
            RmsPolicy::Symmetric($p) => $e,
            RmsPolicy::Hierarchical($p) => $e,
        }
    };
}

impl Policy for RmsPolicy {
    fn name(&self) -> &'static str {
        with_policy!(self, p => p.name())
    }

    fn uses_middleware(&self) -> bool {
        with_policy!(self, p => p.uses_middleware())
    }

    fn init_cluster(&mut self, ctx: &mut Ctx, cluster: usize) {
        with_policy!(self, p => p.init_cluster(ctx, cluster))
    }

    fn on_local_job(&mut self, ctx: &mut Ctx, cluster: usize, job: Job) {
        with_policy!(self, p => p.on_local_job(ctx, cluster, job))
    }

    fn on_remote_job(&mut self, ctx: &mut Ctx, cluster: usize, job: Job) {
        with_policy!(self, p => p.on_remote_job(ctx, cluster, job))
    }

    fn on_transfer_in(&mut self, ctx: &mut Ctx, cluster: usize, job: Job) {
        with_policy!(self, p => p.on_transfer_in(ctx, cluster, job))
    }

    fn on_policy_msg(&mut self, ctx: &mut Ctx, cluster: usize, msg: PolicyMsg) {
        with_policy!(self, p => p.on_policy_msg(ctx, cluster, msg))
    }

    fn on_update(&mut self, ctx: &mut Ctx, cluster: usize, res_pos: usize, load: f64) {
        with_policy!(self, p => p.on_update(ctx, cluster, res_pos, load))
    }

    fn on_timer(&mut self, ctx: &mut Ctx, cluster: usize, tag: u64) {
        with_policy!(self, p => p.on_timer(ctx, cluster, tag))
    }
}

impl RmsKind {
    /// Instantiates a fresh policy as the statically dispatched
    /// [`RmsPolicy`] enum — the preferred form for measurement loops.
    /// Behaviour is identical to [`RmsKind::build`]; only the dispatch
    /// mechanism differs.
    pub fn build_static(self) -> RmsPolicy {
        match self {
            RmsKind::Central => RmsPolicy::Central(Central),
            RmsKind::Lowest => RmsPolicy::Lowest(Lowest::default()),
            RmsKind::Reserve => RmsPolicy::Reserve(Reserve::default()),
            RmsKind::Auction => RmsPolicy::Auction(Auction::default()),
            RmsKind::SenderInit => RmsPolicy::SenderInit(SenderInit::default()),
            RmsKind::ReceiverInit => RmsPolicy::ReceiverInit(ReceiverInit::default()),
            RmsKind::Symmetric => RmsPolicy::Symmetric(Symmetric::default()),
            RmsKind::Hierarchical => RmsPolicy::Hierarchical(Hierarchical::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_mirrors_boxed_metadata() {
        for k in RmsKind::EXTENDED {
            let stat = k.build_static();
            let boxed = k.build();
            assert_eq!(stat.name(), boxed.name(), "{k}");
            assert_eq!(stat.uses_middleware(), boxed.uses_middleware(), "{k}");
        }
    }
}
