//! RESERVE: under-loaded schedulers register reservations at peers.

use gridscale_desim::SimTime;
use gridscale_gridsim::{Comms, Ctx, Dispatch, Policy, PolicyMsg, Telemetry, Timers};
use gridscale_workload::Job;
use std::collections::BTreeMap;

/// Timer tag for the periodic load self-check.
const TAG_CHECK: u64 = 1;

/// The paper's RESERVE model (after Zhou):
///
/// > "Here the schedulers are arranged as in LOWEST. When average cluster
/// > load for a local cluster for a scheduler `S_a` falls below threshold
/// > `T_l`, then `S_a` advertises to register reservations at `L_p` remote
/// > schedulers. On a REMOTE job arrival, a scheduler will examine the
/// > average load of its local cluster. If it is above `T_l`, it probes the
/// > remote scheduler that made the most recent reservation. The job is
/// > sent to the remote scheduler if the loading there is below a given
/// > threshold. Otherwise, the reservations are cancelled."
///
/// The load self-check runs on the *volunteer-interval* enabler timer (the
/// knob Case 4 tunes); reservations at each scheduler are kept as a
/// recency stack.
#[derive(Debug, Default)]
pub struct Reserve {
    /// Per cluster: reservation stack (holder clusters, most recent last).
    reservations: Vec<Vec<usize>>,
    /// Per cluster: where we currently hold reservations (to send cancels).
    advertised_to: Vec<Vec<usize>>,
    /// Jobs held while probing, keyed by token (value: job + probed holder).
    pending: BTreeMap<u64, (Job, usize)>,
    /// Reused peer-draw buffer (`random_remotes_into` scratch).
    scratch: Vec<usize>,
}

impl Reserve {
    fn ensure(&mut self, clusters: usize) {
        if self.reservations.len() < clusters {
            self.reservations.resize_with(clusters, Vec::new);
            self.advertised_to.resize_with(clusters, Vec::new);
        }
    }
}

impl Policy for Reserve {
    fn name(&self) -> &'static str {
        "RESERVE"
    }

    fn init_cluster(&mut self, ctx: &mut Ctx, cluster: usize) {
        self.ensure(ctx.clusters());
        let period = ctx.enablers().volunteer_interval;
        // Staggered so all schedulers don't self-check simultaneously;
        // the phase comes from the cluster's own RNG stream.
        let phase = ctx.rng().int_range(1, period.max(1));
        ctx.set_timer(cluster, SimTime::from_ticks(phase), TAG_CHECK);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, cluster: usize, tag: u64) {
        if tag != TAG_CHECK {
            return;
        }
        self.ensure(ctx.clusters());
        let t_l = ctx.thresholds().t_l;
        let avg = ctx.avg_load(cluster);
        let lp = ctx.enablers().neighborhood;
        if avg < t_l && self.advertised_to[cluster].is_empty() {
            ctx.random_remotes_into(cluster, lp, &mut self.scratch);
            for &p in &self.scratch {
                ctx.send_policy(
                    cluster,
                    p,
                    PolicyMsg::Reserve {
                        from: cluster as u32,
                    },
                );
            }
            // clone_from reuses the slot's retained capacity.
            self.advertised_to[cluster].clone_from(&self.scratch);
        } else if avg >= t_l && !self.advertised_to[cluster].is_empty() {
            let peers = std::mem::take(&mut self.advertised_to[cluster]);
            for p in peers {
                ctx.send_policy(
                    cluster,
                    p,
                    PolicyMsg::ReserveCancel {
                        from: cluster as u32,
                    },
                );
            }
        }
        let period = ctx.enablers().volunteer_interval;
        ctx.set_timer(cluster, SimTime::from_ticks(period), TAG_CHECK);
    }

    fn on_remote_job(&mut self, ctx: &mut Ctx, cluster: usize, job: Job) {
        self.ensure(ctx.clusters());
        let t_l = ctx.thresholds().t_l;
        if ctx.avg_load(cluster) > t_l {
            if let Some(&holder) = self.reservations[cluster].last() {
                let token = ctx.next_token();
                self.pending.insert(token, (job, holder));
                ctx.send_policy(
                    cluster,
                    holder,
                    PolicyMsg::ReserveProbe {
                        from: cluster as u32,
                        token,
                    },
                );
                return;
            }
        }
        ctx.dispatch_least_loaded(cluster, job);
    }

    fn on_policy_msg(&mut self, ctx: &mut Ctx, cluster: usize, msg: PolicyMsg) {
        self.ensure(ctx.clusters());
        match msg {
            PolicyMsg::Reserve { from } => {
                let f = from as usize;
                self.reservations[cluster].retain(|&h| h != f);
                self.reservations[cluster].push(f);
            }
            PolicyMsg::ReserveCancel { from } => {
                self.reservations[cluster].retain(|&h| h != from as usize);
            }
            PolicyMsg::ReserveProbe { from, token } => {
                let accept = ctx.avg_load(cluster) < ctx.thresholds().t_l;
                ctx.send_policy(
                    cluster,
                    from as usize,
                    PolicyMsg::ReserveProbeReply {
                        from: cluster as u32,
                        token,
                        avg_load: ctx.avg_load(cluster),
                        accept,
                    },
                );
            }
            PolicyMsg::ReserveProbeReply {
                from,
                token,
                accept,
                ..
            } => {
                if let Some((job, holder)) = self.pending.remove(&token) {
                    debug_assert_eq!(holder, from as usize);
                    if accept {
                        ctx.transfer(cluster, holder, job);
                    } else {
                        // "Otherwise, the reservations are cancelled."
                        self.reservations[cluster].retain(|&h| h != holder);
                        ctx.dispatch_least_loaded(cluster, job);
                    }
                }
            }
            _ => {}
        }
    }
}
