//! Behavioural tests running each RMS policy on small Grids.

use gridscale_desim::SimTime;
use gridscale_gridsim::{run_simulation, GridConfig, SimReport};
use gridscale_rms::RmsKind;
use gridscale_workload::WorkloadConfig;

/// A small, quick configuration exercising both LOCAL and REMOTE paths.
fn small_cfg(kind: RmsKind) -> GridConfig {
    GridConfig {
        nodes: 60,
        schedulers: if kind.is_centralized() { 1 } else { 5 },
        estimators: 0,
        workload: WorkloadConfig {
            arrival_rate: 0.03,
            duration: SimTime::from_ticks(30_000),
            ..WorkloadConfig::default()
        },
        drain: SimTime::from_ticks(40_000),
        seed: 0xBEEF,
        ..GridConfig::default()
    }
}

fn run(kind: RmsKind) -> SimReport {
    let mut policy = kind.build();
    run_simulation(&small_cfg(kind), policy.as_mut())
}

#[test]
fn every_policy_completes_most_jobs() {
    for kind in RmsKind::ALL {
        let r = run(kind);
        assert!(r.jobs_total > 300, "{kind}: trace too small");
        let frac = r.completed as f64 / r.jobs_total as f64;
        assert!(
            frac > 0.9,
            "{kind}: only {}/{} jobs completed",
            r.completed,
            r.jobs_total
        );
        assert!(r.succeeded > 0, "{kind}: nothing met its deadline");
        assert!(
            r.efficiency > 0.0 && r.efficiency < 1.0,
            "{kind}: E = {}",
            r.efficiency
        );
    }
}

#[test]
fn every_policy_is_deterministic() {
    for kind in RmsKind::ALL {
        let a = run(kind);
        let b = run(kind);
        assert_eq!(a.f_work, b.f_work, "{kind}: F differs between runs");
        assert_eq!(a.g_overhead, b.g_overhead, "{kind}: G differs");
        assert_eq!(a.completed, b.completed, "{kind}: completions differ");
        assert_eq!(a.transfers, b.transfers, "{kind}: transfers differ");
        assert_eq!(a.policy_msgs, b.policy_msgs, "{kind}: messages differ");
    }
}

#[test]
fn distributed_models_exchange_policy_traffic() {
    for kind in [
        RmsKind::Lowest,
        RmsKind::Reserve,
        RmsKind::Auction,
        RmsKind::SenderInit,
        RmsKind::ReceiverInit,
        RmsKind::Symmetric,
    ] {
        let r = run(kind);
        assert!(
            r.policy_msgs > 0,
            "{kind}: a distributed model must talk to peers"
        );
    }
}

#[test]
fn central_has_no_policy_traffic_or_transfers() {
    let r = run(RmsKind::Central);
    assert_eq!(r.policy_msgs, 0);
    assert_eq!(r.transfers, 0);
}

#[test]
fn polling_models_transfer_jobs() {
    // LOWEST and S-I migrate REMOTE jobs when a peer looks lighter; with
    // random arrivals over 5 clusters imbalance always occurs.
    for kind in [RmsKind::Lowest, RmsKind::SenderInit] {
        let r = run(kind);
        assert!(r.transfers > 0, "{kind}: never migrated any job");
    }
}

#[test]
fn middleware_family_flag() {
    for kind in RmsKind::ALL {
        let p = kind.build();
        assert_eq!(p.uses_middleware(), kind.uses_middleware(), "{kind}");
    }
}

#[test]
fn remote_heavy_workload_survives() {
    // All-REMOTE jobs (exec > T_CPU) force every model through its remote
    // path; everything must still complete and succeed somewhat.
    for kind in RmsKind::ALL {
        let mut cfg = small_cfg(kind);
        cfg.workload.exec_time = gridscale_workload::ExecTimeModel::LogUniform {
            lo: 800.0,
            hi: 4000.0,
        };
        cfg.workload.arrival_rate = 0.02;
        let mut policy = kind.build();
        let r = run_simulation(&cfg, policy.as_mut());
        let frac = r.completed as f64 / r.jobs_total as f64;
        assert!(frac > 0.85, "{kind}: remote-heavy completion {frac}");
    }
}

#[test]
fn local_only_workload_never_transfers() {
    // All-LOCAL jobs (exec ≤ T_CPU) must be placed in-cluster by every
    // model: no transfers, no polls for the poll-based models.
    for kind in RmsKind::ALL {
        let mut cfg = small_cfg(kind);
        cfg.workload.exec_time = gridscale_workload::ExecTimeModel::LogUniform {
            lo: 50.0,
            hi: 600.0,
        };
        let mut policy = kind.build();
        let r = run_simulation(&cfg, policy.as_mut());
        if matches!(kind, RmsKind::Lowest | RmsKind::SenderInit) {
            assert_eq!(r.transfers, 0, "{kind}: LOCAL jobs must stay local");
        }
        assert!(r.completed > 0, "{kind}");
    }
}

#[test]
fn more_neighbours_mean_more_poll_traffic() {
    let mut cfg1 = small_cfg(RmsKind::Lowest);
    cfg1.enablers.neighborhood = 1;
    let mut cfg4 = small_cfg(RmsKind::Lowest);
    cfg4.enablers.neighborhood = 4;
    let mut p1 = RmsKind::Lowest.build();
    let mut p4 = RmsKind::Lowest.build();
    let r1 = run_simulation(&cfg1, p1.as_mut());
    let r4 = run_simulation(&cfg4, p4.as_mut());
    assert!(
        r4.policy_msgs > 2 * r1.policy_msgs,
        "L_p=4 ({}) should far exceed L_p=1 ({})",
        r4.policy_msgs,
        r1.policy_msgs
    );
}

#[test]
fn estimators_work_with_policies() {
    for kind in [RmsKind::Central, RmsKind::Auction, RmsKind::Symmetric] {
        let mut cfg = small_cfg(kind);
        cfg.estimators = 2;
        let mut policy = kind.build();
        let r = run_simulation(&cfg, policy.as_mut());
        assert!(r.batches > 0, "{kind}: estimators must forward batches");
        assert!(r.completed > 0, "{kind}");
    }
}

mod hierarchical_extension {
    use super::*;

    #[test]
    fn hierarchy_completes_jobs_and_consults_the_super() {
        let kind = RmsKind::Hierarchical;
        let r = run(kind);
        let frac = r.completed as f64 / r.jobs_total as f64;
        assert!(frac > 0.9, "completion {frac}");
        assert!(r.policy_msgs > 0, "load reports + placement consultations");
        assert!(r.transfers > 0, "the super spreads load across clusters");
    }

    #[test]
    fn hierarchy_is_deterministic() {
        let a = run(RmsKind::Hierarchical);
        let b = run(RmsKind::Hierarchical);
        assert_eq!(a.f_work, b.f_work);
        assert_eq!(a.policy_msgs, b.policy_msgs);
    }

    #[test]
    fn hierarchy_consults_in_o1_messages_per_job() {
        // Per REMOTE job: request + reply (+ periodic reports); LOWEST
        // costs 2·L_p per REMOTE job. At L_p = 4 the hierarchy must be
        // much leaner per job.
        let mut cfg = small_cfg(RmsKind::Hierarchical);
        cfg.enablers.neighborhood = 4;
        let mut ph = RmsKind::Hierarchical.build();
        let h = run_simulation(&cfg, ph.as_mut());
        let mut cfg_l = small_cfg(RmsKind::Lowest);
        cfg_l.enablers.neighborhood = 4;
        let mut pl = RmsKind::Lowest.build();
        let l = run_simulation(&cfg_l, pl.as_mut());
        let per_h = h.policy_msgs as f64 / h.jobs_total as f64;
        let per_l = l.policy_msgs as f64 / l.jobs_total as f64;
        assert!(
            per_h < 0.7 * per_l,
            "HIER {per_h:.2} msgs/job should undercut LOWEST {per_l:.2} at L_p=4"
        );
    }
}
