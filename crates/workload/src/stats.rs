//! Trace analysis: the statistics workload papers report.
//!
//! Supports validating imported SWF traces against the synthetic model
//! (demand percentiles, arrival burstiness) and characterizing generated
//! workloads for experiment write-ups.

use crate::trace::JobTrace;
use gridscale_desim::SimTime;
use serde::{Deserialize, Serialize};

/// Distribution summary of one nonnegative quantity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistSummary {
    /// Sample count.
    pub count: usize,
    /// Mean.
    pub mean: f64,
    /// Coefficient of variation (std/mean; 0 if degenerate).
    pub cv: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl DistSummary {
    /// Summarizes a sample (empty input gives all zeros).
    pub fn of(values: &[f64]) -> DistSummary {
        if values.is_empty() {
            return DistSummary {
                count: 0,
                mean: 0.0,
                cv: 0.0,
                min: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let mut xs = values.to_vec();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let q = |p: f64| xs[(((n - 1) as f64) * p).round() as usize];
        DistSummary {
            count: n,
            mean,
            cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
            min: xs[0],
            p50: q(0.50),
            p90: q(0.90),
            p99: q(0.99),
            max: xs[n - 1],
        }
    }
}

/// Full characterization of one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Service-demand distribution (ticks).
    pub demand: DistSummary,
    /// Inter-arrival gap distribution (ticks). For a Poisson stream the CV
    /// is ≈ 1.
    pub interarrival: DistSummary,
    /// Requested-time over-estimation factors (`requested / exec`).
    pub overestimate: DistSummary,
    /// Index of dispersion of arrival counts over windows (variance/mean
    /// of per-window counts; ≈ 1 for Poisson, > 1 bursty).
    pub dispersion: f64,
    /// LOCAL share at `T_CPU = 700`.
    pub local_fraction: f64,
}

/// Computes [`TraceStats`] with the given window for the dispersion index.
pub fn analyze(trace: &JobTrace, window: SimTime) -> TraceStats {
    assert!(window.ticks() > 0);
    let jobs = trace.jobs();
    let demand: Vec<f64> = jobs.iter().map(|j| j.exec_time.as_f64()).collect();
    let gaps: Vec<f64> = jobs
        .windows(2)
        .map(|w| (w[1].arrival - w[0].arrival).as_f64())
        .collect();
    let over: Vec<f64> = jobs
        .iter()
        .filter(|j| j.exec_time.ticks() > 0)
        .map(|j| j.requested_time.as_f64() / j.exec_time.as_f64())
        .collect();

    let dispersion = if jobs.len() < 2 {
        0.0
    } else {
        let span = jobs.last().unwrap().arrival.ticks() + 1;
        let bins = span.div_ceil(window.ticks()).max(1) as usize;
        let mut counts = vec![0.0f64; bins];
        for j in jobs {
            counts[(j.arrival.ticks() / window.ticks()) as usize] += 1.0;
        }
        let mean = counts.iter().sum::<f64>() / bins as f64;
        if mean == 0.0 {
            0.0
        } else {
            let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / bins as f64;
            var / mean
        }
    };

    let t_cpu = SimTime::from_ticks(700);
    let local_fraction = if jobs.is_empty() {
        0.0
    } else {
        trace.local_count(t_cpu) as f64 / jobs.len() as f64
    };

    TraceStats {
        demand: DistSummary::of(&demand),
        interarrival: DistSummary::of(&gaps),
        overestimate: DistSummary::of(&over),
        dispersion,
        local_fraction,
    }
}

/// Maximum-likelihood log-normal fit of a positive sample: returns
/// `(mu, sigma)` of the underlying normal, the parameters to hand to
/// [`crate::ExecTimeModel::LogNormal`] to re-synthesize a trace shaped
/// like an imported one. `None` for fewer than 2 positive values.
pub fn fit_lognormal(values: &[f64]) -> Option<(f64, f64)> {
    let logs: Vec<f64> = values
        .iter()
        .filter(|&&x| x > 0.0)
        .map(|x| x.ln())
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let mu = logs.iter().sum::<f64>() / n;
    let var = logs.iter().map(|l| (l - mu) * (l - mu)).sum::<f64>() / n;
    Some((mu, var.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{generate, ExecTimeModel, WorkloadConfig};
    use gridscale_desim::SimRng;

    fn poisson_trace(rate: f64, seed: u64) -> JobTrace {
        let cfg = WorkloadConfig {
            arrival_rate: rate,
            duration: SimTime::from_ticks(300_000),
            ..WorkloadConfig::default()
        };
        generate(&cfg, &mut SimRng::new(seed))
    }

    #[test]
    fn dist_summary_of_known_sample() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let d = DistSummary::of(&xs);
        assert_eq!(d.count, 100);
        assert!((d.mean - 50.5).abs() < 1e-12);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 100.0);
        assert!((d.p50 - 50.0).abs() <= 1.0);
        assert!((d.p90 - 90.0).abs() <= 1.0);
        let empty = DistSummary::of(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn poisson_streams_have_unit_cv_and_dispersion() {
        let t = poisson_trace(0.05, 1);
        let s = analyze(&t, SimTime::from_ticks(2_000));
        assert!(
            (s.interarrival.cv - 1.0).abs() < 0.1,
            "exponential gaps: CV {:.3}",
            s.interarrival.cv
        );
        assert!(
            (0.7..1.4).contains(&s.dispersion),
            "Poisson dispersion {:.3}",
            s.dispersion
        );
    }

    #[test]
    fn demand_stats_match_the_model() {
        let t = poisson_trace(0.05, 2);
        let s = analyze(&t, SimTime::from_ticks(2_000));
        let analytic = ExecTimeModel::default().mean();
        assert!(
            (s.demand.mean - analytic).abs() / analytic < 0.06,
            "mean demand {:.0} vs analytic {:.0}",
            s.demand.mean,
            analytic
        );
        // Log-uniform over [50, 5000): support respected, heavy spread.
        assert!(s.demand.min >= 50.0 && s.demand.max < 5_000.5);
        assert!(s.demand.cv > 0.5);
        // Overestimation factors live in the configured [1.2, 3.0].
        assert!(s.overestimate.min >= 1.2 - 1e-9 && s.overestimate.max <= 3.0 + 0.05);
    }

    #[test]
    fn local_fraction_matches_trace_summary() {
        let t = poisson_trace(0.05, 3);
        let s = analyze(&t, SimTime::from_ticks(2_000));
        let expect = t.local_count(SimTime::from_ticks(700)) as f64 / t.len() as f64;
        assert!((s.local_fraction - expect).abs() < 1e-12);
    }

    #[test]
    fn lognormal_fit_recovers_parameters() {
        let mut rng = SimRng::new(9);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.log_normal(4.0, 0.7)).collect();
        let (mu, sigma) = fit_lognormal(&xs).unwrap();
        assert!((mu - 4.0).abs() < 0.02, "mu {mu}");
        assert!((sigma - 0.7).abs() < 0.02, "sigma {sigma}");
        // Round trip: a trace generated from the fit has the right mean.
        let model = ExecTimeModel::LogNormal { mu, sigma };
        let emp: f64 = (0..20_000)
            .map(|_| model.draw(&mut rng).as_f64())
            .sum::<f64>()
            / 20_000.0;
        let analytic = (4.0f64 + 0.49 / 2.0).exp();
        assert!((emp - analytic).abs() / analytic < 0.05);
    }

    #[test]
    fn lognormal_fit_guards_degenerate_input() {
        assert_eq!(fit_lognormal(&[]), None);
        assert_eq!(fit_lognormal(&[5.0]), None);
        assert_eq!(fit_lognormal(&[-1.0, 0.0]), None);
        assert!(fit_lognormal(&[2.0, 2.0]).is_some());
    }

    #[test]
    fn degenerate_traces_do_not_panic() {
        let empty = JobTrace::default();
        let s = analyze(&empty, SimTime::from_ticks(100));
        assert_eq!(s.demand.count, 0);
        assert_eq!(s.dispersion, 0.0);
        assert_eq!(s.local_fraction, 0.0);
    }
}
