//! The job record.

use gridscale_desim::SimTime;
use serde::{Deserialize, Serialize};

/// Unique job identifier.
pub type JobId = u64;

/// LOCAL/REMOTE classification (paper §3.1): jobs short enough to finish
/// quickly should run at (or near) their submission point; long jobs are
/// candidates for remote execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobClass {
    /// `exec_time <= T_CPU`: must execute locally or close to the
    /// submission point.
    Local,
    /// `exec_time > T_CPU`: suitable for remote execution.
    Remote,
}

/// One job of the synthetic moldable workload.
///
/// Mirrors the paper's characterization with the paper's own restrictions
/// baked in: `partition_size` is always 1 and `cancelable` always false in
/// generated traces, but both fields are kept so traces remain
/// forward-compatible with the paper's full model (its future-work item).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Unique id, dense from 0 within a trace.
    pub id: JobId,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Service demand in ticks at unit service rate. A resource with
    /// service rate `s` completes the job in `exec_time / s` ticks.
    pub exec_time: SimTime,
    /// User-supplied upper bound on `exec_time` (requested time); always
    /// `>= exec_time` in generated traces.
    pub requested_time: SimTime,
    /// Number of processors (always 1, per the paper).
    pub partition_size: u32,
    /// Whether the job may be cancelled (always false, per the paper).
    pub cancelable: bool,
    /// The benefit factor `u ∈ [2, 5]`: the job is successful iff its
    /// response time (completion − arrival) is at most `u · exec_time`.
    pub benefit_factor: f64,
    /// Index of the submission point (cluster) where the job arrives.
    pub submit_point: u32,
}

impl Job {
    /// LOCAL/REMOTE classification against the `T_CPU` threshold.
    #[inline]
    pub fn class(&self, t_cpu: SimTime) -> JobClass {
        if self.exec_time <= t_cpu {
            JobClass::Local
        } else {
            JobClass::Remote
        }
    }

    /// Maximum response time for the job to count as successful:
    /// `U_b = benefit_factor × exec_time`.
    #[inline]
    pub fn benefit_deadline(&self) -> SimTime {
        SimTime::from_f64(self.benefit_factor * self.exec_time.as_f64())
    }

    /// Absolute completion deadline: `arrival + U_b`.
    #[inline]
    pub fn absolute_deadline(&self) -> SimTime {
        self.arrival + self.benefit_deadline()
    }

    /// True if completing at `t` meets the benefit deadline.
    #[inline]
    pub fn meets_deadline(&self, completion: SimTime) -> bool {
        completion <= self.absolute_deadline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(exec: u64, u: f64) -> Job {
        Job {
            id: 0,
            arrival: SimTime::from_ticks(100),
            exec_time: SimTime::from_ticks(exec),
            requested_time: SimTime::from_ticks(exec * 2),
            partition_size: 1,
            cancelable: false,
            benefit_factor: u,
            submit_point: 0,
        }
    }

    #[test]
    fn classification_against_t_cpu() {
        let t_cpu = SimTime::from_ticks(700);
        assert_eq!(
            job(700, 2.0).class(t_cpu),
            JobClass::Local,
            "boundary is LOCAL"
        );
        assert_eq!(job(699, 2.0).class(t_cpu), JobClass::Local);
        assert_eq!(job(701, 2.0).class(t_cpu), JobClass::Remote);
    }

    #[test]
    fn benefit_deadline_math() {
        let j = job(100, 3.0);
        assert_eq!(j.benefit_deadline(), SimTime::from_ticks(300));
        assert_eq!(j.absolute_deadline(), SimTime::from_ticks(400));
        assert!(
            j.meets_deadline(SimTime::from_ticks(400)),
            "boundary succeeds"
        );
        assert!(!j.meets_deadline(SimTime::from_ticks(401)));
    }

    #[test]
    fn fractional_benefit_factor_rounds() {
        let j = job(100, 2.5);
        assert_eq!(j.benefit_deadline(), SimTime::from_ticks(250));
    }

    #[test]
    fn serde_roundtrip() {
        let j = job(123, 4.5);
        let s = serde_json::to_string(&j).unwrap();
        let back: Job = serde_json::from_str(&s).unwrap();
        assert_eq!(j, back);
    }
}
