//! Standard Workload Format (SWF) import/export.
//!
//! SWF is the archive format of the Parallel Workloads Archive — the same
//! supercomputer logs (SDSC SP2, CTC, …) the Cirne–Berman model the paper
//! cites was fitted to. Supporting it lets gridscale replay *real* traces
//! through the Grid simulator instead of (or alongside) synthetic ones.
//!
//! An SWF record is one line of 18 whitespace-separated fields; `;` lines
//! are header comments. The fields this simulator consumes:
//!
//! | # | field | use here |
//! |---|---|---|
//! | 1 | job number        | preserved order (ids re-densified) |
//! | 2 | submit time (s)   | arrival, scaled by `tick_per_second` |
//! | 4 | run time (s)      | execution demand |
//! | 5 | processors used   | partition size (paper restricts to 1) |
//! | 9 | requested time (s)| requested time (falls back to run time) |
//! | 11| status            | only completed (=1) jobs are imported |
//!
//! Fields the model doesn't define (benefit factor, submission point) are
//! drawn per job from the provided [`SwfOptions`], exactly as the
//! synthetic generator would.

use crate::job::Job;
use crate::trace::JobTrace;
use gridscale_desim::{SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Import options for SWF traces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwfOptions {
    /// Simulation ticks per SWF second.
    pub ticks_per_second: f64,
    /// Benefit factor range (paper Table 1: `[2, 5]`).
    pub benefit_range: (f64, f64),
    /// Number of submission points to scatter jobs over.
    pub submit_points: u32,
    /// Keep only jobs with `run time > 0` and completed status. SWF uses
    /// status 1 for completed; anything else is cancelled/failed.
    pub completed_only: bool,
    /// Import at most this many jobs (0 = unlimited).
    pub max_jobs: usize,
}

impl Default for SwfOptions {
    fn default() -> Self {
        SwfOptions {
            ticks_per_second: 1.0,
            benefit_range: (2.0, 5.0),
            submit_points: 1,
            completed_only: true,
            max_jobs: 0,
        }
    }
}

/// A problem encountered while parsing SWF text.
#[derive(Debug, Clone, PartialEq)]
pub struct SwfError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwfError {}

/// Parses SWF text into a [`JobTrace`].
///
/// Malformed data lines are errors; unknown header comments are ignored.
/// The result is sorted by arrival with dense ids (SWF guarantees neither).
pub fn parse_swf(text: &str, opts: &SwfOptions, rng: &mut SimRng) -> Result<JobTrace, SwfError> {
    assert!(opts.ticks_per_second > 0.0);
    assert!(opts.submit_points > 0);
    let mut jobs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 11 {
            return Err(SwfError {
                line: lineno + 1,
                message: format!("expected ≥11 fields, found {}", fields.len()),
            });
        }
        let num = |i: usize| -> Result<f64, SwfError> {
            fields[i].parse::<f64>().map_err(|_| SwfError {
                line: lineno + 1,
                message: format!("field {} ('{}') is not numeric", i + 1, fields[i]),
            })
        };
        let submit = num(1)?;
        let run_time = num(3)?;
        let procs = num(4)?;
        let requested = num(8)?;
        let status = num(10)? as i64;

        if opts.completed_only && status != 1 {
            continue;
        }
        if run_time <= 0.0 {
            continue;
        }
        let exec = SimTime::from_f64((run_time * opts.ticks_per_second).max(1.0));
        let req = if requested > 0.0 {
            SimTime::from_f64(requested * opts.ticks_per_second)
        } else {
            exec
        };
        let benefit = if opts.benefit_range.0 >= opts.benefit_range.1 {
            opts.benefit_range.0
        } else {
            rng.uniform(opts.benefit_range.0, opts.benefit_range.1)
        };
        jobs.push(Job {
            id: jobs.len() as u64,
            arrival: SimTime::from_f64((submit.max(0.0)) * opts.ticks_per_second),
            exec_time: exec,
            requested_time: req.max(exec),
            partition_size: (procs.max(1.0)) as u32,
            cancelable: false,
            benefit_factor: benefit,
            submit_point: rng.index(opts.submit_points as usize) as u32,
        });
        if opts.max_jobs > 0 && jobs.len() >= opts.max_jobs {
            break;
        }
    }
    Ok(JobTrace::from_unsorted(jobs))
}

/// Serializes a trace as SWF text (18 fields, `-1` for unknown columns),
/// with a short header documenting the unit conversion.
pub fn to_swf(trace: &JobTrace, ticks_per_second: f64) -> String {
    assert!(ticks_per_second > 0.0);
    let mut out = String::new();
    out.push_str("; SWF exported by gridscale\n");
    out.push_str(&format!("; UnitsPerSecond: {ticks_per_second}\n"));
    for j in trace.jobs() {
        let sec = |t: SimTime| (t.as_f64() / ticks_per_second).round() as i64;
        out.push_str(&format!(
            "{} {} -1 {} {} -1 -1 {} {} -1 1 -1 -1 -1 -1 -1 -1 -1\n",
            j.id + 1,
            sec(j.arrival),
            sec(j.exec_time),
            j.partition_size,
            j.partition_size,
            sec(j.requested_time),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{generate, WorkloadConfig};

    const SAMPLE: &str = "\
; SDSC-like sample header
; MaxJobs: 5
1 10 -1 300 1 -1 -1 1 600 -1 1 -1 -1 -1 -1 -1 -1 -1
2 20 -1 500 4 -1 -1 4 900 -1 1 -1 -1 -1 -1 -1 -1 -1
3 30 -1 100 1 -1 -1 1 150 -1 0 -1 -1 -1 -1 -1 -1 -1
4  5 -1 250 1 -1 -1 1 300 -1 1 -1 -1 -1 -1 -1 -1 -1
";

    #[test]
    fn parses_completed_jobs_sorted_with_dense_ids() {
        let mut rng = SimRng::new(1);
        let t = parse_swf(SAMPLE, &SwfOptions::default(), &mut rng).unwrap();
        // Job 3 (status 0) is dropped; job 4 (submit 5) sorts first.
        assert_eq!(t.len(), 3);
        let arr: Vec<u64> = t.jobs().iter().map(|j| j.arrival.ticks()).collect();
        assert_eq!(arr, vec![5, 10, 20]);
        let ids: Vec<u64> = t.jobs().iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(t.jobs()[0].exec_time.ticks(), 250);
        assert_eq!(t.jobs()[2].partition_size, 4);
        assert_eq!(t.jobs()[1].requested_time.ticks(), 600);
    }

    #[test]
    fn keeps_failed_jobs_when_asked() {
        let mut rng = SimRng::new(1);
        let opts = SwfOptions {
            completed_only: false,
            ..SwfOptions::default()
        };
        let t = parse_swf(SAMPLE, &opts, &mut rng).unwrap();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn tick_scaling_applies() {
        let mut rng = SimRng::new(1);
        let opts = SwfOptions {
            ticks_per_second: 10.0,
            ..SwfOptions::default()
        };
        let t = parse_swf(SAMPLE, &opts, &mut rng).unwrap();
        assert_eq!(t.jobs()[0].arrival.ticks(), 50);
        assert_eq!(t.jobs()[0].exec_time.ticks(), 2500);
    }

    #[test]
    fn max_jobs_caps_import() {
        let mut rng = SimRng::new(1);
        let opts = SwfOptions {
            max_jobs: 2,
            ..SwfOptions::default()
        };
        let t = parse_swf(SAMPLE, &opts, &mut rng).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        let bad = "; header\n1 10 -1 nonsense 1 -1 -1 1 600 -1 1\n";
        let mut rng = SimRng::new(1);
        let err = parse_swf(bad, &SwfOptions::default(), &mut rng).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("not numeric"));

        let short = "1 10 3\n";
        let err = parse_swf(short, &SwfOptions::default(), &mut rng).unwrap_err();
        assert!(err.message.contains("fields"));
    }

    #[test]
    fn roundtrip_through_swf_preserves_the_trace_shape() {
        let cfg = WorkloadConfig {
            arrival_rate: 0.05,
            duration: SimTime::from_ticks(10_000),
            ..WorkloadConfig::default()
        };
        let original = generate(&cfg, &mut SimRng::new(3));
        let text = to_swf(&original, 1.0);
        let opts = SwfOptions {
            benefit_range: (3.0, 3.0),
            ..SwfOptions::default()
        };
        let back = parse_swf(&text, &opts, &mut SimRng::new(4)).unwrap();
        assert_eq!(back.len(), original.len());
        for (a, b) in original.jobs().iter().zip(back.jobs()) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.exec_time, b.exec_time);
            assert_eq!(a.partition_size, b.partition_size);
        }
    }

    #[test]
    fn empty_and_comment_only_inputs() {
        let mut rng = SimRng::new(1);
        assert!(parse_swf("", &SwfOptions::default(), &mut rng)
            .unwrap()
            .is_empty());
        assert!(
            parse_swf("; nothing\n;\n", &SwfOptions::default(), &mut rng)
                .unwrap()
                .is_empty()
        );
    }
}
