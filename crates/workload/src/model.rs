//! Workload generation.

use crate::job::Job;
use crate::trace::JobTrace;
use gridscale_desim::{SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Service-demand (execution-time) distribution.
///
/// The default is log-uniform over `[50, 5000]` ticks: execution times in
/// supercomputer workloads span orders of magnitude with roughly uniform
/// log-density (Cirne–Berman), and this range straddles the paper's
/// `T_CPU = 700` threshold so the generated stream mixes LOCAL (~57%) and
/// REMOTE (~43%) jobs — both RMS code paths get exercised.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExecTimeModel {
    /// Uniform in log-space over `[lo, hi)` ticks.
    LogUniform {
        /// Lower bound (ticks), exclusive of zero.
        lo: f64,
        /// Upper bound (ticks).
        hi: f64,
    },
    /// `exp(N(mu, sigma))` ticks.
    LogNormal {
        /// Mean of the underlying normal (log-ticks).
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Bounded Pareto with tail index `alpha` on `[lo, hi]` ticks — the
    /// heavy-tail ablation.
    BoundedPareto {
        /// Tail index.
        alpha: f64,
        /// Lower bound (ticks).
        lo: f64,
        /// Upper bound (ticks).
        hi: f64,
    },
    /// Exponential with the given mean — the memoryless M/M/· validation
    /// case (not observed in supercomputer logs, but the right null model
    /// for queueing-theory checks).
    Exponential {
        /// Mean demand (ticks).
        mean: f64,
    },
    /// Every job demands exactly `ticks` — degenerate case for tests.
    Constant {
        /// The fixed demand.
        ticks: f64,
    },
}

impl Default for ExecTimeModel {
    fn default() -> Self {
        ExecTimeModel::LogUniform {
            lo: 50.0,
            hi: 5000.0,
        }
    }
}

impl ExecTimeModel {
    /// Analytic mean of the distribution (ticks) — schedulers use this as
    /// their demand estimate when computing approximate waiting times.
    pub fn mean(&self) -> f64 {
        match *self {
            ExecTimeModel::LogUniform { lo, hi } => (hi - lo) / (hi / lo).ln(),
            ExecTimeModel::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            ExecTimeModel::BoundedPareto { alpha, lo, hi } => {
                if (alpha - 1.0).abs() < 1e-9 {
                    // α → 1 limit of the closed form below.
                    lo * (hi / lo).ln() / (1.0 - lo / hi)
                } else {
                    // E[X] = α L^α (L^{1-α} − H^{1-α}) / ((α−1)(1 − (L/H)^α)).
                    alpha * lo.powf(alpha) * (lo.powf(1.0 - alpha) - hi.powf(1.0 - alpha))
                        / ((alpha - 1.0) * (1.0 - (lo / hi).powf(alpha)))
                }
            }
            ExecTimeModel::Exponential { mean } => mean,
            ExecTimeModel::Constant { ticks } => ticks,
        }
    }

    /// Draws one service demand (at least 1 tick).
    pub fn draw(&self, rng: &mut SimRng) -> SimTime {
        let t = match *self {
            ExecTimeModel::LogUniform { lo, hi } => rng.log_uniform(lo, hi),
            ExecTimeModel::LogNormal { mu, sigma } => rng.log_normal(mu, sigma),
            ExecTimeModel::BoundedPareto { alpha, lo, hi } => rng.bounded_pareto(alpha, lo, hi),
            ExecTimeModel::Exponential { mean } => rng.exponential(1.0 / mean),
            ExecTimeModel::Constant { ticks } => ticks,
        };
        SimTime::from_f64(t.max(1.0))
    }
}

/// Parameters of one synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Aggregate arrival rate in jobs per tick across all submission
    /// points. This is the paper's "Workload (number of jobs arriving per
    /// unit time)" scaling variable.
    pub arrival_rate: f64,
    /// Arrivals are generated on `[0, duration)`.
    pub duration: SimTime,
    /// Service-demand distribution.
    pub exec_time: ExecTimeModel,
    /// Requested time is `exec_time × factor`, factor uniform in this range
    /// (users over-estimate; `[1.2, 3.0]` is typical of supercomputer logs).
    pub overestimate: (f64, f64),
    /// Benefit factor `u` range; the paper's Table 1 gives `[2, 5]`.
    pub benefit_range: (f64, f64),
    /// Number of submission points (clusters); each arrival picks one
    /// uniformly at random.
    pub submit_points: u32,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            arrival_rate: 0.09,
            duration: SimTime::from_ticks(200_000),
            exec_time: ExecTimeModel::default(),
            overestimate: (1.2, 3.0),
            benefit_range: (2.0, 5.0),
            submit_points: 1,
        }
    }
}

impl WorkloadConfig {
    /// Returns a copy with the arrival rate multiplied by `k` — the
    /// "workload scaled in the same proportion as the scaling variable"
    /// step used in every experimental case.
    pub fn scaled_rate(&self, k: f64) -> WorkloadConfig {
        let mut c = self.clone();
        c.arrival_rate = self.arrival_rate * k;
        c
    }

    /// Expected number of jobs in a generated trace.
    pub fn expected_jobs(&self) -> f64 {
        self.arrival_rate * self.duration.as_f64()
    }
}

/// Generates a Poisson arrival stream under `cfg`.
///
/// Inter-arrival gaps are exponential with rate `cfg.arrival_rate`; each
/// job draws its demand, over-estimation factor, benefit factor, and
/// submission point independently. The result is sorted by arrival time and
/// ids are dense from 0.
pub fn generate(cfg: &WorkloadConfig, rng: &mut SimRng) -> JobTrace {
    assert!(cfg.arrival_rate > 0.0, "arrival rate must be positive");
    assert!(cfg.submit_points > 0, "need at least one submission point");
    assert!(cfg.overestimate.0 >= 1.0 && cfg.overestimate.0 <= cfg.overestimate.1);
    assert!(cfg.benefit_range.0 > 0.0 && cfg.benefit_range.0 <= cfg.benefit_range.1);

    let mut jobs = Vec::with_capacity(cfg.expected_jobs() as usize + 16);
    let mut t = 0.0f64;
    let mut id = 0;
    loop {
        t += rng.exponential(cfg.arrival_rate);
        // Compare the *rounded* arrival against the window: from_f64 rounds
        // to the nearest tick, so a fractional time just under the horizon
        // must not round up into (or past) it.
        if SimTime::from_f64(t) >= cfg.duration {
            break;
        }

        let exec = cfg.exec_time.draw(rng);
        let over = if cfg.overestimate.0 == cfg.overestimate.1 {
            cfg.overestimate.0
        } else {
            rng.uniform(cfg.overestimate.0, cfg.overestimate.1)
        };
        let benefit = if cfg.benefit_range.0 == cfg.benefit_range.1 {
            cfg.benefit_range.0
        } else {
            rng.uniform(cfg.benefit_range.0, cfg.benefit_range.1)
        };
        jobs.push(Job {
            id,
            arrival: SimTime::from_f64(t),
            exec_time: exec,
            requested_time: SimTime::from_f64(exec.as_f64() * over),
            partition_size: 1,
            cancelable: false,
            benefit_factor: benefit,
            submit_point: rng.index(cfg.submit_points as usize) as u32,
        });
        id += 1;
    }
    JobTrace::from_sorted(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(cfg: &WorkloadConfig, seed: u64) -> JobTrace {
        generate(cfg, &mut SimRng::new(seed))
    }

    #[test]
    fn job_count_near_expectation() {
        let cfg = WorkloadConfig::default();
        let trace = gen(&cfg, 1);
        let expect = cfg.expected_jobs();
        let n = trace.len() as f64;
        assert!(
            (n - expect).abs() < 4.0 * expect.sqrt(),
            "count {n} vs expected {expect}"
        );
    }

    #[test]
    fn arrivals_sorted_and_in_window() {
        let cfg = WorkloadConfig::default();
        let trace = gen(&cfg, 2);
        let jobs = trace.jobs();
        assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(jobs.iter().all(|j| j.arrival < cfg.duration));
        assert!(jobs.iter().all(|j| j.exec_time.ticks() >= 1));
    }

    #[test]
    fn ids_dense_from_zero() {
        let trace = gen(&WorkloadConfig::default(), 3);
        for (i, j) in trace.jobs().iter().enumerate() {
            assert_eq!(j.id, i as u64);
        }
    }

    #[test]
    fn paper_restrictions_hold() {
        let trace = gen(&WorkloadConfig::default(), 4);
        assert!(trace.jobs().iter().all(|j| j.partition_size == 1));
        assert!(trace.jobs().iter().all(|j| !j.cancelable));
        assert!(trace
            .jobs()
            .iter()
            .all(|j| (2.0..=5.0).contains(&j.benefit_factor)));
        assert!(trace.jobs().iter().all(|j| j.requested_time >= j.exec_time));
    }

    #[test]
    fn default_model_mixes_local_and_remote() {
        let trace = gen(&WorkloadConfig::default(), 5);
        let t_cpu = SimTime::from_ticks(700);
        let local = trace.local_count(t_cpu);
        let total = trace.len() as u64;
        let frac = local as f64 / total as f64;
        // Analytic fraction for log-uniform [50, 5000]: ln(700/50)/ln(100) ≈ 0.573.
        assert!((0.50..0.65).contains(&frac), "local fraction {frac}");
    }

    #[test]
    fn scaled_rate_scales_counts() {
        let base = WorkloadConfig {
            duration: SimTime::from_ticks(100_000),
            ..WorkloadConfig::default()
        };
        let n1 = gen(&base, 6).len() as f64;
        let n3 = gen(&base.scaled_rate(3.0), 6).len() as f64;
        assert!((n3 / n1 - 3.0).abs() < 0.25, "ratio {}", n3 / n1);
    }

    #[test]
    fn submit_points_all_used() {
        let cfg = WorkloadConfig {
            submit_points: 8,
            ..WorkloadConfig::default()
        };
        let trace = gen(&cfg, 7);
        let mut seen = [false; 8];
        for j in trace.jobs() {
            assert!(j.submit_point < 8);
            seen[j.submit_point as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "every submission point receives jobs"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = WorkloadConfig::default();
        assert_eq!(gen(&cfg, 42).jobs(), gen(&cfg, 42).jobs());
    }

    #[test]
    fn constant_model_is_constant() {
        let cfg = WorkloadConfig {
            exec_time: ExecTimeModel::Constant { ticks: 500.0 },
            ..WorkloadConfig::default()
        };
        let trace = gen(&cfg, 8);
        assert!(trace
            .jobs()
            .iter()
            .all(|j| j.exec_time == SimTime::from_ticks(500)));
    }

    #[test]
    fn analytic_means_match_empirical() {
        let models = [
            ExecTimeModel::LogUniform {
                lo: 50.0,
                hi: 5000.0,
            },
            ExecTimeModel::LogNormal {
                mu: 5.0,
                sigma: 0.8,
            },
            ExecTimeModel::BoundedPareto {
                alpha: 1.5,
                lo: 50.0,
                hi: 5000.0,
            },
            ExecTimeModel::Exponential { mean: 640.0 },
            ExecTimeModel::Constant { ticks: 321.0 },
        ];
        let mut rng = SimRng::new(77);
        for m in models {
            let n = 60_000;
            let emp: f64 = (0..n).map(|_| m.draw(&mut rng).as_f64()).sum::<f64>() / n as f64;
            let ana = m.mean();
            assert!(
                (emp - ana).abs() / ana < 0.05,
                "{m:?}: empirical {emp} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn bounded_pareto_mean_alpha_one_limit() {
        let near = ExecTimeModel::BoundedPareto {
            alpha: 1.0 + 1e-10,
            lo: 10.0,
            hi: 100.0,
        };
        let at = ExecTimeModel::BoundedPareto {
            alpha: 1.0,
            lo: 10.0,
            hi: 100.0,
        };
        assert!((near.mean() - at.mean()).abs() / at.mean() < 1e-3);
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        let cfg = WorkloadConfig {
            arrival_rate: 0.0,
            ..WorkloadConfig::default()
        };
        gen(&cfg, 9);
    }
}
