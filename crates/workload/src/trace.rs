//! Replayable job traces.

use crate::job::{Job, JobClass};
use gridscale_desim::SimTime;
use serde::{Deserialize, Serialize};

/// A workload trace: jobs sorted by arrival time with dense ids.
///
/// Traces are the interface between the workload generator and the Grid
/// simulator: the simulator schedules one arrival event per trace entry.
/// They serialize with serde so experiments can be archived and replayed.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct JobTrace {
    jobs: Vec<Job>,
}

/// Aggregate statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of jobs.
    pub count: usize,
    /// Total service demand (ticks at unit rate).
    pub total_demand: SimTime,
    /// Mean service demand.
    pub mean_demand: f64,
    /// Jobs classified LOCAL at the given `T_CPU`.
    pub local: u64,
    /// Jobs classified REMOTE at the given `T_CPU`.
    pub remote: u64,
    /// Arrival span (last arrival − first arrival).
    pub span: SimTime,
}

impl JobTrace {
    /// Wraps a pre-sorted job list. Panics (debug) if unsorted.
    pub fn from_sorted(jobs: Vec<Job>) -> Self {
        debug_assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        JobTrace { jobs }
    }

    /// Builds a trace from unsorted jobs, sorting by `(arrival, id)` and
    /// re-assigning dense ids in that order.
    pub fn from_unsorted(mut jobs: Vec<Job>) -> Self {
        jobs.sort_by_key(|j| (j.arrival, j.id));
        for (i, j) in jobs.iter_mut().enumerate() {
            j.id = i as u64;
        }
        JobTrace { jobs }
    }

    /// The jobs, in arrival order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if the trace has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Count of jobs LOCAL at threshold `t_cpu`.
    pub fn local_count(&self, t_cpu: SimTime) -> u64 {
        self.jobs
            .iter()
            .filter(|j| j.class(t_cpu) == JobClass::Local)
            .count() as u64
    }

    /// Total service demand across all jobs.
    pub fn total_demand(&self) -> SimTime {
        self.jobs.iter().map(|j| j.exec_time).sum()
    }

    /// Summary statistics at threshold `t_cpu`.
    pub fn summary(&self, t_cpu: SimTime) -> TraceSummary {
        let count = self.jobs.len();
        let total_demand = self.total_demand();
        let local = self.local_count(t_cpu);
        let span = match (self.jobs.first(), self.jobs.last()) {
            (Some(f), Some(l)) => l.arrival - f.arrival,
            _ => SimTime::ZERO,
        };
        TraceSummary {
            count,
            total_demand,
            mean_demand: if count == 0 {
                0.0
            } else {
                total_demand.as_f64() / count as f64
            },
            local,
            remote: count as u64 - local,
            span,
        }
    }

    /// Merges two traces into one (re-sorted, ids re-densified) — used to
    /// combine per-cluster streams.
    pub fn merge(mut self, other: JobTrace) -> JobTrace {
        self.jobs.extend(other.jobs);
        JobTrace::from_unsorted(self.jobs)
    }

    /// Keeps only jobs arriving before `cutoff` (exclusive).
    pub fn truncate_at(&mut self, cutoff: SimTime) {
        let keep = self.jobs.partition_point(|j| j.arrival < cutoff);
        self.jobs.truncate(keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(id: u64, arrival: u64, exec: u64) -> Job {
        Job {
            id,
            arrival: SimTime::from_ticks(arrival),
            exec_time: SimTime::from_ticks(exec),
            requested_time: SimTime::from_ticks(exec * 2),
            partition_size: 1,
            cancelable: false,
            benefit_factor: 3.0,
            submit_point: 0,
        }
    }

    #[test]
    fn from_unsorted_sorts_and_renumbers() {
        let t = JobTrace::from_unsorted(vec![mk(9, 30, 10), mk(3, 10, 20), mk(7, 20, 30)]);
        let arr: Vec<u64> = t.jobs().iter().map(|j| j.arrival.ticks()).collect();
        assert_eq!(arr, vec![10, 20, 30]);
        let ids: Vec<u64> = t.jobs().iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn summary_math() {
        let t = JobTrace::from_unsorted(vec![mk(0, 0, 100), mk(1, 50, 900), mk(2, 100, 500)]);
        let s = t.summary(SimTime::from_ticks(700));
        assert_eq!(s.count, 3);
        assert_eq!(s.total_demand, SimTime::from_ticks(1500));
        assert!((s.mean_demand - 500.0).abs() < 1e-12);
        assert_eq!(s.local, 2);
        assert_eq!(s.remote, 1);
        assert_eq!(s.span, SimTime::from_ticks(100));
    }

    #[test]
    fn empty_trace_summary() {
        let t = JobTrace::default();
        assert!(t.is_empty());
        let s = t.summary(SimTime::from_ticks(700));
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_demand, 0.0);
        assert_eq!(s.span, SimTime::ZERO);
    }

    #[test]
    fn merge_interleaves() {
        let a = JobTrace::from_unsorted(vec![mk(0, 10, 1), mk(1, 30, 1)]);
        let b = JobTrace::from_unsorted(vec![mk(0, 20, 1), mk(1, 40, 1)]);
        let m = a.merge(b);
        let arr: Vec<u64> = m.jobs().iter().map(|j| j.arrival.ticks()).collect();
        assert_eq!(arr, vec![10, 20, 30, 40]);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn truncate_at_cutoff() {
        let mut t = JobTrace::from_unsorted(vec![mk(0, 10, 1), mk(1, 20, 1), mk(2, 30, 1)]);
        t.truncate_at(SimTime::from_ticks(20));
        assert_eq!(t.len(), 1, "cutoff is exclusive");
        assert_eq!(t.jobs()[0].arrival.ticks(), 10);
    }

    #[test]
    fn serde_roundtrip() {
        let t = JobTrace::from_unsorted(vec![mk(0, 5, 10), mk(1, 6, 20)]);
        let s = serde_json::to_string(&t).unwrap();
        let back: JobTrace = serde_json::from_str(&s).unwrap();
        assert_eq!(t, back);
    }
}
