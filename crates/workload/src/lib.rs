//! # gridscale-workload
//!
//! Synthetic Grid workloads modelled on the parallel **moldable** workloads
//! of supercomputing environments (Cirne & Berman [22, 23] in the paper's
//! bibliography).
//!
//! The paper characterizes a job by *arrival instant, partition size,
//! execution time, requested time (an upper bound on execution time), and
//! job cancellation possibility*, then fixes **partition size = 1** and
//! **zero cancellation probability** (§3.1). Jobs are classified LOCAL if
//! their execution time is at most `T_CPU = 700` time units and REMOTE
//! otherwise (Table 1), and an execution is *successful* only if it
//! completes within the user-benefit deadline `U_b = u · exec_time` with
//! `u ~ U[2, 5]` (Table 1).
//!
//! This crate provides:
//! * [`Job`] — the job record with LOCAL/REMOTE classification and the
//!   benefit deadline;
//! * [`ExecTimeModel`] — the service-demand distributions (log-uniform
//!   default straddling `T_CPU`, plus log-normal / bounded-Pareto /
//!   constant variants for ablations);
//! * [`WorkloadConfig`] / [`generate`] — Poisson arrival streams over a set
//!   of submission points;
//! * [`JobTrace`] — a sorted, replayable trace with summary statistics and
//!   serde round-tripping.

#![warn(missing_docs)]

mod dag;
mod job;
mod model;
pub mod stats;
pub mod swf;
mod trace;

pub use dag::DependencyGraph;
pub use job::{Job, JobClass, JobId};
pub use model::{generate, ExecTimeModel, WorkloadConfig};
pub use stats::{analyze as analyze_trace, DistSummary, TraceStats};
pub use swf::{parse_swf, to_swf, SwfError, SwfOptions};
pub use trace::{JobTrace, TraceSummary};
