//! Job precedence constraints.
//!
//! The paper's future-work item (b): *"evaluating scenarios where jobs
//! have data dependencies and precedence constraints among them and use
//! the framework to measure the scalability based on the RP overhead
//! H(k)"*. This module provides the precedence structure; the simulator
//! releases a job only when all of its parents have completed and charges
//! the data-movement cost of each dependency edge to `H`.

use crate::job::JobId;
use gridscale_desim::SimRng;
use serde::{Deserialize, Serialize};

/// A DAG over the jobs of one trace, encoded as parent → child edges.
///
/// Acyclicity is guaranteed structurally: every edge must point from a
/// lower job id to a higher one (trace ids are assigned in arrival order,
/// so parents always precede children in time as well).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DependencyGraph {
    n: usize,
    edges: Vec<(JobId, JobId)>,
    /// children[j] = jobs that depend on j.
    children: Vec<Vec<u32>>,
    /// parent_count[j] = number of jobs j waits for.
    parent_count: Vec<u32>,
}

impl DependencyGraph {
    /// Builds a graph over `n` jobs from explicit edges.
    ///
    /// Returns an error string if any edge is out of range, self-referent,
    /// or points backward (which would allow cycles).
    pub fn new(n: usize, mut edges: Vec<(JobId, JobId)>) -> Result<Self, String> {
        edges.sort_unstable();
        edges.dedup();
        let mut children = vec![Vec::new(); n];
        let mut parent_count = vec![0u32; n];
        for &(p, c) in &edges {
            if p >= c {
                return Err(format!("edge {p} -> {c} is not forward (cycle risk)"));
            }
            if c as usize >= n {
                return Err(format!("edge {p} -> {c} exceeds job count {n}"));
            }
            children[p as usize].push(c as u32);
            parent_count[c as usize] += 1;
        }
        Ok(DependencyGraph {
            n,
            edges,
            children,
            parent_count,
        })
    }

    /// Random layered workflow structure: each job independently becomes a
    /// child of up to `max_parents` uniformly chosen earlier jobs with
    /// probability `edge_prob` per slot. Produces the fork/join-ish shapes
    /// of scientific workflows without long synthetic critical paths.
    pub fn random(n: usize, edge_prob: f64, max_parents: u32, rng: &mut SimRng) -> Self {
        assert!((0.0..=1.0).contains(&edge_prob));
        let mut edges = Vec::new();
        for c in 1..n {
            for _ in 0..max_parents {
                if rng.chance(edge_prob) {
                    // Prefer recent parents: dependencies in workflows are
                    // temporally local (outputs feed the next stage).
                    let window = (c).min(64);
                    let p = c - 1 - rng.index(window);
                    edges.push((p as JobId, c as JobId));
                }
            }
        }
        DependencyGraph::new(n, edges).expect("generated edges are forward by construction")
    }

    /// Number of jobs covered.
    pub fn job_count(&self) -> usize {
        self.n
    }

    /// All edges, sorted and deduplicated.
    pub fn edges(&self) -> &[(JobId, JobId)] {
        &self.edges
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The jobs that depend on `j`.
    pub fn children(&self, j: JobId) -> &[u32] {
        &self.children[j as usize]
    }

    /// How many parents `j` waits for.
    pub fn parent_count(&self, j: JobId) -> u32 {
        self.parent_count[j as usize]
    }

    /// A copy of the parent-count vector (the simulator's countdown state).
    pub fn parent_counts(&self) -> Vec<u32> {
        self.parent_count.clone()
    }

    /// Jobs with no parents — runnable immediately.
    pub fn roots(&self) -> impl Iterator<Item = JobId> + '_ {
        (0..self.n as JobId).filter(|&j| self.parent_count[j as usize] == 0)
    }

    /// Topological sanity: a valid schedule order exists (trivially true by
    /// construction, checked in debug builds and tests via Kahn's
    /// algorithm).
    pub fn is_acyclic(&self) -> bool {
        let mut indeg = self.parent_count.clone();
        let mut queue: Vec<u32> = (0..self.n as u32)
            .filter(|&j| indeg[j as usize] == 0)
            .collect();
        let mut seen = 0usize;
        while let Some(j) = queue.pop() {
            seen += 1;
            for &c in &self.children[j as usize] {
                indeg[c as usize] -= 1;
                if indeg[c as usize] == 0 {
                    queue.push(c);
                }
            }
        }
        seen == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_graph_bookkeeping() {
        let g = DependencyGraph::new(4, vec![(0, 2), (1, 2), (2, 3)]).unwrap();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.parent_count(2), 2);
        assert_eq!(g.parent_count(0), 0);
        assert_eq!(g.children(2), &[3]);
        assert_eq!(g.roots().collect::<Vec<_>>(), vec![0, 1]);
        assert!(g.is_acyclic());
    }

    #[test]
    fn rejects_backward_and_out_of_range_edges() {
        assert!(DependencyGraph::new(3, vec![(2, 1)]).is_err());
        assert!(DependencyGraph::new(3, vec![(1, 1)]).is_err());
        assert!(DependencyGraph::new(3, vec![(0, 5)]).is_err());
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = DependencyGraph::new(3, vec![(0, 1), (0, 1), (0, 2)]).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.parent_count(1), 1);
    }

    #[test]
    fn random_graph_is_valid_and_scaled_by_probability() {
        let mut rng = SimRng::new(42);
        let sparse = DependencyGraph::random(500, 0.1, 2, &mut rng);
        let dense = DependencyGraph::random(500, 0.8, 2, &mut rng);
        assert!(sparse.is_acyclic() && dense.is_acyclic());
        assert!(dense.edge_count() > 3 * sparse.edge_count());
        // Every job id in range.
        for &(p, c) in dense.edges() {
            assert!(p < c && (c as usize) < 500);
        }
    }

    #[test]
    fn zero_probability_means_no_edges() {
        let mut rng = SimRng::new(1);
        let g = DependencyGraph::random(100, 0.0, 3, &mut rng);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.roots().count(), 100);
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = SimRng::new(2);
        let g = DependencyGraph::random(50, 0.3, 2, &mut rng);
        let s = serde_json::to_string(&g).unwrap();
        let back: DependencyGraph = serde_json::from_str(&s).unwrap();
        assert_eq!(g, back);
    }
}
