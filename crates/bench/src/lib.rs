//! # gridscale-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper (see `DESIGN.md` §4 for the experiment index):
//!
//! * Tables 1–5 — the common-variable and per-case parameter tables;
//! * Figure 2 — `G(k)` under Case 1 (network-size scaling);
//! * Figure 3 — `G(k)` under Case 2 (service-rate scaling);
//! * Figure 4 — `G(k)` under Case 3 (estimator scaling);
//! * Figure 5 — `G(k)` under Case 4 (`L_p` scaling);
//! * Figures 6–7 — throughput and mean response time under Case 3.
//!
//! The `figures` binary drives full regenerations (`cargo run --release
//! -p gridscale-bench --bin figures -- all`); the Criterion benches under
//! `benches/` exercise one reduced version of each experiment path.

#![warn(missing_docs)]

pub mod calibrate;
pub mod chart;
pub mod render;
pub mod runner;

pub use runner::{run_case, CaseOutput, RunProfile};
