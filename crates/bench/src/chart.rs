//! Terminal line charts for the figure series.
//!
//! The paper presents its results as multi-series line plots; this module
//! renders the same series as compact ASCII charts so `figures --chart`
//! output can be eyeballed against the paper without leaving the terminal.

/// Chart geometry.
#[derive(Debug, Clone, Copy)]
pub struct ChartSpec {
    /// Plot-area width in columns.
    pub width: usize,
    /// Plot-area height in rows.
    pub height: usize,
}

impl Default for ChartSpec {
    fn default() -> Self {
        ChartSpec {
            width: 60,
            height: 16,
        }
    }
}

/// Marker glyphs assigned to series in order.
const MARKS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Renders multiple `(name, [(x, y)])` series into one ASCII chart with a
/// shared linear scale, a y-axis gutter, and a legend.
///
/// Overlapping points keep the earlier series' glyph. Empty input renders
/// an empty-chart notice.
pub fn render(title: &str, series: &[(String, Vec<(u32, f64)>)], spec: ChartSpec) -> String {
    assert!(spec.width >= 8 && spec.height >= 4);
    let points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|&(x, y)| (x as f64, y)))
        .collect();
    if points.is_empty() {
        return format!("{title}\n  (no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }
    // Anchor the y-axis at zero when the data is nonnegative — overhead
    // curves read better from the origin.
    if y_min > 0.0 && y_min < 0.5 * y_max {
        y_min = 0.0;
    }

    let mut grid = vec![vec![' '; spec.width]; spec.height];
    let col = |x: f64| -> usize {
        (((x - x_min) / (x_max - x_min)) * (spec.width - 1) as f64).round() as usize
    };
    let row = |y: f64| -> usize {
        let r = ((y - y_min) / (y_max - y_min)) * (spec.height - 1) as f64;
        spec.height - 1 - r.round() as usize
    };
    for (si, (_, pts)) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        // Linear interpolation between consecutive points for a connected
        // look.
        for w in pts.windows(2) {
            let (x0, y0) = (w[0].0 as f64, w[0].1);
            let (x1, y1) = (w[1].0 as f64, w[1].1);
            let steps = (col(x1).abs_diff(col(x0))).max(1);
            for s in 0..=steps {
                let t = s as f64 / steps as f64;
                let c = col(x0 + (x1 - x0) * t);
                let r = row(y0 + (y1 - y0) * t);
                if grid[r][c] == ' ' {
                    grid[r][c] = mark;
                }
            }
        }
        if pts.len() == 1 {
            let (x, y) = (pts[0].0 as f64, pts[0].1);
            let (r, c) = (row(y), col(x));
            if grid[r][c] == ' ' {
                grid[r][c] = mark;
            }
        }
    }

    let mut out = format!("{title}\n");
    for (i, line) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:>10.3e}")
        } else if i == spec.height - 1 {
            format!("{y_min:>10.3e}")
        } else {
            " ".repeat(10)
        };
        out.push_str(&format!("{label} |{}\n", line.iter().collect::<String>()));
    }
    out.push_str(&format!(
        "{} +{}\n{} {:<8.0}{:>width$.0}\n",
        " ".repeat(10),
        "-".repeat(spec.width),
        " ".repeat(10),
        x_min,
        x_max,
        width = spec.width - 8
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", MARKS[i % MARKS.len()], name))
        .collect();
    out.push_str(&format!("{} {}\n", " ".repeat(10), legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ChartSpec {
        ChartSpec {
            width: 40,
            height: 10,
        }
    }

    #[test]
    fn renders_axes_legend_and_marks() {
        let series = vec![
            ("UP".to_string(), vec![(1, 1.0), (2, 2.0), (3, 3.0)]),
            ("FLAT".to_string(), vec![(1, 2.0), (2, 2.0), (3, 2.0)]),
        ];
        let c = render("test chart", &series, spec());
        assert!(c.contains("test chart"));
        assert!(c.contains("* UP"));
        assert!(c.contains("o FLAT"));
        assert!(c.contains('|') && c.contains('+'));
        assert!(c.contains('*') && c.contains('o'));
    }

    #[test]
    fn monotone_series_fills_both_corners() {
        let series = vec![("X".to_string(), vec![(1, 0.0), (10, 100.0)])];
        let c = render("t", &series, spec());
        let rows: Vec<&str> = c.lines().filter(|l| l.contains('|')).collect();
        assert_eq!(rows.len(), 10);
        // Highest value appears on the top plot row, lowest on the bottom.
        assert!(rows.first().unwrap().contains('*'));
        assert!(rows.last().unwrap().contains('*'));
    }

    #[test]
    fn empty_input_is_graceful() {
        let c = render("nothing", &[], spec());
        assert!(c.contains("no data"));
        let c2 = render("empty series", &[("A".into(), vec![])], spec());
        assert!(c2.contains("no data"));
    }

    #[test]
    fn single_point_series_renders() {
        let series = vec![("P".to_string(), vec![(3, 5.0)])];
        let c = render("t", &series, spec());
        assert!(c.contains('*'));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let series = vec![("C".to_string(), vec![(1, 7.0), (2, 7.0)])];
        let c = render("t", &series, spec());
        assert!(c.contains('*'));
    }
}
