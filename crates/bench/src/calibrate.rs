//! Calibration probe: where does the base operating point sit?
//!
//! The paper holds `E(k0) ∈ [0.38, 0.42]`. Our cost model must make that
//! band *reachable* (see `OverheadCosts::overhead_weight`); this module
//! runs every model at selected scales with default enablers and reports
//! efficiency, success rate, and RMS bottleneck utilization, so the weight
//! can be re-derived if the cost constants change.

use gridscale_core::{config_for, CaseId, Preset};
use gridscale_gridsim::{run_simulation, SimReport};
use gridscale_rms::RmsKind;
use serde::Serialize;

/// One calibration observation.
#[derive(Debug, Clone, Serialize)]
pub struct CalPoint {
    /// Model name.
    pub kind: String,
    /// Scale factor.
    pub k: u32,
    /// Efficiency with default enablers.
    pub efficiency: f64,
    /// Success rate among trace jobs.
    pub success_rate: f64,
    /// Busiest scheduler's busy fraction.
    pub bottleneck: f64,
    /// Mean resource utilization.
    pub rp_utilization: f64,
    /// Raw (unweighted) G busy time.
    pub g_busy_raw: f64,
    /// Weighted G.
    pub g: f64,
    /// F.
    pub f: f64,
    /// Mean response time.
    pub mean_response: f64,
}

impl CalPoint {
    fn from_report(kind: RmsKind, k: u32, r: &SimReport) -> CalPoint {
        CalPoint {
            kind: kind.name().to_string(),
            k,
            efficiency: r.efficiency,
            success_rate: r.success_rate(),
            bottleneck: r.bottleneck_utilization(),
            rp_utilization: r.resource_utilization,
            g_busy_raw: r.g_busy_raw,
            g: r.g_overhead,
            f: r.f_work,
            mean_response: r.mean_response,
        }
    }
}

/// Runs the probe for one case over the given models and scales with
/// default enablers.
pub fn probe(
    case: CaseId,
    kinds: &[RmsKind],
    ks: &[u32],
    preset: Preset,
    seed: u64,
) -> Vec<CalPoint> {
    let mut out = Vec::new();
    for &kind in kinds {
        for &k in ks {
            let cfg = config_for(kind, case, k, preset, seed);
            let mut policy = kind.build();
            let r = run_simulation(&cfg, policy.as_mut());
            out.push(CalPoint::from_report(kind, k, &r));
        }
    }
    out
}

/// Sweeps the update interval τ for one `(model, case, k)` with everything
/// else at defaults — exposes the efficiency-vs-overhead frontier the
/// annealer walks.
pub fn probe_tau(
    kind: RmsKind,
    case: CaseId,
    k: u32,
    preset: Preset,
    seed: u64,
) -> Vec<(u64, CalPoint)> {
    let cfg = config_for(kind, case, k, preset, seed);
    let template = gridscale_gridsim::SimTemplate::new(&cfg);
    let mut out = Vec::new();
    for tau in [50u64, 100, 200, 400, 800, 1600, 3200, 6400, 12800] {
        let mut e = cfg.enablers;
        e.update_interval = tau;
        let mut policy = kind.build();
        let r = template.run(e, policy.as_mut());
        out.push((tau, CalPoint::from_report(kind, k, &r)));
    }
    out
}

/// Formats probe output as an aligned text table.
pub fn format_table(points: &[CalPoint]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<8} {:>2} {:>7} {:>7} {:>7} {:>7} {:>12} {:>12} {:>9}\n",
        "model", "k", "E", "succ", "bneck", "rp_u", "G_raw", "G", "resp"
    ));
    for p in points {
        s.push_str(&format!(
            "{:<8} {:>2} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>12.0} {:>12.0} {:>9.0}\n",
            p.kind,
            p.k,
            p.efficiency,
            p.success_rate,
            p.bottleneck,
            p.rp_utilization,
            p.g_busy_raw,
            p.g,
            p.mean_response
        ));
    }
    s
}
