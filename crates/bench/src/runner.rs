//! Full experiment execution per scaling case.

use gridscale_core::measure::measure_all;
use gridscale_core::{AnnealConfig, CaseId, MeasureOptions, Preset, ScalabilityCurve};
use gridscale_desim::SimTime;
use gridscale_rms::RmsKind;
use serde::{Deserialize, Serialize};

/// How big an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunProfile {
    /// Minutes-fast shape check: tiny horizons, k ∈ {1,2,3}, few SA steps.
    Smoke,
    /// The default: Quick preset, k = 1..6, moderate annealing.
    Quick,
    /// The paper's sizes (1000-node fixed networks).
    Paper,
}

impl RunProfile {
    /// Materializes measurement options for this profile.
    pub fn options(self, seed: u64) -> MeasureOptions {
        match self {
            RunProfile::Smoke => MeasureOptions {
                ks: vec![1, 2, 3],
                preset: Preset::Quick,
                anneal: AnnealConfig {
                    iterations: 10,
                    ..AnnealConfig::default()
                },
                duration_override: Some(SimTime::from_ticks(12_000)),
                drain_override: Some(SimTime::from_ticks(12_000)),
                seed,
                ..MeasureOptions::default()
            },
            RunProfile::Quick => MeasureOptions {
                ks: (1..=6).collect(),
                preset: Preset::Quick,
                anneal: AnnealConfig {
                    iterations: 40,
                    ..AnnealConfig::default()
                },
                seed,
                ..MeasureOptions::default()
            },
            RunProfile::Paper => MeasureOptions {
                ks: (1..=6).collect(),
                preset: Preset::Paper,
                anneal: AnnealConfig {
                    iterations: 48,
                    ..AnnealConfig::default()
                },
                seed,
                ..MeasureOptions::default()
            },
        }
    }
}

/// The measured curves of one case for all seven models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseOutput {
    /// Which case was run.
    pub case: CaseId,
    /// One curve per model, in [`RmsKind::ALL`] order.
    pub curves: Vec<ScalabilityCurve>,
}

/// Runs the full four-step measurement of `case` for all seven RMS models.
pub fn run_case(case: CaseId, profile: RunProfile, seed: u64) -> CaseOutput {
    let opts = profile.options(seed);
    let curves = measure_all(&RmsKind::ALL, case, &opts);
    CaseOutput { case, curves }
}

/// Runs `case` for a subset of models (used by the Criterion benches).
pub fn run_case_subset(
    case: CaseId,
    kinds: &[RmsKind],
    profile: RunProfile,
    seed: u64,
) -> CaseOutput {
    let opts = profile.options(seed);
    let curves = measure_all(kinds, case, &opts);
    CaseOutput { case, curves }
}
