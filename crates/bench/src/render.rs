//! Rendering measured curves as the paper's tables and figure series.

use crate::runner::CaseOutput;
use gridscale_core::{CaseId, ScalabilityCurve, VerdictConfidence};

/// Extracts one numeric series per model: `(name, [(k, value)])`.
pub fn series<F>(out: &CaseOutput, f: F) -> Vec<(String, Vec<(u32, f64)>)>
where
    F: Fn(&gridscale_core::CurvePoint) -> f64,
{
    out.curves
        .iter()
        .map(|c| {
            (
                c.kind.name().to_string(),
                c.points.iter().map(|p| (p.k, f(p))).collect(),
            )
        })
        .collect()
}

/// Formats per-model series as an aligned table with `k` rows.
pub fn format_series_table(
    title: &str,
    ylabel: &str,
    data: &[(String, Vec<(u32, f64)>)],
) -> String {
    let mut s = format!("## {title}\n   ({ylabel})\n\n");
    let ks: Vec<u32> = data
        .first()
        .map(|(_, pts)| pts.iter().map(|&(k, _)| k).collect())
        .unwrap_or_default();
    s.push_str(&format!("{:>4}", "k"));
    for (name, _) in data {
        s.push_str(&format!(" {name:>12}"));
    }
    s.push('\n');
    for (i, k) in ks.iter().enumerate() {
        s.push_str(&format!("{k:>4}"));
        for (_, pts) in data {
            let v = pts.get(i).map(|&(_, v)| v).unwrap_or(f64::NAN);
            s.push_str(&format!(" {v:>12.4}"));
        }
        s.push('\n');
    }
    s
}

/// Formats the per-model slope table (the paper's scalability measure).
pub fn format_slope_table(out: &CaseOutput) -> String {
    let mut s = String::from("   slopes of G(k) between consecutive scales\n\n");
    s.push_str(&format!("{:>9}", "interval"));
    for c in &out.curves {
        s.push_str(&format!(" {:>12}", c.kind.name()));
    }
    s.push('\n');
    let n = out
        .curves
        .first()
        .map(|c| c.points.len().saturating_sub(1))
        .unwrap_or(0);
    for i in 0..n {
        let (k0, k1) = {
            let pts = &out.curves[0].points;
            (pts[i].k, pts[i + 1].k)
        };
        s.push_str(&format!("{:>9}", format!("{k0}->{k1}")));
        for c in &out.curves {
            let v = c.g_slopes().get(i).copied().unwrap_or(f64::NAN);
            s.push_str(&format!(" {v:>12.1}"));
        }
        s.push('\n');
    }
    s
}

/// Formats the isoefficiency feasibility and Eq. (2) verdicts. Each
/// check renders as `k=K:Y+margin±ci`; a trailing `?` marks a *fragile*
/// verdict (the 95% CI of the margin straddles the `f(k) > c·g(k)`
/// boundary, so the boolean is within replication noise).
pub fn format_verdicts(out: &CaseOutput) -> String {
    let mut s = String::from("   Eq.(2) scalability condition f(k) > c*g(k)\n\n");
    for c in &out.curves {
        let v = c.verdict();
        let marks: Vec<String> = v
            .condition
            .iter()
            .zip(&v.margins)
            .zip(&v.margin_cis)
            .zip(&v.confidence)
            .map(|((((k, ok), (_, m)), (_, hw)), (_, conf))| {
                format!(
                    "k={k}:{}{:+.2}±{:.2}{}",
                    if *ok { "Y" } else { "N" },
                    m,
                    hw,
                    if *conf == VerdictConfidence::Fragile {
                        "?"
                    } else {
                        ""
                    }
                )
            })
            .collect();
        let feas: usize = c.points.iter().filter(|p| p.feasible).count();
        s.push_str(&format!(
            "{:<8} scalable_through={:<4} in_band={}/{} robust={}/{}  [{}]\n",
            c.kind.name(),
            v.scalable_through
                .map(|k| k.to_string())
                .unwrap_or_else(|| "-".into()),
            feas,
            c.points.len(),
            v.robust_count(),
            v.confidence.len(),
            marks.join(" ")
        ));
    }
    s
}

/// `G(k)` — Figures 2–5 depending on the case.
pub fn figure_g(out: &CaseOutput) -> String {
    let fig = match out.case {
        CaseId::NetworkSize => (
            "Figure 2",
            "Variation in G(k) on scaling the RP by number of nodes",
        ),
        CaseId::ServiceRate => (
            "Figure 3",
            "Variation in G(k) on scaling the RP by service rate",
        ),
        CaseId::Estimators => (
            "Figure 4",
            "Variation of G(k) on scaling the RMS by number of estimators",
        ),
        CaseId::Lp => ("Figure 5", "Variation in G(k) on scaling the RMS by L_p"),
        CaseId::Bandwidth => (
            "Figure 8",
            "Variation in G(k) on scaling the network by link bandwidth (extension case)",
        ),
    };
    let data = series(out, |p| p.g);
    let mut s = format_series_table(
        &format!("{} — {}", fig.0, fig.1),
        "G(k), overhead cost units",
        &data,
    );
    // Replicated measurements also carry dispersion: render the 95%
    // interval half-widths right under the means they qualify.
    if out
        .curves
        .iter()
        .any(|c| c.points.iter().any(|p| p.replications > 1))
    {
        s.push('\n');
        s.push_str(&format_series_table(
            "95% CI half-width of G(k)",
            "overhead cost units; Student-t over replications",
            &series(out, |p| p.g_ci),
        ));
    }
    s.push('\n');
    s.push_str(&format_slope_table(out));
    s.push('\n');
    s.push_str(&format_verdicts(out));
    s
}

/// Figure 6: throughput under estimator scaling (Case 3).
pub fn figure_throughput(out: &CaseOutput) -> String {
    assert_eq!(out.case, CaseId::Estimators, "Figure 6 is a Case-3 figure");
    let data = series(out, |p| p.report.throughput);
    format_series_table(
        "Figure 6 — Throughput obtained by scaling RMS by number of estimators",
        "jobs completed per tick",
        &data,
    )
}

/// Figure 7: mean response time under estimator scaling (Case 3).
pub fn figure_response(out: &CaseOutput) -> String {
    assert_eq!(out.case, CaseId::Estimators, "Figure 7 is a Case-3 figure");
    let data = series(out, |p| p.report.mean_response);
    format_series_table(
        "Figure 7 — Average response times obtained by scaling RMS by number of estimators",
        "mean response time, ticks",
        &data,
    )
}

/// Table 1: the common variables (paper values, which the simulator uses).
pub fn table1() -> String {
    let t = gridscale_gridsim::Thresholds::default();
    format!(
        "## Table 1 — Common variables used for all experiments\n\n\
         {:<12} {:<18} {}\n\
         {:<12} {:<18} Jobs with execution time <= T_CPU are LOCAL; greater are REMOTE.\n\
         {:<12} {:<18} Measurement for threshold load at a scheduler.\n\
         {:<12} {:<18} User benefit: success iff response <= u x run time, u ~ U[2,5].\n",
        "variable",
        "value",
        "meaning",
        "T_CPU",
        format!("{} time units", t.t_cpu.ticks()),
        "T_l",
        format!("{}", t.t_l),
        "U_b(jobid)",
        "u in [2,5]",
    )
}

/// Tables 2–5: the per-case scaling variables and enablers.
pub fn case_table(case: CaseId) -> String {
    let c = case.case();
    let (vars, title): (&[&str], _) = match case {
        CaseId::NetworkSize => (
            &[
                "Network size in nodes = sizeof[RMS] + sizeof[RP]",
                "Workload (jobs arriving per unit time)",
            ],
            "Table 2 — Case 1: Scaling the RP by network size (RMS grows proportionately)",
        ),
        CaseId::ServiceRate => (
            &[
                "Resource service rate (jobs executed per unit time)",
                "Workload (jobs arriving per unit time)",
            ],
            "Table 3 — Case 2: Scaling the RP by resource service rate",
        ),
        CaseId::Estimators => (
            &[
                "Number of status estimators",
                "Workload (jobs arriving per unit time)",
            ],
            "Table 4 — Case 3: Scaling the RMS by number of status estimators",
        ),
        CaseId::Lp => (
            &[
                "L_p: number of neighbor schedulers contacted for load balancing",
                "Workload (jobs arriving per unit time)",
            ],
            "Table 5 — Case 4: Scaling the RMS by L_p",
        ),
        CaseId::Bandwidth => (
            &[
                "Per-link bandwidth capacity (scaled down as 1/k)",
                "Workload (jobs arriving per unit time)",
            ],
            "Table 6 — Case 5: Scaling the network by link bandwidth (extension)",
        ),
    };
    let mut s = format!("## {title}\n\nScaling variables:\n");
    for v in vars {
        s.push_str(&format!("  - {v}\n"));
    }
    s.push_str("\nScaling enablers (tuned by simulated annealing):\n");
    let sp = &c.enabler_space;
    if !sp.update_interval.is_empty() {
        s.push_str(&format!(
            "  - Status update interval: {:?}\n",
            sp.update_interval
        ));
    }
    if !sp.neighborhood.is_empty() {
        s.push_str(&format!(
            "  - Neighborhood set size: {:?}\n",
            sp.neighborhood
        ));
    }
    if !sp.volunteer_interval.is_empty() {
        s.push_str(&format!(
            "  - Interval for resource volunteering: {:?}\n",
            sp.volunteer_interval
        ));
    }
    if !sp.link_delay_factor.is_empty() {
        s.push_str(&format!(
            "  - Network link delay factor: {:?}\n",
            sp.link_delay_factor
        ));
    }
    s
}

/// Serializes a case output as pretty JSON (for archival/EXPERIMENTS.md).
pub fn to_json(out: &CaseOutput) -> String {
    serde_json::to_string_pretty(out).expect("CaseOutput serializes")
}

/// Restores a case output from JSON.
pub fn from_json(s: &str) -> Result<CaseOutput, serde_json::Error> {
    serde_json::from_str(s)
}

/// Quick textual sanity summary of a single curve (used in tests).
pub fn summarize_curve(c: &ScalabilityCurve) -> String {
    format!(
        "{} case{}: G = {:?}",
        c.kind.name(),
        c.case.number(),
        c.points.iter().map(|p| p.g.round()).collect::<Vec<_>>()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridscale_core::{CurvePoint, ScalabilityCurve};
    use gridscale_gridsim::{Enablers, SimReport};
    use gridscale_rms::RmsKind;

    fn fake_point(k: u32, g: f64) -> CurvePoint {
        CurvePoint {
            k,
            g,
            f: 100.0 * k as f64,
            h: 1.0,
            efficiency: 0.4,
            g_ci: 0.0,
            f_ci: 0.0,
            h_ci: 0.0,
            efficiency_ci: 0.0,
            feasible: true,
            enablers: Enablers::default(),
            evaluations: 1,
            replications: 1,
            report: SimReport {
                throughput: 0.1 * k as f64,
                mean_response: 1000.0 / k as f64,
                ..SimReport::default()
            },
        }
    }

    fn fake_output(case: CaseId) -> CaseOutput {
        CaseOutput {
            case,
            curves: vec![ScalabilityCurve {
                kind: RmsKind::Central,
                case,
                e0: 0.4,
                points: vec![fake_point(1, 10.0), fake_point(2, 30.0)],
            }],
        }
    }

    #[test]
    fn series_extraction() {
        let out = fake_output(CaseId::NetworkSize);
        let s = series(&out, |p| p.g);
        assert_eq!(s[0].0, "CENTRAL");
        assert_eq!(s[0].1, vec![(1, 10.0), (2, 30.0)]);
    }

    #[test]
    fn figure_g_contains_models_and_slopes() {
        let out = fake_output(CaseId::NetworkSize);
        let fig = figure_g(&out);
        assert!(fig.contains("Figure 2"));
        assert!(fig.contains("CENTRAL"));
        assert!(fig.contains("1->2"));
        assert!(fig.contains("20.0"), "slope (30-10)/1 = 20 shown");
    }

    #[test]
    fn figure6_and_7_require_case3() {
        let out = fake_output(CaseId::Estimators);
        assert!(figure_throughput(&out).contains("Figure 6"));
        assert!(figure_response(&out).contains("Figure 7"));
    }

    #[test]
    #[should_panic]
    fn figure6_rejects_wrong_case() {
        figure_throughput(&fake_output(CaseId::NetworkSize));
    }

    #[test]
    fn tables_render() {
        let t1 = table1();
        assert!(t1.contains("T_CPU") && t1.contains("700"));
        for case in CaseId::ALL {
            let t = case_table(case);
            assert!(t.contains("Scaling variables"));
            assert!(t.contains("Status update interval"));
        }
        assert!(case_table(CaseId::Lp).contains("volunteering"));
    }

    #[test]
    fn replicated_output_renders_cis_and_confidence() {
        let mut out = fake_output(CaseId::NetworkSize);
        for p in &mut out.curves[0].points {
            p.replications = 4;
            p.g_ci = 0.5;
        }
        let fig = figure_g(&out);
        assert!(fig.contains("95% CI half-width of G(k)"));
        let v = format_verdicts(&out);
        assert!(v.contains("±"), "margins must carry their CI: {v}");
        assert!(v.contains("robust="), "verdict lines count robust checks");
        // Unreplicated output keeps the compact figure (no CI table).
        let plain = figure_g(&fake_output(CaseId::NetworkSize));
        assert!(!plain.contains("95% CI half-width"));
    }

    #[test]
    fn json_roundtrip() {
        let out = fake_output(CaseId::Lp);
        let j = to_json(&out);
        let back = from_json(&j).unwrap();
        assert_eq!(back.curves[0].points[1].g, 30.0);
    }
}
