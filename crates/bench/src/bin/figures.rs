//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures <target> [--smoke|--quick|--paper] [--seed N] [--out DIR]
//!
//! targets: table1 table2 table3 table4 table5
//!          fig2 fig3 fig4 fig5 fig6 fig7
//!          all        (every table and figure)
//!          calibrate  (default-enabler probe across models/scales)
//! ```
//!
//! Figure runs print the series the paper plots and, with `--out`, write
//! the raw measured curves as JSON for archival.

use gridscale_bench::runner::{run_case, RunProfile};
use gridscale_bench::{calibrate, chart, render};
use gridscale_core::{CaseId, Preset};
use gridscale_rms::RmsKind;
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: figures <table1..5|fig2..7|all|calibrate> [--smoke|--quick|--paper] [--seed N] [--out DIR]");
        std::process::exit(2);
    }
    let target = args[0].as_str();
    let mut profile = RunProfile::Quick;
    let mut seed = 0x15_0EFFu64;
    let mut out_dir: Option<String> = None;
    let mut charts = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => profile = RunProfile::Smoke,
            "--quick" => profile = RunProfile::Quick,
            "--paper" => profile = RunProfile::Paper,
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--out" => {
                i += 1;
                out_dir = Some(args[i].clone());
            }
            "--chart" => charts = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Which cases does the chosen target need?
    let needed: Vec<CaseId> = match target {
        "fig2" => vec![CaseId::NetworkSize],
        "fig3" => vec![CaseId::ServiceRate],
        "fig4" | "fig6" | "fig7" => vec![CaseId::Estimators],
        "fig5" => vec![CaseId::Lp],
        "all" => CaseId::ALL.to_vec(),
        _ => vec![],
    };

    match target {
        "table1" => print!("{}", render::table1()),
        "table2" => print!("{}", render::case_table(CaseId::NetworkSize)),
        "table3" => print!("{}", render::case_table(CaseId::ServiceRate)),
        "table4" => print!("{}", render::case_table(CaseId::Estimators)),
        "table5" => print!("{}", render::case_table(CaseId::Lp)),
        "ablation-topology" => {
            // DESIGN.md ablation: is the Fig. 2 substrate sensitive to the
            // Mercator-substitute topology family?
            use gridscale_gridsim::{SimTemplate, TopologySpec};
            println!("topology-family ablation: LOWEST, case 1, k = 2, default enablers\n");
            println!(
                "{:>16} {:>8} {:>8} {:>12} {:>9}",
                "family", "E", "succ%", "G", "resp"
            );
            for (name, spec) in [
                ("barabasi_albert", TopologySpec::BarabasiAlbert { m: 2 }),
                (
                    "waxman",
                    TopologySpec::Waxman {
                        alpha: 0.25,
                        beta: 0.4,
                    },
                ),
                ("transit_stub", TopologySpec::TransitStub),
            ] {
                let mut cfg = gridscale_core::config_for(
                    RmsKind::Lowest,
                    CaseId::NetworkSize,
                    2,
                    Preset::Quick,
                    seed,
                );
                cfg.topology = spec;
                let template = SimTemplate::new(&cfg);
                let mut policy = RmsKind::Lowest.build();
                let r = template.run(cfg.enablers, policy.as_mut());
                println!(
                    "{:>16} {:>8.3} {:>8.1} {:>12.3e} {:>9.0}",
                    name,
                    r.efficiency,
                    100.0 * r.success_rate(),
                    r.g_overhead,
                    r.mean_response
                );
            }
            println!("\nShape argument (DESIGN.md §2): the RMS comparison depends on\nhop/latency distributions, which all three families provide.");
        }
        "calibrate-tau" => {
            for kind in [RmsKind::Central, RmsKind::Lowest, RmsKind::Auction] {
                for k in [1u32, 6] {
                    println!("=== tau sweep: {} case1 k={k} ===", kind.name());
                    let pts =
                        calibrate::probe_tau(kind, CaseId::NetworkSize, k, Preset::Quick, seed);
                    println!(
                        "{:>6} {:>7} {:>7} {:>12} {:>9}",
                        "tau", "E", "succ", "G", "resp"
                    );
                    for (tau, p) in pts {
                        println!(
                            "{:>6} {:>7.3} {:>7.3} {:>12.0} {:>9.0}",
                            tau, p.efficiency, p.success_rate, p.g, p.mean_response
                        );
                    }
                    println!();
                }
            }
        }
        "calibrate" => {
            let preset = match profile {
                RunProfile::Paper => Preset::Paper,
                _ => Preset::Quick,
            };
            for case in CaseId::ALL {
                println!(
                    "=== calibration probe: case {} ({:?}) ===",
                    case.number(),
                    preset
                );
                let pts = calibrate::probe(case, &RmsKind::ALL, &[1, 3, 6], preset, seed);
                print!("{}", calibrate::format_table(&pts));
                println!();
            }
        }
        "fig2" | "fig3" | "fig4" | "fig5" | "fig6" | "fig7" | "all" => {
            let mut outputs = HashMap::new();
            for case in needed {
                eprintln!("running case {} ({:?} profile)…", case.number(), profile);
                let t0 = std::time::Instant::now();
                let out = run_case(case, profile, seed);
                eprintln!(
                    "case {} done in {:.1}s",
                    case.number(),
                    t0.elapsed().as_secs_f64()
                );
                if let Some(dir) = &out_dir {
                    std::fs::create_dir_all(dir).expect("create out dir");
                    let path = format!("{dir}/case{}.json", out.case.number());
                    std::fs::write(&path, render::to_json(&out)).expect("write JSON");
                    eprintln!("wrote {path}");
                }
                outputs.insert(out.case, out);
            }
            let chart_for =
                |out: &gridscale_bench::runner::CaseOutput,
                 title: &str,
                 f: &dyn Fn(&gridscale_core::CurvePoint) -> f64| {
                    if charts {
                        let data = render::series(out, f);
                        println!(
                            "{}",
                            chart::render(title, &data, chart::ChartSpec::default())
                        );
                    }
                };
            let print_for = |tgt: &str| match tgt {
                "fig2" => print!("{}", render::figure_g(&outputs[&CaseId::NetworkSize])),
                "fig3" => print!("{}", render::figure_g(&outputs[&CaseId::ServiceRate])),
                "fig4" => print!("{}", render::figure_g(&outputs[&CaseId::Estimators])),
                "fig5" => print!("{}", render::figure_g(&outputs[&CaseId::Lp])),
                "fig6" => print!(
                    "{}",
                    render::figure_throughput(&outputs[&CaseId::Estimators])
                ),
                "fig7" => print!("{}", render::figure_response(&outputs[&CaseId::Estimators])),
                _ => unreachable!(),
            };
            let chart_print = |tgt: &str| match tgt {
                "fig2" => chart_for(&outputs[&CaseId::NetworkSize], "G(k), case 1", &|p| p.g),
                "fig3" => chart_for(&outputs[&CaseId::ServiceRate], "G(k), case 2", &|p| p.g),
                "fig4" => chart_for(&outputs[&CaseId::Estimators], "G(k), case 3", &|p| p.g),
                "fig5" => chart_for(&outputs[&CaseId::Lp], "G(k), case 4", &|p| p.g),
                "fig6" => chart_for(&outputs[&CaseId::Estimators], "throughput, case 3", &|p| {
                    p.report.throughput
                }),
                "fig7" => chart_for(
                    &outputs[&CaseId::Estimators],
                    "mean response, case 3",
                    &|p| p.report.mean_response,
                ),
                _ => unreachable!(),
            };
            if target == "all" {
                print!("{}", render::table1());
                println!();
                for case in CaseId::ALL {
                    print!("{}", render::case_table(case));
                    println!();
                }
                for f in ["fig2", "fig3", "fig4", "fig5", "fig6", "fig7"] {
                    print_for(f);
                    chart_print(f);
                    println!();
                }
            } else {
                print_for(target);
                chart_print(target);
            }
        }
        other => {
            eprintln!("unknown target {other}");
            std::process::exit(2);
        }
    }
}
