//! Replay benchmark: clone-per-run world rebuilding vs zero-clone
//! shared-template replay of the same simulation point.
//!
//! The annealer evaluates dozens of enabler settings per `(model, k)`
//! point. The baseline here does what a naive driver would — rebuild the
//! world (topology, routing tables, grid map, workload trace) for every
//! run via `run_simulation`. The replay arm reuses one [`SimTemplate`]:
//! the world is `Arc`-shared and the event queue + hot-state arena are
//! recycled, so each run only pays for event processing. Throughput is
//! reported in events/sec (criterion `Elements` = DES events per run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gridscale_desim::SimTime;
use gridscale_gridsim::{run_simulation, GridConfig, SimTemplate};
use gridscale_rms::RmsKind;
use gridscale_workload::WorkloadConfig;
use std::hint::black_box;

/// One scaled simulation point: `k` multiplies the pool size and the
/// offered load together, as in the paper's Case 1 sweep.
fn point(k: usize) -> GridConfig {
    let nodes = 20 * k;
    GridConfig {
        nodes,
        schedulers: (nodes / 10).max(2),
        estimators: 0,
        workload: WorkloadConfig {
            arrival_rate: 0.012 * k as f64,
            duration: SimTime::from_ticks(3_000),
            ..WorkloadConfig::default()
        },
        drain: SimTime::from_ticks(5_000),
        seed: 0xBEEF + k as u64,
        ..GridConfig::default()
    }
}

fn bench_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_replay");
    g.sample_size(10);
    for &k in &[1usize, 4, 16] {
        let cfg = point(k);
        let template = SimTemplate::new(&cfg);
        // Warm-up run: fixes the events-per-run denominator (identical for
        // both arms — reports are bit-identical) and primes the pools.
        let events = template
            .run(cfg.enablers, RmsKind::Lowest.build().as_mut())
            .events_processed;
        g.throughput(Throughput::Elements(events));

        g.bench_with_input(BenchmarkId::new("clone_per_run", k), &k, |b, _| {
            b.iter(|| {
                let mut p = RmsKind::Lowest.build();
                black_box(run_simulation(black_box(&cfg), p.as_mut()))
            })
        });
        g.bench_with_input(BenchmarkId::new("shared_template_replay", k), &k, |b, _| {
            b.iter(|| {
                let mut p = RmsKind::Lowest.build();
                black_box(template.run(black_box(cfg.enablers), p.as_mut()))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
