//! One Criterion bench per paper table and figure.
//!
//! Each figure bench runs a reduced-size version of the exact pipeline the
//! `figures` binary uses for the full regeneration (same code path:
//! `resolve_e0` → `tune_point` → rendering), so regressions in any
//! experiment's cost show up here. The table benches time the parameter
//! -table rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use gridscale_bench::render;
use gridscale_core::{resolve_e0, tune_point, AnnealConfig, CaseId, MeasureOptions, Preset};
use gridscale_desim::SimTime;
use gridscale_rms::RmsKind;
use std::hint::black_box;

/// Reduced measurement options shared by the figure benches.
fn bench_opts() -> MeasureOptions {
    MeasureOptions {
        ks: vec![1, 2],
        preset: Preset::Quick,
        anneal: AnnealConfig {
            iterations: 4,
            ..AnnealConfig::default()
        },
        duration_override: Some(SimTime::from_ticks(6_000)),
        drain_override: Some(SimTime::from_ticks(6_000)),
        threads: 1,
        ..MeasureOptions::default()
    }
}

/// One tuned point of the given case — the unit of work behind each
/// G(k)-figure.
fn tune_one(case: CaseId, kind: RmsKind) {
    let opts = bench_opts();
    let e0 = resolve_e0(kind, case, &opts);
    let p = tune_point(kind, case, 2, e0, &opts);
    black_box(p);
}

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table1/render", |b| b.iter(|| black_box(render::table1())));
    for case in CaseId::ALL {
        c.bench_function(format!("table{}/render", case.number() + 1), |b| {
            b.iter(|| black_box(render::case_table(case)))
        });
    }
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_network_size");
    g.sample_size(10);
    g.bench_function("tune_point/LOWEST", |b| {
        b.iter(|| tune_one(CaseId::NetworkSize, RmsKind::Lowest))
    });
    g.bench_function("tune_point/CENTRAL", |b| {
        b.iter(|| tune_one(CaseId::NetworkSize, RmsKind::Central))
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_service_rate");
    g.sample_size(10);
    g.bench_function("tune_point/CENTRAL", |b| {
        b.iter(|| tune_one(CaseId::ServiceRate, RmsKind::Central))
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_estimators");
    g.sample_size(10);
    g.bench_function("tune_point/AUCTION", |b| {
        b.iter(|| tune_one(CaseId::Estimators, RmsKind::Auction))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_lp");
    g.sample_size(10);
    g.bench_function("tune_point/RESERVE", |b| {
        b.iter(|| tune_one(CaseId::Lp, RmsKind::Reserve))
    });
    g.finish();
}

fn bench_fig6_fig7(c: &mut Criterion) {
    // Figures 6 and 7 read throughput / response series off the Case-3
    // measurement; the unit of work is the same tuned point plus series
    // extraction and rendering.
    let mut g = c.benchmark_group("fig6_fig7_throughput_response");
    g.sample_size(10);
    g.bench_function("tune_and_render/Sy-I", |b| {
        b.iter(|| {
            let opts = bench_opts();
            let kind = RmsKind::Symmetric;
            let case = CaseId::Estimators;
            let e0 = resolve_e0(kind, case, &opts);
            let p = tune_point(kind, case, 2, e0, &opts);
            black_box((p.report.throughput, p.report.mean_response))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tables,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6_fig7
);
criterion_main!(benches);
