//! Dispatch benchmark: `&mut dyn Policy` virtual calls vs the statically
//! dispatched [`RmsPolicy`] enum on a replay-heavy workload.
//!
//! Both arms run the identical zero-clone shared-template replay, so the
//! only difference is how the simulator reaches the policy callbacks: a
//! vtable indirection per event (dyn) or a direct, inlinable call behind
//! one enum branch (enum). The paper's tuning procedure replays the same
//! point thousands of times, which is what makes this delta worth
//! measuring. Reports are asserted bit-identical across arms; throughput
//! is events/sec (criterion `Elements` = DES events per run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gridscale_desim::SimTime;
use gridscale_gridsim::{GridConfig, SimTemplate};
use gridscale_rms::RmsKind;
use gridscale_workload::WorkloadConfig;
use std::hint::black_box;

/// One scaled simulation point: `k` multiplies the pool size and the
/// offered load together, as in the paper's Case 1 sweep.
fn point(k: usize) -> GridConfig {
    let nodes = 20 * k;
    GridConfig {
        nodes,
        schedulers: (nodes / 10).max(2),
        estimators: 0,
        workload: WorkloadConfig {
            arrival_rate: 0.012 * k as f64,
            duration: SimTime::from_ticks(3_000),
            ..WorkloadConfig::default()
        },
        drain: SimTime::from_ticks(5_000),
        seed: 0xBEEF + k as u64,
        ..GridConfig::default()
    }
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_dispatch");
    g.sample_size(10);
    let kind = RmsKind::Lowest;
    for &k in &[1usize, 4, 16] {
        let cfg = point(k);
        let template = SimTemplate::new(&cfg);
        // Warm-up run: fixes the events-per-run denominator and primes the
        // pools; both arms must reproduce this count bit-for-bit.
        let events = template
            .run(cfg.enablers, kind.build().as_mut())
            .events_processed;
        {
            let mut p = kind.build_static();
            assert_eq!(
                template.run(cfg.enablers, &mut p).events_processed,
                events,
                "enum dispatch diverged from dyn dispatch"
            );
        }
        g.throughput(Throughput::Elements(events));

        g.bench_with_input(BenchmarkId::new("dyn", k), &k, |b, _| {
            b.iter(|| {
                let mut p = kind.build();
                black_box(template.run(black_box(cfg.enablers), p.as_mut()))
            })
        });
        g.bench_with_input(BenchmarkId::new("enum", k), &k, |b, _| {
            b.iter(|| {
                let mut p = kind.build_static();
                black_box(template.run(black_box(cfg.enablers), &mut p))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
