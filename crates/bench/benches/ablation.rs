//! Ablation benches for the design choices DESIGN.md calls out:
//! update suppression, annealing vs exhaustive search, topology family,
//! and modelled-vs-negligible RP overhead `H(k)`.

use criterion::{criterion_group, criterion_main, Criterion};
use gridscale_core::{config_for, CaseId, Preset};
use gridscale_desim::SimTime;
use gridscale_gridsim::{SimTemplate, TopologySpec};
use gridscale_rms::RmsKind;
use std::hint::black_box;

fn small_template(
    kind: RmsKind,
    mutate: impl FnOnce(&mut gridscale_gridsim::GridConfig),
) -> SimTemplate {
    let mut cfg = config_for(kind, CaseId::NetworkSize, 2, Preset::Quick, 5);
    cfg.workload.duration = SimTime::from_ticks(12_000);
    cfg.drain = SimTime::from_ticks(10_000);
    mutate(&mut cfg);
    SimTemplate::new(&cfg)
}

/// Suppression on (paper behaviour) vs off: how much scheduler work does
/// the "update might be suppressed" optimization save?
fn bench_suppression(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/suppression");
    g.sample_size(10);
    let on = small_template(RmsKind::Central, |_| {});
    let off = small_template(RmsKind::Central, |cfg| cfg.thresholds.suppress_delta = 0.0);
    g.bench_function("on", |b| {
        b.iter(|| {
            let mut p = RmsKind::Central.build();
            black_box(on.run(on.config().enablers, p.as_mut()))
        })
    });
    g.bench_function("off", |b| {
        b.iter(|| {
            let mut p = RmsKind::Central.build();
            black_box(off.run(off.config().enablers, p.as_mut()))
        })
    });
    g.finish();
}

/// Topology-family sensitivity of the Case-1 experiment substrate.
fn bench_topology_family(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/topology");
    g.sample_size(10);
    for (name, spec) in [
        ("barabasi_albert", TopologySpec::BarabasiAlbert { m: 2 }),
        (
            "waxman",
            TopologySpec::Waxman {
                alpha: 0.25,
                beta: 0.4,
            },
        ),
        ("transit_stub", TopologySpec::TransitStub),
    ] {
        let t = small_template(RmsKind::Lowest, |cfg| cfg.topology = spec);
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut p = RmsKind::Lowest.build();
                black_box(t.run(t.config().enablers, p.as_mut()))
            })
        });
    }
    g.finish();
}

/// Modelled RP overhead vs the paper's "H(k) negligible" assumption.
fn bench_h_modelled(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/rp_overhead");
    g.sample_size(10);
    let negligible = small_template(RmsKind::Lowest, |cfg| cfg.costs.rp_job_control = 0.0);
    let modelled = small_template(RmsKind::Lowest, |cfg| cfg.costs.rp_job_control = 2.0);
    g.bench_function("negligible", |b| {
        b.iter(|| {
            let mut p = RmsKind::Lowest.build();
            black_box(negligible.run(negligible.config().enablers, p.as_mut()))
        })
    });
    g.bench_function("modelled", |b| {
        b.iter(|| {
            let mut p = RmsKind::Lowest.build();
            black_box(modelled.run(modelled.config().enablers, p.as_mut()))
        })
    });
    g.finish();
}

/// Annealing vs exhaustive grid search over one enabler dimension: the SA
/// tuner must be much cheaper than scanning the τ grid while finding a
/// comparable optimum (checked in tests; timed here).
fn bench_anneal_vs_grid(c: &mut Criterion) {
    use gridscale_core::anneal::{anneal, AnnealConfig};
    let mut g = c.benchmark_group("ablation/tuning");
    g.sample_size(10);
    let template = small_template(RmsKind::SenderInit, |_| {});
    let taus = [50u64, 100, 200, 400, 800, 1600, 3200];
    let eval = |tau: u64| {
        let mut e = template.config().enablers;
        e.update_interval = tau;
        let mut p = RmsKind::SenderInit.build();
        template.run(e, p.as_mut()).g_overhead
    };
    g.bench_function("grid_search_tau", |b| {
        b.iter(|| {
            let best = taus
                .iter()
                .map(|&t| (eval(t), t))
                .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            black_box(best)
        })
    });
    g.bench_function("simulated_annealing_tau", |b| {
        b.iter(|| {
            let r = anneal(
                3usize,
                |&i, rng| {
                    if i == 0 {
                        1
                    } else if i + 1 >= taus.len() {
                        i - 1
                    } else if rng.chance(0.5) {
                        i + 1
                    } else {
                        i - 1
                    }
                },
                |&i| eval(taus[i]),
                &AnnealConfig {
                    iterations: 5,
                    ..AnnealConfig::default()
                },
            );
            black_box(r.best_energy)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_suppression,
    bench_topology_family,
    bench_h_modelled,
    bench_anneal_vs_grid
);
criterion_main!(benches);
