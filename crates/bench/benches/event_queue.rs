//! Future-event-list microbenchmarks: the adaptive ladder [`EventQueue`]
//! against the reference packed-key [`HeapQueue`] under the classic
//! calendar-queue workloads.
//!
//! * **hold model** — the standard priority-queue benchmark (Vaucher &
//!   Duval): prime the queue to a steady-state population `n`, then
//!   repeatedly pop the earliest event and schedule a replacement at
//!   `now + dt`. Queue length stays ~constant, so this isolates the
//!   per-operation cost the simulation loop pays at scale `k`.
//! * **bimodal** — `dt` mixes short service hops with long timer hops,
//!   the shape the Grid simulator actually generates (network latencies
//!   vs. update-interval timers); stresses bucket routing + overflow.
//! * **burst** — same-tick fan-out bursts followed by drains, the
//!   scheduler broadcast pattern; stresses FIFO tie handling.
//! * **adversarial skew** — one far-future outlier stretches the window
//!   so the ladder's skew heuristic must latch its heap fallback; the
//!   ladder should track the heap here, not regress.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gridscale_desim::{EventQueue, HeapQueue, ScheduledEvent, SimRng, SimTime};
use std::hint::black_box;

/// The minimal future-event-list surface the benchmarks need, so each
/// workload is written once and measured against both structures.
trait Fel: Default {
    fn schedule(&mut self, at: SimTime, ev: u64);
    fn pop(&mut self) -> Option<ScheduledEvent<u64>>;
}

impl Fel for EventQueue<u64> {
    fn schedule(&mut self, at: SimTime, ev: u64) {
        EventQueue::schedule(self, at, ev)
    }
    fn pop(&mut self) -> Option<ScheduledEvent<u64>> {
        EventQueue::pop(self)
    }
}

impl Fel for HeapQueue<u64> {
    fn schedule(&mut self, at: SimTime, ev: u64) {
        HeapQueue::schedule(self, at, ev)
    }
    fn pop(&mut self) -> Option<ScheduledEvent<u64>> {
        HeapQueue::pop(self)
    }
}

/// Primes `q` with `n` events spread over `[0, n * mean_dt)`.
fn prime<Q: Fel>(q: &mut Q, n: usize, mean_dt: u64, rng: &mut SimRng) {
    for i in 0..n {
        let at = rng.int_range(0, n as u64 * mean_dt);
        q.schedule(SimTime::from_ticks(at), i as u64);
    }
}

/// `ops` hold steps: pop the minimum, reschedule at `now + dt()`.
fn hold<Q: Fel>(q: &mut Q, ops: usize, mut dt: impl FnMut() -> u64) -> u64 {
    let mut sum = 0u64;
    for i in 0..ops {
        let ev = q.pop().expect("hold model never empties");
        sum = sum.wrapping_add(ev.event);
        let at = ev.at + SimTime::from_ticks(dt().max(1));
        q.schedule(at, i as u64);
    }
    sum
}

/// One hold-model measurement of queue `Q` at population `n`.
fn hold_case<Q: Fel>(q: &mut Q, n: usize, dt: impl Fn(&mut SimRng) -> u64) -> u64 {
    let mut rng = SimRng::new(0xFE1);
    prime(q, n, 1_000, &mut rng);
    hold(q, n, || dt(&mut rng))
}

/// Registers `ladder` and `heap` rows of one hold-model group. A macro
/// rather than a function so the criterion group type never appears in a
/// signature.
macro_rules! hold_group {
    ($c:expr, $name:expr, $dt:expr) => {{
        let mut g = $c.benchmark_group($name);
        for &n in &[1_000usize, 16_000, 64_000] {
            g.throughput(Throughput::Elements(n as u64));
            g.bench_with_input(BenchmarkId::new("ladder", n), &n, |b, &n| {
                b.iter(|| black_box(hold_case(&mut EventQueue::default(), n, $dt)))
            });
            g.bench_with_input(BenchmarkId::new("heap", n), &n, |b, &n| {
                b.iter(|| black_box(hold_case(&mut HeapQueue::default(), n, $dt)))
            });
        }
        g.finish();
    }};
}

fn bench_hold_uniform(c: &mut Criterion) {
    hold_group!(c, "event_queue/hold_uniform", |rng: &mut SimRng| rng
        .int_range(1, 2_000));
}

fn bench_hold_bimodal(c: &mut Criterion) {
    hold_group!(c, "event_queue/hold_bimodal", |rng: &mut SimRng| {
        if rng.chance(0.85) {
            rng.int_range(1, 64) // short service hop
        } else {
            rng.int_range(20_000, 120_000) // long timer hop
        }
    });
}

/// 64 rounds: a same-tick broadcast burst lands, then the earliest half
/// of the population drains; finally everything drains.
fn burst_case<Q: Fel>(q: &mut Q) -> u64 {
    let mut rng = SimRng::new(0xB0);
    let mut sum = 0u64;
    for round in 0..64u64 {
        let at = SimTime::from_ticks(round * 500 + rng.int_range(0, 100));
        for j in 0..512 {
            q.schedule(at, j);
        }
        for _ in 0..256 {
            sum = sum.wrapping_add(q.pop().expect("burst pending").event);
        }
    }
    while let Some(ev) = q.pop() {
        sum = sum.wrapping_add(ev.event);
    }
    sum
}

fn bench_burst(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue/burst");
    g.bench_function("ladder", |b| {
        b.iter(|| black_box(burst_case(&mut EventQueue::default())))
    });
    g.bench_function("heap", |b| {
        b.iter(|| black_box(burst_case(&mut HeapQueue::default())))
    });
    g.finish();
}

/// One far-future outlier stretches any time window to the full axis;
/// all real traffic then lives in a sliver of it. The ladder's skew
/// heuristic must latch its heap fallback and track the reference heap
/// instead of degenerating.
fn skew_case<Q: Fel>(q: &mut Q) -> u64 {
    let mut rng = SimRng::new(0x5E);
    q.schedule(SimTime::from_ticks(u64::MAX - 1), 0);
    let mut sum = 0u64;
    for i in 0..16_000u64 {
        q.schedule(SimTime::from_ticks(rng.int_range(0, 4_096)), i);
        if i % 2 == 0 {
            sum = sum.wrapping_add(q.pop().expect("pending").event);
        }
    }
    while let Some(ev) = q.pop() {
        sum = sum.wrapping_add(ev.event);
    }
    sum
}

fn bench_adversarial_skew(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue/adversarial_skew");
    g.bench_function("ladder", |b| {
        b.iter(|| black_box(skew_case(&mut EventQueue::default())))
    });
    g.bench_function("heap", |b| {
        b.iter(|| black_box(skew_case(&mut HeapQueue::default())))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_hold_uniform,
    bench_hold_bimodal,
    bench_burst,
    bench_adversarial_skew
);
criterion_main!(benches);
