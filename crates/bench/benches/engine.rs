//! Microbenchmarks of the simulation substrates: event queue, routing,
//! workload generation, and a full small simulation per RMS model.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use gridscale_core::{config_for, CaseId, Preset};
use gridscale_desim::{EventQueue, SimRng, SimTime};
use gridscale_gridsim::{run_simulation, SimTemplate};
use gridscale_rms::RmsKind;
use gridscale_topology::generate::{self, LinkParams};
use gridscale_topology::RoutingTable;
use gridscale_workload::{generate as gen_workload, WorkloadConfig};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("desim/event_queue/push_pop_10k", |b| {
        let mut rng = SimRng::new(1);
        let times: Vec<u64> = (0..10_000).map(|_| rng.int_range(0, 1_000_000)).collect();
        b.iter(|| {
            let mut q = EventQueue::with_capacity(times.len());
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_ticks(t), i as u32);
            }
            let mut sum = 0u64;
            while let Some(ev) = q.pop() {
                sum = sum.wrapping_add(ev.event as u64);
            }
            black_box(sum)
        })
    });
}

fn bench_topology(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology");
    for &n in &[100usize, 300, 1000] {
        g.bench_with_input(BenchmarkId::new("barabasi_albert", n), &n, |b, &n| {
            b.iter_batched(
                || SimRng::new(7),
                |mut rng| generate::barabasi_albert(n, 2, LinkParams::default(), &mut rng),
                BatchSize::SmallInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("routing_build", n), &n, |b, &n| {
            let mut rng = SimRng::new(7);
            let graph = generate::barabasi_albert(n, 2, LinkParams::default(), &mut rng);
            b.iter(|| RoutingTable::build(black_box(&graph)))
        });
    }
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    c.bench_function("workload/generate_20k_jobs", |b| {
        let cfg = WorkloadConfig {
            arrival_rate: 0.1,
            duration: SimTime::from_ticks(200_000),
            ..WorkloadConfig::default()
        };
        b.iter_batched(
            || SimRng::new(3),
            |mut rng| gen_workload(&cfg, &mut rng),
            BatchSize::SmallInput,
        )
    });
}

fn bench_simulation_per_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("gridsim/full_sim_240n");
    g.sample_size(10);
    for kind in RmsKind::ALL {
        let mut cfg = config_for(kind, CaseId::NetworkSize, 2, Preset::Quick, 5);
        cfg.workload.duration = SimTime::from_ticks(15_000);
        cfg.drain = SimTime::from_ticks(10_000);
        let template = SimTemplate::new(&cfg);
        g.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut policy = kind.build();
                black_box(template.run(cfg.enablers, policy.as_mut()))
            })
        });
    }
    g.finish();
}

fn bench_template_vs_fresh(c: &mut Criterion) {
    let mut g = c.benchmark_group("gridsim/setup");
    g.sample_size(10);
    let cfg = config_for(RmsKind::Lowest, CaseId::NetworkSize, 2, Preset::Quick, 5);
    g.bench_function("template_build", |b| {
        b.iter(|| SimTemplate::new(black_box(&cfg)))
    });
    g.bench_function("fresh_run_total", |b| {
        b.iter(|| {
            let mut policy = RmsKind::Lowest.build();
            black_box(run_simulation(&cfg, policy.as_mut()))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_topology,
    bench_workload,
    bench_simulation_per_model,
    bench_template_vs_fresh
);
criterion_main!(benches);
