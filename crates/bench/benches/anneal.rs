//! Benchmarks of the parallel tuning stack: sequential vs batched
//! speculative annealing (cheap and expensive objectives) and the packed
//! single-integer heap key against a tuple-keyed baseline queue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridscale_core::{anneal, anneal_batch, AnnealConfig, BatchAnnealConfig};
use gridscale_desim::{EventQueue, SimRng, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

/// A convex objective over a 1-D grid — negligible per-evaluation cost, so
/// the bench isolates the annealer's own bookkeeping overhead.
fn cheap_energy(x: &i64) -> f64 {
    let d = (*x - 137) as f64;
    d * d
}

/// The same landscape with an artificial compute load standing in for a
/// full Grid simulation — the regime the speculative batch targets, where
/// concurrent evaluation pays for the discarded speculation.
fn expensive_energy(x: &i64) -> f64 {
    let mut acc = (*x as f64).abs() + 1.0;
    for i in 1..4_000u32 {
        acc = (acc + i as f64).sqrt() + 1.0;
    }
    cheap_energy(x) + (acc - acc.floor()) * 1e-12
}

fn step(x: &i64, rng: &mut SimRng) -> i64 {
    let d = if rng.chance(0.5) { 1 } else { -1 };
    (x + d).clamp(0, 400)
}

fn bench_anneal(c: &mut Criterion) {
    let base = AnnealConfig {
        iterations: 256,
        seed: 17,
        ..AnnealConfig::default()
    };

    let mut g = c.benchmark_group("anneal/cheap_energy");
    g.bench_function("sequential", |b| {
        b.iter(|| anneal(black_box(390i64), step, cheap_energy, &base))
    });
    for &batch in &[2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("batched", batch), &batch, |b, &batch| {
            let cfg = BatchAnnealConfig {
                base,
                batch,
                threads: 1,
            };
            b.iter(|| anneal_batch(black_box(&[390i64]), step, cheap_energy, &cfg))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("anneal/expensive_energy");
    g.sample_size(20);
    g.bench_function("sequential", |b| {
        b.iter(|| anneal(black_box(390i64), step, expensive_energy, &base))
    });
    for &(batch, threads) in &[(4usize, 1usize), (4, 4), (8, 8)] {
        g.bench_with_input(
            BenchmarkId::new("batched", format!("b{batch}t{threads}")),
            &(batch, threads),
            |b, &(batch, threads)| {
                let cfg = BatchAnnealConfig {
                    base,
                    batch,
                    threads,
                };
                b.iter(|| anneal_batch(black_box(&[390i64]), step, expensive_energy, &cfg))
            },
        );
    }
    g.finish();
}

/// Reference queue with the pre-optimization representation: a `(time,
/// seq)` tuple key compared lexicographically — what `EventQueue` used
/// before packing both into one `u128`.
struct TupleKeyQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    next_seq: u64,
}

impl TupleKeyQueue {
    fn new(cap: usize) -> Self {
        TupleKeyQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    fn schedule(&mut self, at: u64, event: u32) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq, event)));
    }

    fn pop(&mut self) -> Option<u32> {
        self.heap.pop().map(|Reverse((_, _, e))| e)
    }
}

fn bench_queue_keys(c: &mut Criterion) {
    const N: usize = 50_000;
    let mut rng = SimRng::new(5);
    let times: Vec<u64> = (0..N).map(|_| rng.int_range(0, 1_000_000)).collect();

    let mut g = c.benchmark_group("desim/queue_key");
    g.bench_function("packed_u128", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(N);
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_ticks(t), i as u32);
            }
            let mut sum = 0u64;
            while let Some(ev) = q.pop() {
                sum = sum.wrapping_add(ev.event as u64);
            }
            black_box(sum)
        })
    });
    g.bench_function("tuple_baseline", |b| {
        b.iter(|| {
            let mut q = TupleKeyQueue::new(N);
            for (i, &t) in times.iter().enumerate() {
                q.schedule(t, i as u32);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e as u64);
            }
            black_box(sum)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_anneal, bench_queue_keys);
criterion_main!(benches);
