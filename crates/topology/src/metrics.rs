//! Structural metrics of generated topologies.
//!
//! Used by the topology-family ablation to verify that the synthetic
//! Mercator substitutes actually exhibit the structural properties the
//! substitution argument (DESIGN.md §2) relies on: heavy-tailed degrees
//! for Barabási–Albert, locality/clustering for Waxman, small diameter
//! for transit-stub hierarchies.

use crate::graph::{Graph, NodeId};
use crate::routing::RoutingTable;
use serde::{Deserialize, Serialize};

/// Summary of a topology's structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphMetrics {
    /// Nodes.
    pub nodes: usize,
    /// Undirected links.
    pub links: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Global clustering coefficient (transitivity): `3·triangles /
    /// connected triples`.
    pub clustering: f64,
    /// Diameter in hops (exact, via the routing tables).
    pub hop_diameter: u32,
    /// Mean shortest-path hop count over reachable pairs.
    pub mean_hops: f64,
    /// Maximum-likelihood power-law exponent fitted to degrees ≥ `k_min`
    /// (Clauset–Shalizi–Newman discrete approximation); `None` when too
    /// few qualifying nodes exist.
    pub powerlaw_alpha: Option<f64>,
}

/// Computes all metrics for a graph (builds a routing table internally if
/// one is not supplied).
pub fn analyze(g: &Graph, rt: Option<&RoutingTable>) -> GraphMetrics {
    let owned;
    let rt = match rt {
        Some(rt) => rt,
        None => {
            owned = RoutingTable::build(g);
            &owned
        }
    };
    let n = g.node_count();

    let mut max_degree = 0usize;
    for v in g.nodes() {
        max_degree = max_degree.max(g.degree(v));
    }

    GraphMetrics {
        nodes: n,
        links: g.link_count(),
        mean_degree: g.mean_degree(),
        max_degree,
        clustering: clustering_coefficient(g),
        hop_diameter: hop_diameter(g, rt),
        mean_hops: mean_hops(g, rt),
        powerlaw_alpha: powerlaw_alpha(g, 2),
    }
}

/// Global clustering coefficient: `3 × triangles / triples`.
pub fn clustering_coefficient(g: &Graph) -> f64 {
    let mut triangles = 0u64;
    let mut triples = 0u64;
    for v in g.nodes() {
        let d = g.degree(v) as u64;
        triples += d * d.saturating_sub(1) / 2;
        let nbrs: Vec<NodeId> = g.neighbors(v).iter().map(|l| l.to).collect();
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                if g.has_link(nbrs[i], nbrs[j]) {
                    triangles += 1;
                }
            }
        }
    }
    if triples == 0 {
        0.0
    } else {
        // Each triangle is counted once per corner = 3 times.
        triangles as f64 / triples as f64
    }
}

/// Exact hop diameter over reachable pairs (0 for trivial graphs).
pub fn hop_diameter(g: &Graph, rt: &RoutingTable) -> u32 {
    let n = g.node_count() as NodeId;
    let mut best = 0u32;
    for s in 0..n {
        for t in (s + 1)..n {
            if let Some(h) = rt.hops(s, t) {
                best = best.max(h as u32);
            }
        }
    }
    best
}

/// Mean hop count over reachable ordered pairs.
pub fn mean_hops(g: &Graph, rt: &RoutingTable) -> f64 {
    let n = g.node_count() as NodeId;
    let mut sum = 0u64;
    let mut cnt = 0u64;
    for s in 0..n {
        for t in 0..n {
            if s != t {
                if let Some(h) = rt.hops(s, t) {
                    sum += h as u64;
                    cnt += 1;
                }
            }
        }
    }
    if cnt == 0 {
        0.0
    } else {
        sum as f64 / cnt as f64
    }
}

/// Discrete power-law exponent MLE: `α = 1 + n / Σ ln(d_i / (k_min − ½))`
/// over degrees `≥ k_min`. Returns `None` with fewer than 10 samples.
pub fn powerlaw_alpha(g: &Graph, k_min: usize) -> Option<f64> {
    let degs: Vec<f64> = g
        .nodes()
        .map(|v| g.degree(v) as f64)
        .filter(|&d| d >= k_min as f64)
        .collect();
    if degs.len() < 10 {
        return None;
    }
    let denom: f64 = degs.iter().map(|&d| (d / (k_min as f64 - 0.5)).ln()).sum();
    Some(1.0 + degs.len() as f64 / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{self, LinkParams};
    use gridscale_desim::SimRng;

    #[test]
    fn triangle_has_full_clustering() {
        let g = generate::full_mesh(3, LinkParams::default());
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_has_zero_clustering() {
        let g = generate::star(6, LinkParams::default());
        assert_eq!(clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn ring_metrics_are_exact() {
        let g = generate::ring(8, LinkParams::default());
        let rt = RoutingTable::build(&g);
        assert_eq!(hop_diameter(&g, &rt), 4);
        // Mean hops on C8: (1+1+2+2+3+3+4)/7 = 16/7.
        assert!((mean_hops(&g, &rt) - 16.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn ba_degrees_fit_a_plausible_power_law() {
        let mut rng = SimRng::new(5);
        let g = generate::barabasi_albert(800, 2, LinkParams::default(), &mut rng);
        let alpha = powerlaw_alpha(&g, 3).expect("enough hubs");
        // BA theory: α → 3 for large n; MLE over a finite sample lands in
        // a broad band around it.
        assert!(
            (2.0..4.2).contains(&alpha),
            "BA power-law exponent {alpha} out of band"
        );
    }

    #[test]
    fn analyze_is_consistent() {
        let mut rng = SimRng::new(9);
        let g = generate::waxman(60, 0.3, 0.4, LinkParams::default(), &mut rng);
        let m = analyze(&g, None);
        assert_eq!(m.nodes, 60);
        assert_eq!(m.links, g.link_count());
        assert!(m.mean_degree > 0.0);
        assert!(m.max_degree >= m.mean_degree as usize);
        assert!(m.hop_diameter >= 1);
        assert!(m.mean_hops >= 1.0);
        assert!((0.0..=1.0).contains(&m.clustering));
    }

    #[test]
    fn transit_stub_has_smaller_diameter_than_ring() {
        let mut rng = SimRng::new(11);
        let ts = generate::transit_stub(3, 4, 2, 8, LinkParams::default(), &mut rng);
        let ring = generate::ring(ts.node_count(), LinkParams::default());
        let mts = analyze(&ts, None);
        let mring = analyze(&ring, None);
        assert!(
            mts.hop_diameter < mring.hop_diameter / 2,
            "hierarchy {} vs ring {}",
            mts.hop_diameter,
            mring.hop_diameter
        );
    }

    #[test]
    fn powerlaw_requires_enough_samples() {
        let g = generate::ring(5, LinkParams::default());
        assert_eq!(powerlaw_alpha(&g, 3), None);
    }
}
