//! Link-state shortest-path routing (the OSPF substitute).
//!
//! OSPF floods link state and has every router run Dijkstra; the observable
//! result is that each message follows a minimum-latency path. We compute
//! the same thing directly: an all-pairs table of latency, hop count, and
//! first hop, built by one Dijkstra per source.

use crate::graph::{Graph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const UNREACHABLE: u64 = u64::MAX;

/// All-pairs shortest-path routing state for one [`Graph`].
///
/// Row-major `n × n` tables; memory is `~13 n²` bytes, i.e. ~14 MB for the
/// paper's 1000-node networks.
pub struct RoutingTable {
    n: usize,
    /// Minimum total latency, `UNREACHABLE` if disconnected.
    dist: Vec<u64>,
    /// Hop count along the minimum-latency path.
    hops: Vec<u16>,
    /// First hop from `src` toward `dst`; `src` itself on the diagonal.
    first: Vec<NodeId>,
}

impl RoutingTable {
    /// Runs Dijkstra from every source. Ties between equal-latency paths are
    /// broken toward fewer hops, then lower node id — deterministically.
    pub fn build(g: &Graph) -> Self {
        let n = g.node_count();
        let mut dist = vec![UNREACHABLE; n * n];
        let mut hops = vec![u16::MAX; n * n];
        let mut first = vec![NodeId::MAX; n * n];

        let mut heap: BinaryHeap<Reverse<(u64, u16, NodeId)>> = BinaryHeap::new();
        for src in 0..n {
            let row = src * n;
            let d = &mut dist[row..row + n];
            let h = &mut hops[row..row + n];
            let f = &mut first[row..row + n];
            d[src] = 0;
            h[src] = 0;
            f[src] = src as NodeId;
            heap.clear();
            heap.push(Reverse((0, 0, src as NodeId)));
            while let Some(Reverse((du, hu, u))) = heap.pop() {
                if du > d[u as usize] || (du == d[u as usize] && hu > h[u as usize]) {
                    continue; // stale entry
                }
                for l in g.neighbors(u) {
                    let v = l.to as usize;
                    let dv = du.saturating_add(l.latency);
                    let hv = hu.saturating_add(1);
                    let better = dv < d[v] || (dv == d[v] && hv < h[v]);
                    if better {
                        d[v] = dv;
                        h[v] = hv;
                        f[v] = if u as usize == src {
                            l.to
                        } else {
                            f[u as usize]
                        };
                        heap.push(Reverse((dv, hv, l.to)));
                    }
                }
            }
        }
        RoutingTable {
            n,
            dist,
            hops,
            first,
        }
    }

    #[inline]
    fn idx(&self, src: NodeId, dst: NodeId) -> usize {
        debug_assert!((src as usize) < self.n && (dst as usize) < self.n);
        src as usize * self.n + dst as usize
    }

    /// Number of nodes the table was built for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Minimum path latency in ticks, `None` if unreachable.
    pub fn latency(&self, src: NodeId, dst: NodeId) -> Option<u64> {
        let d = self.dist[self.idx(src, dst)];
        (d != UNREACHABLE).then_some(d)
    }

    /// Hop count along the routed path, `None` if unreachable.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> Option<u16> {
        let h = self.hops[self.idx(src, dst)];
        (h != u16::MAX).then_some(h)
    }

    /// The neighbor of `src` that routes toward `dst` (`src` if `src == dst`),
    /// `None` if unreachable.
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        let f = self.first[self.idx(src, dst)];
        (f != NodeId::MAX).then_some(f)
    }

    /// Materializes the full routed path `src → … → dst` (inclusive).
    /// Returns `None` if unreachable.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        self.latency(src, dst)?;
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            cur = self.next_hop(cur, dst)?;
            path.push(cur);
            if path.len() > self.n {
                return None; // defensive: inconsistent table
            }
        }
        Some(path)
    }

    /// Among `candidates`, the one with least latency from `src` (ties →
    /// lowest id). `None` if no candidate is reachable.
    pub fn nearest(&self, src: NodeId, candidates: &[NodeId]) -> Option<NodeId> {
        candidates
            .iter()
            .copied()
            .filter_map(|c| self.latency(src, c).map(|d| (d, c)))
            .min()
            .map(|(_, c)| c)
    }

    /// Sorts `candidates` in place by `(latency from src, node id)`,
    /// nearest first; unreachable candidates sink to the end. The
    /// allocation-free batch form of [`RoutingTable::nearest`]: after the
    /// call, `candidates.first()` is what `nearest` would have returned
    /// (when reachable). Used to precompute ranked-neighbor tables once
    /// per topology instead of re-scanning candidates per decision.
    pub fn rank_candidates(&self, src: NodeId, candidates: &mut [NodeId]) {
        candidates.sort_by_key(|&c| (self.latency(src, c).unwrap_or(UNREACHABLE), c));
    }

    /// Mean latency over all ordered reachable pairs (excluding the
    /// diagonal); a summary statistic used by topology ablations. Streams
    /// over the row-major table — no allocation, O(n²) time.
    pub fn mean_pair_latency(&self) -> f64 {
        let mut sum = 0u128;
        let mut cnt = 0u64;
        for s in 0..self.n {
            for t in 0..self.n {
                if s != t {
                    let d = self.dist[s * self.n + t];
                    if d != UNREACHABLE {
                        sum += d as u128;
                        cnt += 1;
                    }
                }
            }
        }
        if cnt == 0 {
            0.0
        } else {
            sum as f64 / cnt as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{self, LinkParams};
    use gridscale_desim::SimRng;

    /// Line 0-1-2-3 with latencies 1, 2, 3.
    fn line() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_link(0, 1, 1, 1.0);
        g.add_link(1, 2, 2, 1.0);
        g.add_link(2, 3, 3, 1.0);
        g
    }

    #[test]
    fn line_distances_and_hops() {
        let rt = RoutingTable::build(&line());
        assert_eq!(rt.latency(0, 3), Some(6));
        assert_eq!(rt.hops(0, 3), Some(3));
        assert_eq!(rt.latency(3, 0), Some(6), "symmetric");
        assert_eq!(rt.latency(2, 2), Some(0));
        assert_eq!(rt.hops(2, 2), Some(0));
    }

    #[test]
    fn next_hop_and_path() {
        let rt = RoutingTable::build(&line());
        assert_eq!(rt.next_hop(0, 3), Some(1));
        assert_eq!(rt.next_hop(3, 0), Some(2));
        assert_eq!(rt.next_hop(1, 1), Some(1));
        assert_eq!(rt.path(0, 3), Some(vec![0, 1, 2, 3]));
        assert_eq!(rt.path(2, 0), Some(vec![2, 1, 0]));
    }

    #[test]
    fn picks_lower_latency_over_fewer_hops() {
        // 0-2 direct costs 10; 0-1-2 costs 2+2=4.
        let mut g = Graph::with_nodes(3);
        g.add_link(0, 2, 10, 1.0);
        g.add_link(0, 1, 2, 1.0);
        g.add_link(1, 2, 2, 1.0);
        let rt = RoutingTable::build(&g);
        assert_eq!(rt.latency(0, 2), Some(4));
        assert_eq!(rt.hops(0, 2), Some(2));
        assert_eq!(rt.path(0, 2), Some(vec![0, 1, 2]));
    }

    #[test]
    fn equal_latency_prefers_fewer_hops() {
        // 0-3 via 1: 2+2=4 (2 hops); via direct link: 4 (1 hop).
        let mut g = Graph::with_nodes(4);
        g.add_link(0, 1, 2, 1.0);
        g.add_link(1, 3, 2, 1.0);
        g.add_link(0, 3, 4, 1.0);
        let rt = RoutingTable::build(&g);
        assert_eq!(rt.latency(0, 3), Some(4));
        assert_eq!(rt.hops(0, 3), Some(1));
        assert_eq!(rt.path(0, 3), Some(vec![0, 3]));
    }

    #[test]
    fn disconnected_pairs_are_none() {
        let mut g = Graph::with_nodes(3);
        g.add_link(0, 1, 1, 1.0);
        let rt = RoutingTable::build(&g);
        assert_eq!(rt.latency(0, 2), None);
        assert_eq!(rt.hops(0, 2), None);
        assert_eq!(rt.next_hop(0, 2), None);
        assert_eq!(rt.path(0, 2), None);
        assert_eq!(rt.latency(0, 1), Some(1));
    }

    #[test]
    fn nearest_candidate() {
        let rt = RoutingTable::build(&line());
        assert_eq!(rt.nearest(0, &[2, 3]), Some(2));
        assert_eq!(rt.nearest(3, &[0, 1]), Some(1));
        assert_eq!(rt.nearest(0, &[]), None);
        assert_eq!(rt.nearest(0, &[0]), Some(0));
    }

    #[test]
    fn rank_candidates_orders_by_latency_then_id() {
        let rt = RoutingTable::build(&line());
        let mut c = vec![3, 1, 2];
        rt.rank_candidates(0, &mut c);
        assert_eq!(c, vec![1, 2, 3]);
        assert_eq!(rt.nearest(0, &c), Some(c[0]), "head agrees with nearest");

        // Unreachable candidates sink to the end.
        let mut g = Graph::with_nodes(4);
        g.add_link(0, 1, 5, 1.0);
        let rt = RoutingTable::build(&g);
        let mut c = vec![2, 1, 3];
        rt.rank_candidates(0, &mut c);
        assert_eq!(c[0], 1);
        assert_eq!(&c[1..], &[2, 3], "unreachable, tie-broken by id");
    }

    #[test]
    fn path_latency_matches_table_on_random_graph() {
        let mut rng = SimRng::new(99);
        let g = generate::barabasi_albert(80, 2, LinkParams::default(), &mut rng);
        let rt = RoutingTable::build(&g);
        for (s, t) in [(0u32, 79u32), (5, 50), (12, 13), (70, 3)] {
            let path = rt.path(s, t).expect("BA graph is connected");
            let mut total = 0u64;
            for w in path.windows(2) {
                let l = g
                    .neighbors(w[0])
                    .iter()
                    .find(|l| l.to == w[1])
                    .expect("path edges exist");
                total += l.latency;
            }
            assert_eq!(Some(total), rt.latency(s, t));
            assert_eq!(rt.hops(s, t), Some((path.len() - 1) as u16));
        }
    }

    #[test]
    fn triangle_inequality_holds() {
        let mut rng = SimRng::new(5);
        let g = generate::waxman(40, 0.3, 0.4, LinkParams::default(), &mut rng);
        let rt = RoutingTable::build(&g);
        for a in 0..40u32 {
            for b in 0..40u32 {
                for c in [0u32, 7, 19] {
                    let (ab, ac, cb) = (
                        rt.latency(a, b).unwrap(),
                        rt.latency(a, c).unwrap(),
                        rt.latency(c, b).unwrap(),
                    );
                    assert!(ab <= ac + cb, "triangle violated {a}->{b} via {c}");
                }
            }
        }
    }

    #[test]
    fn mean_pair_latency_simple() {
        let mut g = Graph::with_nodes(2);
        g.add_link(0, 1, 7, 1.0);
        let rt = RoutingTable::build(&g);
        assert!((rt.mean_pair_latency() - 7.0).abs() < 1e-12);
        let empty = RoutingTable::build(&Graph::with_nodes(1));
        assert_eq!(empty.mean_pair_latency(), 0.0);
    }
}
