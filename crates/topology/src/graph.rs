//! Undirected weighted graphs.

use serde::{Deserialize, Serialize};

/// Index of a node in a [`Graph`].
pub type NodeId = u32;

/// One direction of an undirected link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Far endpoint.
    pub to: NodeId,
    /// Propagation latency in simulation ticks.
    pub latency: u64,
    /// Bandwidth in payload units per tick (used for transmission delay).
    pub bandwidth: f64,
}

/// An undirected graph with per-link latency and bandwidth.
///
/// Stored as a forward adjacency list; each undirected link appears once in
/// each endpoint's list. Node indices are dense `0..n`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<Link>>,
    link_count: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            link_count: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected links.
    pub fn link_count(&self) -> usize {
        self.link_count
    }

    /// Appends an isolated node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        (self.adj.len() - 1) as NodeId
    }

    /// Adds an undirected link. Panics if either endpoint is out of range or
    /// `a == b`. Parallel links are rejected (returns `false`) so that
    /// generators can retry without checking first.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, latency: u64, bandwidth: f64) -> bool {
        assert!(a != b, "self-loops are not allowed");
        assert!((a as usize) < self.adj.len() && (b as usize) < self.adj.len());
        if self.has_link(a, b) {
            return false;
        }
        self.adj[a as usize].push(Link {
            to: b,
            latency,
            bandwidth,
        });
        self.adj[b as usize].push(Link {
            to: a,
            latency,
            bandwidth,
        });
        self.link_count += 1;
        true
    }

    /// True if `a` and `b` are directly linked.
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        self.adj[a as usize].iter().any(|l| l.to == b)
    }

    /// Neighbors (with link attributes) of `n`.
    pub fn neighbors(&self, n: NodeId) -> &[Link] {
        &self.adj[n as usize]
    }

    /// Degree of `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n as usize].len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.adj.len() as NodeId
    }

    /// Multiplies every link latency by `factor`, rounding, with a floor of
    /// one tick. This implements the paper's "network link delay" scaling
    /// enabler.
    pub fn scale_latencies(&mut self, factor: f64) {
        assert!(factor > 0.0);
        for links in &mut self.adj {
            for l in links {
                l.latency = ((l.latency as f64 * factor).round() as u64).max(1);
            }
        }
    }

    /// Returns the connected components as lists of node ids.
    pub fn components(&self) -> Vec<Vec<NodeId>> {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        let mut stack = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            seen[start] = true;
            stack.push(start as NodeId);
            while let Some(v) = stack.pop() {
                comp.push(v);
                for l in &self.adj[v as usize] {
                    if !seen[l.to as usize] {
                        seen[l.to as usize] = true;
                        stack.push(l.to);
                    }
                }
            }
            out.push(comp);
        }
        out
    }

    /// True if the graph is connected (or empty).
    pub fn is_connected(&self) -> bool {
        self.components().len() <= 1
    }

    /// Mean node degree (0 for an empty graph).
    pub fn mean_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.link_count as f64 / self.adj.len() as f64
        }
    }

    /// Degree distribution: `dist[d]` = number of nodes with degree `d`.
    pub fn degree_distribution(&self) -> Vec<usize> {
        let max_d = self.adj.iter().map(Vec::len).max().unwrap_or(0);
        let mut dist = vec![0usize; max_d + 1];
        for links in &self.adj {
            dist[links.len()] += 1;
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_link(0, 1, 5, 1.0);
        g.add_link(1, 2, 7, 1.0);
        g.add_link(2, 0, 9, 1.0);
        g
    }

    #[test]
    fn build_and_query() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.link_count(), 3);
        assert!(g.has_link(0, 1) && g.has_link(1, 0));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(0).len(), 2);
        assert!((g.mean_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_links_rejected() {
        let mut g = Graph::with_nodes(2);
        assert!(g.add_link(0, 1, 1, 1.0));
        assert!(!g.add_link(0, 1, 2, 2.0));
        assert!(!g.add_link(1, 0, 2, 2.0));
        assert_eq!(g.link_count(), 1);
    }

    #[test]
    #[should_panic]
    fn self_loop_panics() {
        let mut g = Graph::with_nodes(2);
        g.add_link(1, 1, 1, 1.0);
    }

    #[test]
    fn add_node_grows() {
        let mut g = Graph::with_nodes(0);
        let a = g.add_node();
        let b = g.add_node();
        assert_eq!((a, b), (0, 1));
        g.add_link(a, b, 3, 1.0);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn components_and_connectivity() {
        let mut g = Graph::with_nodes(5);
        g.add_link(0, 1, 1, 1.0);
        g.add_link(2, 3, 1, 1.0);
        let mut comps = g.components();
        comps.iter_mut().for_each(|c| c.sort_unstable());
        comps.sort();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
        assert!(!g.is_connected());
        g.add_link(1, 2, 1, 1.0);
        g.add_link(3, 4, 1, 1.0);
        assert!(g.is_connected());
    }

    #[test]
    fn latency_scaling_floors_at_one() {
        let mut g = triangle();
        g.scale_latencies(0.01);
        for n in 0..3u32 {
            for l in g.neighbors(n) {
                assert_eq!(l.latency, 1);
            }
        }
        g.scale_latencies(10.0);
        assert!(g.neighbors(0).iter().all(|l| l.latency == 10));
    }

    #[test]
    fn degree_distribution_counts() {
        let mut g = Graph::with_nodes(4);
        g.add_link(0, 1, 1, 1.0);
        g.add_link(0, 2, 1, 1.0);
        g.add_link(0, 3, 1, 1.0);
        let d = g.degree_distribution();
        assert_eq!(d, vec![0, 3, 0, 1]); // three leaves, one hub of degree 3
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Graph::with_nodes(0);
        assert!(g.is_connected());
        assert_eq!(g.mean_degree(), 0.0);
        assert_eq!(g.degree_distribution(), vec![0]);
    }
}

impl Graph {
    /// Deterministic dense undirected link ids, `0..link_count()`.
    ///
    /// Ids are assigned by walking nodes in ascending order and each
    /// node's adjacency list in insertion order, numbering every
    /// undirected link at its lower-id endpoint — the same enumeration
    /// [`Graph::to_dot`] prints, so the assignment is a pure function of
    /// construction order. Returns per-node tables aligned with
    /// [`Graph::neighbors`]: `ids[v][i]` is the link id of
    /// `self.neighbors(v)[i]`.
    pub fn link_ids(&self) -> Vec<Vec<u32>> {
        let mut ids: Vec<Vec<u32>> = self.adj.iter().map(|a| vec![u32::MAX; a.len()]).collect();
        let mut next = 0u32;
        for v in 0..self.adj.len() {
            for i in 0..self.adj[v].len() {
                let to = self.adj[v][i].to as usize;
                if v < to {
                    ids[v][i] = next;
                    let back = self.adj[to]
                        .iter()
                        .position(|l| l.to as usize == v)
                        .expect("undirected links appear in both adjacency lists");
                    ids[to][back] = next;
                    next += 1;
                }
            }
        }
        debug_assert_eq!(next as usize, self.link_count);
        ids
    }

    /// Per-link capacities indexed by the ids of [`Graph::link_ids`],
    /// scaled by `scale` (the bandwidth-sweep knob): `caps[id]` is the
    /// bandwidth of undirected link `id` in payload units per tick.
    pub fn link_capacities(&self, scale: f64) -> Vec<f64> {
        let mut caps = vec![0.0; self.link_count];
        let mut next = 0usize;
        for v in 0..self.adj.len() {
            for l in &self.adj[v] {
                if v < l.to as usize {
                    caps[next] = l.bandwidth * scale;
                    next += 1;
                }
            }
        }
        caps
    }

    /// Renders the graph in Graphviz DOT format (undirected), with link
    /// latencies as edge labels — handy for eyeballing small generated
    /// topologies (`dot -Tsvg`).
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = format!("graph {name} {{\n  node [shape=circle];\n");
        for v in self.nodes() {
            out.push_str(&format!("  n{v};\n"));
        }
        for v in self.nodes() {
            for l in self.neighbors(v) {
                if v < l.to {
                    out.push_str(&format!("  n{v} -- n{} [label=\"{}\"];\n", l.to, l.latency));
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod link_id_tests {
    use super::*;

    #[test]
    fn link_ids_are_dense_symmetric_and_insertion_ordered() {
        let mut g = Graph::with_nodes(4);
        g.add_link(2, 3, 1, 4.0); // id 2 (numbered at node 2)
        g.add_link(0, 1, 1, 2.0); // id 0 (numbered at node 0)
        g.add_link(1, 3, 1, 8.0); // id 1 (numbered at node 1)
        let ids = g.link_ids();
        // Both directions of each undirected link carry the same id.
        for v in g.nodes() {
            for (i, l) in g.neighbors(v).iter().enumerate() {
                let back = g.neighbors(l.to).iter().position(|b| b.to == v).unwrap();
                assert_eq!(ids[v as usize][i], ids[l.to as usize][back]);
            }
        }
        // Dense 0..link_count, assigned at the lower endpoint in
        // ascending node / insertion order.
        let mut all: Vec<u32> = ids.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all, vec![0, 1, 2]);
        assert_eq!(ids[0], vec![0]);
        assert_eq!(ids[1], vec![0, 1], "0-1 then 1-3, numbered at node 1");
        assert_eq!(ids[2][0], 2, "2-3 numbered last, at node 2");
    }

    #[test]
    fn link_capacities_align_with_ids() {
        let mut g = Graph::with_nodes(4);
        g.add_link(2, 3, 1, 4.0);
        g.add_link(0, 1, 1, 2.0);
        g.add_link(1, 3, 1, 8.0);
        let ids = g.link_ids();
        let caps = g.link_capacities(0.5);
        for v in g.nodes() {
            for (i, l) in g.neighbors(v).iter().enumerate() {
                assert_eq!(caps[ids[v as usize][i] as usize], l.bandwidth * 0.5);
            }
        }
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_output_lists_each_edge_once() {
        let mut g = Graph::with_nodes(3);
        g.add_link(0, 1, 5, 1.0);
        g.add_link(1, 2, 7, 1.0);
        let dot = g.to_dot("t");
        assert!(dot.starts_with("graph t {"));
        assert_eq!(
            dot.matches(" -- ").count(),
            2,
            "one line per undirected edge"
        );
        assert!(dot.contains("n0 -- n1 [label=\"5\"]"));
        assert!(dot.contains("n1 -- n2 [label=\"7\"]"));
        assert!(!dot.contains("n1 -- n0"), "no reverse duplicates");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_of_empty_graph_is_valid() {
        let g = Graph::with_nodes(0);
        let dot = g.to_dot("empty");
        assert!(dot.contains("graph empty {"));
        assert!(!dot.contains(" -- "));
    }
}
