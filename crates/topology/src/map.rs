//! Mapping Grid elements onto a network topology.
//!
//! The paper: *"To these topologies, we map elements such as routers,
//! schedulers, and resources to obtain Grid topologies. … The set of
//! resources are separated into non-overlapping clusters and each cluster is
//! coordinated by a scheduler."* (§3.1) and, for Case 3, *"Estimators are
//! the RMS nodes which receive the status updates from RP resources and
//! distribute to the scheduling decision makers."* (Fig. 4 caption).
//!
//! Mapping is split into two stages because routing depends on it:
//! [`GridMap::place`] chooses the role of every node purely from degrees
//! (no routing needed), which lets the caller build [`Routing`] *around*
//! the scheduler placement — the hierarchical model anchors at scheduler
//! nodes — and then [`GridMap::assemble`] does the routing-dependent
//! clustering. [`GridMap::build`] chains both for callers that already
//! hold routing state.

use crate::graph::{Graph, NodeId};
use crate::route::Routing;
use serde::{Deserialize, Serialize};

/// The function a topology node plays in the Grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeRole {
    /// Pure message forwarder.
    Router,
    /// An RMS scheduling decision maker; coordinates one resource cluster.
    Scheduler,
    /// An RMS status-update fan-in node (Case 3 scaling variable).
    Estimator,
    /// A managee (RP) compute resource.
    Resource,
}

/// The routing-independent half of a grid mapping: which node plays which
/// role. Produced by [`GridMap::place`], consumed by [`GridMap::assemble`]
/// (its `schedulers` are the anchor set for hierarchical routing).
#[derive(Debug, Clone)]
pub struct Placement {
    roles: Vec<NodeRole>,
    schedulers: Vec<NodeId>,
    estimators: Vec<NodeId>,
    resources: Vec<NodeId>,
}

impl Placement {
    /// Scheduler node ids in placement order — the hierarchical routing
    /// anchor set.
    pub fn schedulers(&self) -> &[NodeId] {
        &self.schedulers
    }

    /// Estimator node ids in placement order.
    pub fn estimators(&self) -> &[NodeId] {
        &self.estimators
    }
}

/// A Grid topology: node roles, scheduler clusters, and estimator
/// assignments layered over a [`Graph`] and its [`Routing`] state.
#[derive(Debug, Clone)]
pub struct GridMap {
    roles: Vec<NodeRole>,
    schedulers: Vec<NodeId>,
    estimators: Vec<NodeId>,
    resources: Vec<NodeId>,
    /// Per-node cluster index (`u32::MAX` where not applicable). Schedulers
    /// belong to their own cluster; resources to their coordinator's.
    cluster_idx: Vec<u32>,
    /// Per-node assigned estimator (`NodeId::MAX` = none / not a resource).
    estimator_of: Vec<NodeId>,
    /// Resources of each cluster, indexed by cluster index.
    clusters: Vec<Vec<NodeId>>,
}

impl GridMap {
    /// Stage 1: chooses node roles without consulting routing.
    ///
    /// * `n_schedulers` scheduler roles and `n_estimators` estimator roles
    ///   are placed on the best-connected nodes (degree-descending, ties by
    ///   id — deterministic), schedulers first. Placing coordinators at hubs
    ///   mirrors how Grid deployments co-locate middleware with
    ///   well-provisioned sites.
    /// * A `resource_fraction` of the remaining nodes (rounded up, in id
    ///   order) become resources; the rest are plain routers.
    ///
    /// Panics if `n_schedulers == 0` or the roles don't fit in the graph.
    pub fn place(
        g: &Graph,
        n_schedulers: usize,
        n_estimators: usize,
        resource_fraction: f64,
    ) -> Placement {
        let n = g.node_count();
        assert!(n_schedulers >= 1, "at least one scheduler required");
        assert!(
            n_schedulers + n_estimators < n,
            "not enough nodes for {n_schedulers} schedulers + {n_estimators} estimators"
        );
        assert!((0.0..=1.0).contains(&resource_fraction));

        // Degree-descending placement order.
        let mut by_degree: Vec<NodeId> = (0..n as NodeId).collect();
        by_degree.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));

        let mut roles = vec![NodeRole::Router; n];
        let schedulers: Vec<NodeId> = by_degree[..n_schedulers].to_vec();
        for &s in &schedulers {
            roles[s as usize] = NodeRole::Scheduler;
        }
        let estimators: Vec<NodeId> = by_degree[n_schedulers..n_schedulers + n_estimators].to_vec();
        for &e in &estimators {
            roles[e as usize] = NodeRole::Estimator;
        }

        let remaining: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| roles[v as usize] == NodeRole::Router)
            .collect();
        let n_resources = ((remaining.len() as f64) * resource_fraction).ceil() as usize;
        let resources: Vec<NodeId> = remaining[..n_resources.min(remaining.len())].to_vec();
        for &r in &resources {
            roles[r as usize] = NodeRole::Resource;
        }

        Placement {
            roles,
            schedulers,
            estimators,
            resources,
        }
    }

    /// Stage 2: the routing-dependent clustering.
    ///
    /// Every resource joins the cluster of its minimum-latency scheduler
    /// (under hierarchical routing that is its anchor, resolved in `O(1)`),
    /// and is assigned its minimum-latency estimator (if any exist).
    /// Clusters that come out empty steal the nearest spareable resource so
    /// every scheduler has somewhere to place LOCAL jobs.
    pub fn assemble(placement: Placement, routing: &Routing) -> GridMap {
        let Placement {
            roles,
            schedulers,
            estimators,
            resources,
        } = placement;
        let n = roles.len();
        let n_schedulers = schedulers.len();

        let mut cluster_idx = vec![u32::MAX; n];
        let mut clusters = vec![Vec::new(); n_schedulers];
        for (ci, &s) in schedulers.iter().enumerate() {
            cluster_idx[s as usize] = ci as u32;
        }
        for &r in &resources {
            // Under the anchor model the nearest scheduler *is* the anchor
            // (anchor index == placement index); exact routing scans.
            let ci = match routing.anchor_of(r) {
                Some(a) => a as usize,
                None => {
                    let coord = routing
                        .nearest(r, &schedulers)
                        .expect("graph must be connected so every resource reaches a scheduler");
                    cluster_idx[coord as usize] as usize
                }
            };
            cluster_idx[r as usize] = ci as u32;
            clusters[ci].push(r);
        }

        // Guarantee every cluster coordinates at least one resource: the
        // RMS policies all assume a scheduler has somewhere to place LOCAL
        // jobs. Nearest-scheduler assignment can leave a poorly placed
        // scheduler empty; steal, for each empty cluster, the resource
        // closest to its scheduler from a cluster that can spare one.
        if resources.len() >= n_schedulers {
            for ci in 0..n_schedulers {
                if !clusters[ci].is_empty() {
                    continue;
                }
                let sched = schedulers[ci];
                let victim = resources
                    .iter()
                    .copied()
                    .filter(|&r| clusters[cluster_idx[r as usize] as usize].len() > 1)
                    .min_by_key(|&r| (routing.latency(r, sched).unwrap_or(u64::MAX), r))
                    .expect("some cluster has more than one resource");
                let old = cluster_idx[victim as usize] as usize;
                clusters[old].retain(|&r| r != victim);
                clusters[ci].push(victim);
                cluster_idx[victim as usize] = ci as u32;
            }
        }

        let mut estimator_of = vec![NodeId::MAX; n];
        if !estimators.is_empty() {
            for &r in &resources {
                let e = routing
                    .nearest(r, &estimators)
                    .expect("graph must be connected");
                estimator_of[r as usize] = e;
            }
        }

        GridMap {
            roles,
            schedulers,
            estimators,
            resources,
            cluster_idx,
            estimator_of,
            clusters,
        }
    }

    /// Builds a Grid map: [`GridMap::place`] then [`GridMap::assemble`].
    /// Callers that need routing anchored at the scheduler placement (the
    /// large-scale path) run the two stages themselves.
    pub fn build(
        g: &Graph,
        routing: &Routing,
        n_schedulers: usize,
        n_estimators: usize,
        resource_fraction: f64,
    ) -> Self {
        let placement = GridMap::place(g, n_schedulers, n_estimators, resource_fraction);
        GridMap::assemble(placement, routing)
    }

    /// Role of node `v`.
    pub fn role(&self, v: NodeId) -> NodeRole {
        self.roles[v as usize]
    }

    /// All scheduler node ids, in placement order.
    pub fn schedulers(&self) -> &[NodeId] {
        &self.schedulers
    }

    /// All estimator node ids, in placement order.
    pub fn estimators(&self) -> &[NodeId] {
        &self.estimators
    }

    /// All resource node ids, in id order.
    pub fn resources(&self) -> &[NodeId] {
        &self.resources
    }

    /// Number of clusters (== number of schedulers).
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Cluster index of a scheduler or resource, `None` for routers and
    /// estimators.
    pub fn cluster_index(&self, v: NodeId) -> Option<usize> {
        let c = self.cluster_idx[v as usize];
        (c != u32::MAX).then_some(c as usize)
    }

    /// The resources coordinated by cluster `ci`.
    pub fn cluster_resources(&self, ci: usize) -> &[NodeId] {
        &self.clusters[ci]
    }

    /// The scheduler coordinating cluster `ci`.
    pub fn cluster_scheduler(&self, ci: usize) -> NodeId {
        self.schedulers[ci]
    }

    /// The scheduler coordinating resource `r`.
    pub fn scheduler_of(&self, r: NodeId) -> NodeId {
        let ci = self.cluster_index(r).expect("not a clustered node");
        self.schedulers[ci]
    }

    /// The estimator assigned to resource `r`, `None` if the RMS runs
    /// without estimators (updates then flow directly to schedulers).
    pub fn estimator_for(&self, r: NodeId) -> Option<NodeId> {
        let e = self.estimator_of[r as usize];
        (e != NodeId::MAX).then_some(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{self, LinkParams};
    use crate::routing::RoutingTable;
    use gridscale_desim::SimRng;

    fn sample(n_sched: usize, n_est: usize) -> (Graph, Routing, GridMap) {
        let mut rng = SimRng::new(42);
        let g = generate::barabasi_albert(120, 2, LinkParams::default(), &mut rng);
        let routing = Routing::Exact(RoutingTable::build(&g));
        let m = GridMap::build(&g, &routing, n_sched, n_est, 0.9);
        (g, routing, m)
    }

    #[test]
    fn role_partition_is_complete_and_disjoint() {
        let (g, _, m) = sample(5, 3);
        let mut counts = [0usize; 4];
        for v in g.nodes() {
            let i = match m.role(v) {
                NodeRole::Router => 0,
                NodeRole::Scheduler => 1,
                NodeRole::Estimator => 2,
                NodeRole::Resource => 3,
            };
            counts[i] += 1;
        }
        assert_eq!(counts[1], 5);
        assert_eq!(counts[2], 3);
        assert_eq!(counts[3], m.resources().len());
        assert_eq!(counts.iter().sum::<usize>(), 120);
        // 90% of the 112 non-RMS nodes, rounded up.
        assert_eq!(m.resources().len(), (112f64 * 0.9).ceil() as usize);
    }

    #[test]
    fn schedulers_placed_at_hubs() {
        let (g, _, m) = sample(4, 0);
        let min_sched_deg = m.schedulers().iter().map(|&s| g.degree(s)).min().unwrap();
        let max_res_deg = m.resources().iter().map(|&r| g.degree(r)).max().unwrap();
        assert!(
            min_sched_deg >= max_res_deg.min(min_sched_deg),
            "schedulers occupy the top-degree nodes"
        );
        // The single highest-degree node must be a scheduler.
        let hub = g
            .nodes()
            .max_by_key(|&v| (g.degree(v), std::cmp::Reverse(v)))
            .unwrap();
        assert_eq!(m.role(hub), NodeRole::Scheduler);
    }

    #[test]
    fn clusters_are_a_partition_of_resources() {
        let (_, _, m) = sample(6, 0);
        let mut seen: Vec<NodeId> = Vec::new();
        for ci in 0..m.cluster_count() {
            for &r in m.cluster_resources(ci) {
                assert_eq!(m.cluster_index(r), Some(ci));
                assert_eq!(m.scheduler_of(r), m.cluster_scheduler(ci));
                seen.push(r);
            }
        }
        seen.sort_unstable();
        let mut expect = m.resources().to_vec();
        expect.sort_unstable();
        assert_eq!(seen, expect, "non-overlapping and exhaustive");
    }

    #[test]
    fn resources_join_nearest_scheduler() {
        let (_, routing, m) = sample(5, 0);
        for &r in m.resources() {
            let coord = m.scheduler_of(r);
            let d_coord = routing.latency(r, coord).unwrap();
            for &s in m.schedulers() {
                assert!(d_coord <= routing.latency(r, s).unwrap());
            }
        }
    }

    #[test]
    fn hier_assembly_clusters_by_anchor() {
        let mut rng = SimRng::new(42);
        let g = generate::barabasi_albert(300, 2, LinkParams::default(), &mut rng);
        let placement = GridMap::place(&g, 6, 0, 0.9);
        let routing = Routing::Hier(crate::HierRouting::build(&g, placement.schedulers()));
        let m = GridMap::assemble(placement, &routing);
        let mut stolen = 0;
        for &r in m.resources() {
            let anchor = routing.anchor_of(r).unwrap() as usize;
            if m.cluster_index(r) != Some(anchor) {
                stolen += 1; // only empty-cluster stealing may move a resource
            }
        }
        assert!(
            stolen <= m.cluster_count(),
            "at most one steal per initially-empty cluster"
        );
        for ci in 0..m.cluster_count() {
            assert!(!m.cluster_resources(ci).is_empty());
        }
    }

    #[test]
    fn estimator_assignment_nearest_or_absent() {
        let (_, routing, m) = sample(4, 3);
        for &r in m.resources() {
            let e = m.estimator_for(r).expect("estimators exist");
            let de = routing.latency(r, e).unwrap();
            for &other in m.estimators() {
                assert!(de <= routing.latency(r, other).unwrap());
            }
        }
        let (_, _, m0) = sample(4, 0);
        assert!(m0
            .resources()
            .iter()
            .all(|&r| m0.estimator_for(r).is_none()));
    }

    #[test]
    fn single_scheduler_owns_everything() {
        let (_, _, m) = sample(1, 0);
        assert_eq!(m.cluster_count(), 1);
        assert_eq!(m.cluster_resources(0).len(), m.resources().len());
    }

    #[test]
    fn deterministic_under_same_inputs() {
        let (_, _, a) = sample(5, 2);
        let (_, _, b) = sample(5, 2);
        assert_eq!(a.schedulers(), b.schedulers());
        assert_eq!(a.estimators(), b.estimators());
        assert_eq!(a.resources(), b.resources());
    }

    #[test]
    fn no_cluster_left_empty() {
        // Many schedulers relative to resources stresses the rebalancing.
        let mut rng = SimRng::new(9);
        let g = generate::barabasi_albert(60, 2, LinkParams::default(), &mut rng);
        let routing = Routing::Exact(RoutingTable::build(&g));
        let m = GridMap::build(&g, &routing, 20, 0, 0.9);
        for ci in 0..m.cluster_count() {
            assert!(
                !m.cluster_resources(ci).is_empty(),
                "cluster {ci} has no resources"
            );
        }
        // Partition still exhaustive after rebalancing.
        let total: usize = (0..m.cluster_count())
            .map(|ci| m.cluster_resources(ci).len())
            .sum();
        assert_eq!(total, m.resources().len());
    }

    #[test]
    #[should_panic]
    fn zero_schedulers_panics() {
        let g = generate::ring(10, LinkParams::default());
        let _ = GridMap::place(&g, 0, 0, 1.0);
    }
}
