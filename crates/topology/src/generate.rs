//! Synthetic Internet-like topology generators (Mercator substitute).
//!
//! Mercator [Govindan & Tangmunarunkit, INFOCOM 2000] produced router-level
//! Internet maps whose salient structural properties are a heavy-tailed
//! degree distribution and hierarchical locality. The generators here
//! reproduce those properties synthetically; `DESIGN.md` documents the
//! substitution.
//!
//! All generators draw per-link latency uniformly from a configurable range
//! and assign a constant bandwidth, matching the paper's "network links have
//! finite bandwidth and non-zero latencies".

use crate::graph::{Graph, NodeId};
use gridscale_desim::SimRng;

/// Link-attribute configuration shared by all generators.
#[derive(Debug, Clone, Copy)]
pub struct LinkParams {
    /// Minimum per-link latency (ticks), inclusive.
    pub min_latency: u64,
    /// Maximum per-link latency (ticks), inclusive.
    pub max_latency: u64,
    /// Link bandwidth in payload units per tick.
    pub bandwidth: f64,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            min_latency: 1,
            max_latency: 10,
            bandwidth: 100.0,
        }
    }
}

impl LinkParams {
    fn draw_latency(&self, rng: &mut SimRng) -> u64 {
        rng.int_range(self.min_latency, self.max_latency)
    }
}

/// Barabási–Albert preferential attachment: `n` nodes, each new node
/// attaching to `m` existing nodes with probability proportional to degree.
///
/// Produces the power-law degree distribution observed in Mercator maps.
/// Panics if `n < m + 1` or `m == 0`.
pub fn barabasi_albert(n: usize, m: usize, lp: LinkParams, rng: &mut SimRng) -> Graph {
    assert!(m >= 1, "attachment count must be positive");
    assert!(n > m, "need more nodes than the attachment count");
    let mut g = Graph::with_nodes(n);
    // Repeated-endpoint list: picking uniformly from it is degree-biased.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);

    // Seed clique over the first m+1 nodes.
    for a in 0..=(m as NodeId) {
        for b in (a + 1)..=(m as NodeId) {
            g.add_link(a, b, lp.draw_latency(rng), lp.bandwidth);
            endpoints.push(a);
            endpoints.push(b);
        }
    }

    for v in (m + 1)..n {
        let v = v as NodeId;
        let mut attached = 0usize;
        let mut guard = 0usize;
        while attached < m {
            guard += 1;
            let target = if guard > 50 * m {
                // Degenerate corner (tiny graphs): fall back to uniform.
                rng.index(v as usize) as NodeId
            } else {
                endpoints[rng.index(endpoints.len())]
            };
            if target != v && g.add_link(v, target, lp.draw_latency(rng), lp.bandwidth) {
                endpoints.push(v);
                endpoints.push(target);
                attached += 1;
            }
        }
    }
    debug_assert!(g.is_connected());
    g
}

/// Waxman random graph on the unit square: nodes are random points; the
/// probability of a link is `beta * exp(-d / (alpha * L))` where `d` is
/// Euclidean distance and `L = sqrt(2)` is the diameter. Link latency is
/// proportional to distance, scaled into `[min_latency, max_latency]`.
///
/// The result is post-processed to be connected (components are joined by
/// their closest node pair), since the simulator requires full reachability.
pub fn waxman(n: usize, alpha: f64, beta: f64, lp: LinkParams, rng: &mut SimRng) -> Graph {
    assert!(n >= 1);
    assert!(alpha > 0.0 && (0.0..=1.0).contains(&beta));
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.uniform01(), rng.uniform01())).collect();
    let diag = std::f64::consts::SQRT_2;
    let mut g = Graph::with_nodes(n);
    let lat_of = |d: f64| -> u64 {
        let span = (lp.max_latency - lp.min_latency) as f64;
        (lp.min_latency as f64 + span * (d / diag).min(1.0)).round() as u64
    };
    for a in 0..n {
        for b in (a + 1)..n {
            let dx = pts[a].0 - pts[b].0;
            let dy = pts[a].1 - pts[b].1;
            let d = (dx * dx + dy * dy).sqrt();
            if rng.chance(beta * (-d / (alpha * diag)).exp()) {
                g.add_link(a as NodeId, b as NodeId, lat_of(d), lp.bandwidth);
            }
        }
    }
    // Join components by closest pairs until connected.
    loop {
        let comps = g.components();
        if comps.len() <= 1 {
            break;
        }
        let base = &comps[0];
        let other = &comps[1];
        let mut best = (f64::INFINITY, base[0], other[0]);
        for &a in base {
            for &b in other {
                let dx = pts[a as usize].0 - pts[b as usize].0;
                let dy = pts[a as usize].1 - pts[b as usize].1;
                let d = (dx * dx + dy * dy).sqrt();
                if d < best.0 {
                    best = (d, a, b);
                }
            }
        }
        g.add_link(best.1, best.2, lat_of(best.0), lp.bandwidth);
    }
    g
}

/// Transit-stub hierarchy: `transits` transit domains of `transit_size`
/// routers each (ring + chords, inter-transit mesh), with `stubs_per_transit`
/// stub domains of `stub_size` nodes hanging off each transit router in
/// round-robin. Stub-internal links are cheap; transit links are faster but
/// longer-haul (latency at the top of the range).
pub fn transit_stub(
    transits: usize,
    transit_size: usize,
    stubs_per_transit: usize,
    stub_size: usize,
    lp: LinkParams,
    rng: &mut SimRng,
) -> Graph {
    assert!(transits >= 1 && transit_size >= 1 && stub_size >= 1);
    let mut g = Graph::with_nodes(0);
    let mut transit_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(transits);

    for _ in 0..transits {
        let ids: Vec<NodeId> = (0..transit_size).map(|_| g.add_node()).collect();
        // Ring within the transit domain.
        for i in 0..ids.len() {
            if ids.len() > 1 {
                let a = ids[i];
                let b = ids[(i + 1) % ids.len()];
                g.add_link(a, b, lp.max_latency.max(1), lp.bandwidth * 4.0);
            }
        }
        // A few chords for redundancy.
        for _ in 0..(transit_size / 2) {
            if ids.len() > 2 {
                let a = ids[rng.index(ids.len())];
                let b = ids[rng.index(ids.len())];
                if a != b {
                    g.add_link(a, b, lp.max_latency.max(1), lp.bandwidth * 4.0);
                }
            }
        }
        transit_nodes.push(ids);
    }
    // Mesh between transit domains (one link per pair).
    for i in 0..transits {
        for j in (i + 1)..transits {
            let a = transit_nodes[i][rng.index(transit_size)];
            let b = transit_nodes[j][rng.index(transit_size)];
            g.add_link(a, b, lp.max_latency.max(1) * 2, lp.bandwidth * 8.0);
        }
    }
    // Stub domains.
    #[allow(clippy::needless_range_loop)]
    for t in 0..transits {
        for s in 0..stubs_per_transit {
            let gateway = transit_nodes[t][s % transit_size];
            let stub: Vec<NodeId> = (0..stub_size).map(|_| g.add_node()).collect();
            // Star + ring inside the stub for small diameter.
            for i in 0..stub.len() {
                if i > 0 {
                    g.add_link(stub[0], stub[i], lp.draw_latency(rng), lp.bandwidth);
                }
                if stub.len() > 2 {
                    let nxt = stub[(i + 1) % stub.len()];
                    if stub[i] != nxt {
                        g.add_link(stub[i], nxt, lp.draw_latency(rng), lp.bandwidth);
                    }
                }
            }
            g.add_link(gateway, stub[0], lp.draw_latency(rng), lp.bandwidth * 2.0);
        }
    }
    debug_assert!(g.is_connected());
    g
}

/// A ring of `n` nodes — a tiny deterministic baseline for tests.
pub fn ring(n: usize, lp: LinkParams) -> Graph {
    let mut g = Graph::with_nodes(n);
    if n < 2 {
        return g;
    }
    for i in 0..n {
        let a = i as NodeId;
        let b = ((i + 1) % n) as NodeId;
        if a != b {
            g.add_link(a, b, lp.min_latency.max(1), lp.bandwidth);
        }
    }
    g
}

/// A complete graph on `n` nodes — a tiny deterministic baseline for tests.
pub fn full_mesh(n: usize, lp: LinkParams) -> Graph {
    let mut g = Graph::with_nodes(n);
    for a in 0..n {
        for b in (a + 1)..n {
            g.add_link(
                a as NodeId,
                b as NodeId,
                lp.min_latency.max(1),
                lp.bandwidth,
            );
        }
    }
    g
}

/// A star with node 0 at the hub — a tiny deterministic baseline for tests
/// and the natural shape for the CENTRAL RMS.
pub fn star(n: usize, lp: LinkParams) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_link(0, i as NodeId, lp.min_latency.max(1), lp.bandwidth);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(1234)
    }

    #[test]
    fn ba_connected_with_expected_edges() {
        let g = barabasi_albert(200, 2, LinkParams::default(), &mut rng());
        assert_eq!(g.node_count(), 200);
        assert!(g.is_connected());
        // Seed clique (3 edges for m=2) + 2 per additional node.
        assert_eq!(g.link_count(), 3 + (200 - 3) * 2);
    }

    #[test]
    fn ba_degree_is_heavy_tailed() {
        let g = barabasi_albert(500, 2, LinkParams::default(), &mut rng());
        let dist = g.degree_distribution();
        let max_deg = dist.len() - 1;
        // A hub far above the mean degree (~4) must exist.
        assert!(max_deg > 15, "max degree {max_deg} too small for BA");
        // ... and low-degree nodes must dominate.
        let low: usize = dist.iter().take(5).sum();
        assert!(low > 250, "low-degree mass {low} too small");
    }

    #[test]
    fn ba_deterministic_under_seed() {
        let a = barabasi_albert(100, 2, LinkParams::default(), &mut SimRng::new(7));
        let b = barabasi_albert(100, 2, LinkParams::default(), &mut SimRng::new(7));
        assert_eq!(a.link_count(), b.link_count());
        for n in a.nodes() {
            assert_eq!(a.degree(n), b.degree(n));
        }
    }

    #[test]
    #[should_panic]
    fn ba_rejects_too_few_nodes() {
        barabasi_albert(2, 2, LinkParams::default(), &mut rng());
    }

    #[test]
    fn waxman_connected() {
        let g = waxman(150, 0.2, 0.3, LinkParams::default(), &mut rng());
        assert_eq!(g.node_count(), 150);
        assert!(g.is_connected());
        assert!(g.link_count() >= 149, "at least a spanning tree");
    }

    #[test]
    fn waxman_latency_in_range() {
        let lp = LinkParams {
            min_latency: 2,
            max_latency: 20,
            bandwidth: 10.0,
        };
        let g = waxman(60, 0.3, 0.4, lp, &mut rng());
        for n in g.nodes() {
            for l in g.neighbors(n) {
                assert!((2..=20).contains(&l.latency), "latency {}", l.latency);
            }
        }
    }

    #[test]
    fn transit_stub_structure() {
        let g = transit_stub(3, 4, 2, 5, LinkParams::default(), &mut rng());
        // 3*4 transit + 3*2*5 stub nodes.
        assert_eq!(g.node_count(), 12 + 30);
        assert!(g.is_connected());
    }

    #[test]
    fn transit_stub_single_domain() {
        let g = transit_stub(1, 1, 1, 3, LinkParams::default(), &mut rng());
        assert_eq!(g.node_count(), 4);
        assert!(g.is_connected());
    }

    #[test]
    fn ring_and_mesh_and_star() {
        let lp = LinkParams::default();
        let r = ring(6, lp);
        assert_eq!(r.link_count(), 6);
        assert!(r.nodes().all(|n| r.degree(n) == 2));

        let m = full_mesh(5, lp);
        assert_eq!(m.link_count(), 10);
        assert!(m.nodes().all(|n| m.degree(n) == 4));

        let s = star(5, lp);
        assert_eq!(s.link_count(), 4);
        assert_eq!(s.degree(0), 4);
        assert!((1..5).all(|n| s.degree(n as NodeId) == 1));
    }

    #[test]
    fn tiny_baselines_do_not_panic() {
        let lp = LinkParams::default();
        assert_eq!(ring(0, lp).node_count(), 0);
        assert_eq!(ring(1, lp).link_count(), 0);
        assert_eq!(full_mesh(1, lp).link_count(), 0);
        assert_eq!(star(1, lp).link_count(), 0);
        assert_eq!(waxman(1, 0.2, 0.3, lp, &mut rng()).node_count(), 1);
    }
}
