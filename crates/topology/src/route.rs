//! The unified routing front: exact all-pairs tables at paper scale,
//! anchor-based hierarchical routing beyond it.
//!
//! Everything downstream of topology construction (the link fabric, the
//! grid map, the placement layout) asks the same questions — latency,
//! hops, nearest candidate — so they program against [`Routing`] and stay
//! oblivious to which model answers. The switch is purely a function of
//! graph size: [`Routing::HIER_THRESHOLD`] keeps the paper's
//! configurations (≤ ~1020 nodes) on the bit-exact [`RoutingTable`] they
//! have always used, while 10⁵–10⁶-node grids get the `O(n + S²)`
//! [`HierRouting`] model that actually fits in memory.

use crate::graph::{Graph, NodeId};
use crate::hier::HierRouting;
use crate::routing::RoutingTable;

/// Routing state for one graph: exact or hierarchical (see module docs).
pub enum Routing {
    /// All-pairs Dijkstra tables (`~13 n²` bytes) — the paper-scale model.
    Exact(RoutingTable),
    /// Anchor-based two-level model (`O(n + S²)` bytes) — the large-scale
    /// model.
    Hier(HierRouting),
}

impl Routing {
    /// Node-count boundary above which [`Routing::build_auto`] switches to
    /// the hierarchical model (the exact table would cost ≥ ~55 MB there).
    pub const HIER_THRESHOLD: usize = 2048;

    /// Builds exact tables below [`Routing::HIER_THRESHOLD`] nodes, the
    /// anchor model at or above it. `anchors` are the scheduler nodes in
    /// placement order (ignored by the exact model).
    pub fn build_auto(g: &Graph, anchors: &[NodeId]) -> Routing {
        if g.node_count() < Self::HIER_THRESHOLD {
            Routing::Exact(RoutingTable::build(g))
        } else {
            Routing::Hier(HierRouting::build(g, anchors))
        }
    }

    /// True when the hierarchical model answers queries.
    pub fn is_hier(&self) -> bool {
        matches!(self, Routing::Hier(_))
    }

    /// Number of nodes the routing state covers.
    pub fn node_count(&self) -> usize {
        match self {
            Routing::Exact(rt) => rt.node_count(),
            Routing::Hier(hr) => hr.node_count(),
        }
    }

    /// Routed (or modelled) latency in ticks, `None` if unreachable.
    #[inline]
    pub fn latency(&self, src: NodeId, dst: NodeId) -> Option<u64> {
        match self {
            Routing::Exact(rt) => rt.latency(src, dst),
            Routing::Hier(hr) => hr.latency(src, dst),
        }
    }

    /// Hop count along the routed (or modelled) path.
    #[inline]
    pub fn hops(&self, src: NodeId, dst: NodeId) -> Option<u16> {
        match self {
            Routing::Exact(rt) => rt.hops(src, dst),
            Routing::Hier(hr) => hr.hops(src, dst),
        }
    }

    /// Among `candidates`, the one with least latency from `src` (ties →
    /// lowest id). `None` if no candidate is reachable.
    pub fn nearest(&self, src: NodeId, candidates: &[NodeId]) -> Option<NodeId> {
        match self {
            Routing::Exact(rt) => rt.nearest(src, candidates),
            Routing::Hier(hr) => candidates
                .iter()
                .copied()
                .filter_map(|c| hr.latency(src, c).map(|d| (d, c)))
                .min()
                .map(|(_, c)| c),
        }
    }

    /// Sorts `candidates` in place by `(latency from src, node id)`,
    /// nearest first; unreachable candidates sink to the end.
    pub fn rank_candidates(&self, src: NodeId, candidates: &mut [NodeId]) {
        match self {
            Routing::Exact(rt) => rt.rank_candidates(src, candidates),
            Routing::Hier(hr) => {
                candidates.sort_by_key(|&c| (hr.latency(src, c).unwrap_or(u64::MAX), c));
            }
        }
    }

    /// Mean pair latency — exact over all ordered pairs, or the anchor
    /// model's `O(n + S²)` estimate.
    pub fn mean_pair_latency(&self) -> f64 {
        match self {
            Routing::Exact(rt) => rt.mean_pair_latency(),
            Routing::Hier(hr) => hr.mean_pair_latency(),
        }
    }

    /// The anchor (scheduler) index node `v` is assigned to — `None` under
    /// exact routing, where no anchor decomposition exists.
    pub fn anchor_of(&self, v: NodeId) -> Option<u32> {
        match self {
            Routing::Exact(_) => None,
            Routing::Hier(hr) => hr.anchor_of(v),
        }
    }

    /// Anchor-to-anchor latency (a lower bound on any cross-region
    /// latency) — `None` under exact routing.
    pub fn anchor_latency(&self, a: u32, b: u32) -> Option<u64> {
        match self {
            Routing::Exact(_) => None,
            Routing::Hier(hr) => hr.anchor_latency(a, b),
        }
    }

    /// Approximate resident bytes of the routing state (capacity-based;
    /// telemetry only — this is what the `n²` vs `O(n + S²)` trade-off
    /// looks like in practice).
    pub fn approx_bytes(&self) -> usize {
        match self {
            // dist (8) + hops (2) + first (4) per ordered pair, ~n² pairs.
            Routing::Exact(rt) => rt.node_count() * rt.node_count() * 14,
            // per node: anchor_idx (4) + up_dist (8) + up_hops (2);
            // per anchor pair: d (8) + h (2).
            Routing::Hier(hr) => {
                let s = hr.anchor_count();
                hr.node_count() * 14 + s * s * 10
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{self, LinkParams};
    use gridscale_desim::SimRng;

    #[test]
    fn auto_picks_exact_below_threshold() {
        let mut rng = SimRng::new(1);
        let g = generate::barabasi_albert(64, 2, LinkParams::default(), &mut rng);
        let r = Routing::build_auto(&g, &[0, 1]);
        assert!(!r.is_hier());
        assert!(r.anchor_of(5).is_none());
        assert_eq!(r.node_count(), 64);
    }

    #[test]
    fn hier_agrees_with_exact_on_shared_queries() {
        // Force both models on one graph: hier must stay a valid latency
        // model (reachability, symmetry, anchor lower bound).
        let mut rng = SimRng::new(8);
        let g = generate::barabasi_albert(120, 2, LinkParams::default(), &mut rng);
        let exact = Routing::Exact(crate::RoutingTable::build(&g));
        let hier = Routing::Hier(crate::HierRouting::build(&g, &[0, 3, 11]));
        for (s, t) in [(0u32, 119u32), (5, 50), (12, 13)] {
            let e = exact.latency(s, t).unwrap();
            let h = hier.latency(s, t).unwrap();
            assert!(h >= e, "hier model can never beat the true shortest path");
            assert_eq!(hier.latency(t, s), Some(h), "symmetric");
        }
        assert_eq!(hier.nearest(40, &[0, 3, 11]), {
            let a = hier.anchor_of(40).unwrap();
            Some([0u32, 3, 11][a as usize])
        });
    }
}
