//! Anchor-based hierarchical routing for large graphs.
//!
//! The exact [`RoutingTable`](crate::RoutingTable) stores all-pairs state
//! in `~13 n²` bytes — perfect at the paper's ≤1020 nodes, hopeless at
//! 10⁵–10⁶. [`HierRouting`] replaces it with a two-level model built
//! around the scheduler placement:
//!
//! * every node is assigned to its nearest **anchor** (a scheduler node)
//!   by one multi-source Dijkstra over a CSR-flattened adjacency;
//! * anchors are connected by an **overlay graph** whose edge `A–B` is the
//!   cheapest boundary crossing `up(u) + w(u,v) + up(v)` over all links
//!   `(u,v)` with `anchor(u) = A, anchor(v) = B`;
//! * the routed latency is `up(u) + D(anchor(u), anchor(v)) + up(v)`
//!   (just `up(u) + up(v)` inside one region).
//!
//! Memory is `O(n)` for the per-node tables plus `O(S²)` for the anchor
//! matrix — ~20 MB at a million nodes with a few hundred schedulers. The
//! result is a deterministic latency *model*, not the exact shortest
//! path; by construction it never undercuts the anchor-to-anchor
//! distance, which is what the sharded simulator's conservative lookahead
//! leans on ([`HierRouting::anchor_latency`] is a lower bound on any
//! cross-region latency).

use crate::graph::{Graph, NodeId};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

const UNREACHABLE: u64 = u64::MAX;

/// Two-level anchor routing state (see module docs).
pub struct HierRouting {
    n: usize,
    /// Anchor (scheduler) nodes in placement order; anchor index == the
    /// caller's scheduler index.
    anchors: Vec<NodeId>,
    /// Node → index into `anchors` of its nearest anchor.
    anchor_idx: Vec<u32>,
    /// Node → latency to its anchor.
    up_dist: Vec<u64>,
    /// Node → hops to its anchor.
    up_hops: Vec<u16>,
    /// Row-major `S × S` anchor-to-anchor latency over the overlay.
    d: Vec<u64>,
    /// Row-major `S × S` anchor-to-anchor hops.
    h: Vec<u16>,
}

impl HierRouting {
    /// Builds the two-level model for `g` with `anchors` (the scheduler
    /// nodes, in placement order). Panics if `anchors` is empty.
    pub fn build(g: &Graph, anchors: &[NodeId]) -> HierRouting {
        assert!(
            !anchors.is_empty(),
            "hier routing needs at least one anchor"
        );
        let n = g.node_count();
        let s = anchors.len();

        // CSR flatten: one pass to keep the Dijkstra cache-friendly and
        // the per-edge footprint at 12 bytes (u32 target + u64 latency
        // packed as u32 where it fits — link latencies are single-digit).
        let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
        let mut edge_to: Vec<u32> = Vec::with_capacity(2 * g.link_count());
        let mut edge_lat: Vec<u32> = Vec::with_capacity(2 * g.link_count());
        offsets.push(0);
        for v in 0..n as NodeId {
            for l in g.neighbors(v) {
                edge_to.push(l.to);
                edge_lat.push(u32::try_from(l.latency).expect("link latency fits u32"));
            }
            offsets.push(edge_to.len() as u32);
        }

        // Multi-source Dijkstra: every anchor starts at distance 0; ties
        // between equal-latency anchors break toward fewer hops, then the
        // lower anchor index — deterministic.
        let mut anchor_idx = vec![u32::MAX; n];
        let mut up_dist = vec![UNREACHABLE; n];
        let mut up_hops = vec![u16::MAX; n];
        let mut heap: BinaryHeap<Reverse<(u64, u16, u32, NodeId)>> = BinaryHeap::new();
        for (ai, &a) in anchors.iter().enumerate() {
            up_dist[a as usize] = 0;
            up_hops[a as usize] = 0;
            anchor_idx[a as usize] = ai as u32;
            heap.push(Reverse((0, 0, ai as u32, a)));
        }
        while let Some(Reverse((du, hu, au, u))) = heap.pop() {
            let ui = u as usize;
            if (du, hu, au) > (up_dist[ui], up_hops[ui], anchor_idx[ui]) {
                continue; // stale
            }
            let (lo, hi) = (offsets[ui] as usize, offsets[ui + 1] as usize);
            for e in lo..hi {
                let v = edge_to[e] as usize;
                let dv = du.saturating_add(edge_lat[e] as u64);
                let hv = hu.saturating_add(1);
                if (dv, hv, au) < (up_dist[v], up_hops[v], anchor_idx[v]) {
                    up_dist[v] = dv;
                    up_hops[v] = hv;
                    anchor_idx[v] = au;
                    heap.push(Reverse((dv, hv, au, v as NodeId)));
                }
            }
        }

        // Overlay edges: for every boundary link, the crossing cost
        // between the two regions. BTreeMap keeps the reduction and the
        // later adjacency iteration deterministic.
        let mut boundary: BTreeMap<(u32, u32), (u64, u16)> = BTreeMap::new();
        for u in 0..n {
            let au = anchor_idx[u];
            if au == u32::MAX {
                continue;
            }
            let (lo, hi) = (offsets[u] as usize, offsets[u + 1] as usize);
            for e in lo..hi {
                let v = edge_to[e] as usize;
                let av = anchor_idx[v];
                if av == u32::MAX || av == au {
                    continue;
                }
                let w = up_dist[u]
                    .saturating_add(edge_lat[e] as u64)
                    .saturating_add(up_dist[v]);
                let hops = up_hops[u].saturating_add(1).saturating_add(up_hops[v]);
                let key = (au.min(av), au.max(av));
                let entry = boundary.entry(key).or_insert((UNREACHABLE, u16::MAX));
                if (w, hops) < *entry {
                    *entry = (w, hops);
                }
            }
        }
        let mut overlay: Vec<Vec<(u32, u64, u16)>> = vec![Vec::new(); s];
        for (&(a, b), &(w, hops)) in &boundary {
            overlay[a as usize].push((b, w, hops));
            overlay[b as usize].push((a, w, hops));
        }

        // One Dijkstra per anchor over the (tiny) overlay.
        let mut d = vec![UNREACHABLE; s * s];
        let mut h = vec![u16::MAX; s * s];
        let mut oheap: BinaryHeap<Reverse<(u64, u16, u32)>> = BinaryHeap::new();
        for src in 0..s {
            let row = src * s;
            let dd = &mut d[row..row + s];
            let hh = &mut h[row..row + s];
            dd[src] = 0;
            hh[src] = 0;
            oheap.clear();
            oheap.push(Reverse((0, 0, src as u32)));
            while let Some(Reverse((du, hu, u))) = oheap.pop() {
                if (du, hu) > (dd[u as usize], hh[u as usize]) {
                    continue;
                }
                for &(v, w, hops) in &overlay[u as usize] {
                    let dv = du.saturating_add(w);
                    let hv = hu.saturating_add(hops);
                    if (dv, hv) < (dd[v as usize], hh[v as usize]) {
                        dd[v as usize] = dv;
                        hh[v as usize] = hv;
                        oheap.push(Reverse((dv, hv, v)));
                    }
                }
            }
        }

        HierRouting {
            n,
            anchors: anchors.to_vec(),
            anchor_idx,
            up_dist,
            up_hops,
            d,
            h,
        }
    }

    /// Number of nodes the model was built for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of anchors (== schedulers).
    pub fn anchor_count(&self) -> usize {
        self.anchors.len()
    }

    /// The anchor index (== scheduler index) of node `v`; `None` only for
    /// nodes disconnected from every anchor.
    pub fn anchor_of(&self, v: NodeId) -> Option<u32> {
        let a = self.anchor_idx[v as usize];
        (a != u32::MAX).then_some(a)
    }

    /// Latency from node `v` up to its anchor.
    pub fn up_latency(&self, v: NodeId) -> Option<u64> {
        let d = self.up_dist[v as usize];
        (d != UNREACHABLE).then_some(d)
    }

    /// Anchor-to-anchor latency over the overlay — a lower bound on the
    /// modelled latency between any node anchored at `a` and any node
    /// anchored at `b`.
    pub fn anchor_latency(&self, a: u32, b: u32) -> Option<u64> {
        let d = self.d[a as usize * self.anchors.len() + b as usize];
        (d != UNREACHABLE).then_some(d)
    }

    /// Modelled latency between two nodes (see module docs).
    pub fn latency(&self, src: NodeId, dst: NodeId) -> Option<u64> {
        if src == dst {
            return Some(0);
        }
        let (au, av) = (self.anchor_idx[src as usize], self.anchor_idx[dst as usize]);
        if au == u32::MAX || av == u32::MAX {
            return None;
        }
        let up = self.up_dist[src as usize].saturating_add(self.up_dist[dst as usize]);
        if au == av {
            return Some(up);
        }
        let mid = self.d[au as usize * self.anchors.len() + av as usize];
        (mid != UNREACHABLE).then(|| up.saturating_add(mid))
    }

    /// Modelled hop count between two nodes.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> Option<u16> {
        if src == dst {
            return Some(0);
        }
        let (au, av) = (self.anchor_idx[src as usize], self.anchor_idx[dst as usize]);
        if au == u32::MAX || av == u32::MAX {
            return None;
        }
        let up = self.up_hops[src as usize].saturating_add(self.up_hops[dst as usize]);
        if au == av {
            return Some(up.max(1));
        }
        let mid = self.h[au as usize * self.anchors.len() + av as usize];
        (mid != u16::MAX).then(|| up.saturating_add(mid))
    }

    /// Mean modelled latency: mean anchor-pair distance plus twice the
    /// mean up-distance — the `O(n + S²)` stand-in for the exact table's
    /// all-pairs mean.
    pub fn mean_pair_latency(&self) -> f64 {
        let s = self.anchors.len();
        let mut sum = 0u128;
        let mut cnt = 0u64;
        for a in 0..s {
            for b in 0..s {
                if a != b {
                    let d = self.d[a * s + b];
                    if d != UNREACHABLE {
                        sum += d as u128;
                        cnt += 1;
                    }
                }
            }
        }
        let mid = if cnt == 0 {
            0.0
        } else {
            sum as f64 / cnt as f64
        };
        let mut up_sum = 0u128;
        let mut up_cnt = 0u64;
        for &u in &self.up_dist {
            if u != UNREACHABLE {
                up_sum += u as u128;
                up_cnt += 1;
            }
        }
        let up = if up_cnt == 0 {
            0.0
        } else {
            up_sum as f64 / up_cnt as f64
        };
        mid + 2.0 * up
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{self, LinkParams};
    use crate::routing::RoutingTable;
    use gridscale_desim::SimRng;

    #[test]
    fn line_anchors_and_latencies() {
        // 0-1-2-3 latencies 1,2,3; anchors at 0 and 3.
        let mut g = Graph::with_nodes(4);
        g.add_link(0, 1, 1, 1.0);
        g.add_link(1, 2, 2, 1.0);
        g.add_link(2, 3, 3, 1.0);
        let hr = HierRouting::build(&g, &[0, 3]);
        assert_eq!(hr.anchor_of(0), Some(0));
        assert_eq!(hr.anchor_of(1), Some(0), "1 is nearer anchor 0 (1 < 5)");
        assert_eq!(
            hr.anchor_of(2),
            Some(1),
            "distance ties (3 = 3) break on hops"
        );
        assert_eq!(hr.up_latency(1), Some(1));
        // Overlay edge 0-3 crosses the 1-2 boundary link: 1 + 2 + 3 = 6.
        assert_eq!(hr.anchor_latency(0, 1), Some(6));
        assert_eq!(hr.latency(0, 3), Some(6));
        // Same-region pair: up(0) + up(1).
        assert_eq!(hr.latency(0, 1), Some(1));
        assert_eq!(hr.latency(2, 2), Some(0));
    }

    #[test]
    fn anchor_latency_lower_bounds_cross_region_pairs() {
        let mut rng = SimRng::new(31);
        let g = generate::barabasi_albert(200, 2, LinkParams::default(), &mut rng);
        let anchors: Vec<NodeId> = vec![0, 7, 33, 120];
        let hr = HierRouting::build(&g, &anchors);
        for u in 0..200u32 {
            for v in [3u32, 50, 111, 199] {
                let (au, av) = (hr.anchor_of(u).unwrap(), hr.anchor_of(v).unwrap());
                if au == av {
                    continue;
                }
                assert!(
                    hr.latency(u, v).unwrap() >= hr.anchor_latency(au, av).unwrap(),
                    "modelled latency {u}->{v} undercuts its anchor distance"
                );
            }
        }
    }

    #[test]
    fn model_never_undercuts_exact_anchor_distance() {
        // The overlay distance between two anchors can never beat the true
        // shortest path between them (every overlay edge is a real walk).
        let mut rng = SimRng::new(77);
        let g = generate::waxman(60, 0.3, 0.4, LinkParams::default(), &mut rng);
        let rt = RoutingTable::build(&g);
        let anchors: Vec<NodeId> = vec![2, 17, 40];
        let hr = HierRouting::build(&g, &anchors);
        for (ai, &a) in anchors.iter().enumerate() {
            for (bi, &b) in anchors.iter().enumerate() {
                if ai == bi {
                    continue;
                }
                assert!(
                    hr.anchor_latency(ai as u32, bi as u32).unwrap() >= rt.latency(a, b).unwrap(),
                    "overlay found an impossible shortcut {a}->{b}"
                );
            }
        }
    }

    #[test]
    fn deterministic_under_same_inputs() {
        let mut rng = SimRng::new(5);
        let g = generate::barabasi_albert(150, 2, LinkParams::default(), &mut rng);
        let a = HierRouting::build(&g, &[0, 9, 70]);
        let b = HierRouting::build(&g, &[0, 9, 70]);
        assert_eq!(a.anchor_idx, b.anchor_idx);
        assert_eq!(a.up_dist, b.up_dist);
        assert_eq!(a.d, b.d);
    }

    #[test]
    fn single_anchor_degenerates_to_up_distances() {
        let mut g = Graph::with_nodes(3);
        g.add_link(0, 1, 4, 1.0);
        g.add_link(1, 2, 5, 1.0);
        let hr = HierRouting::build(&g, &[1]);
        assert_eq!(hr.latency(0, 2), Some(9));
        assert_eq!(hr.hops(0, 2), Some(2));
        assert_eq!(hr.mean_pair_latency(), 2.0 * (4.0 + 5.0) / 3.0);
    }
}
