//! # gridscale-topology
//!
//! Network topology generation and routing for the gridscale Grid simulator.
//!
//! The paper extracts router-level Internet topologies from the **Mercator**
//! topology mapper and maps routers, schedulers, and resources onto them,
//! routing messages with an **OSPF-like** algorithm. Mercator maps are not
//! redistributable, so this crate substitutes synthetic generators that
//! reproduce the two properties the simulation is sensitive to:
//!
//! * **power-law degree distribution** — Barabási–Albert preferential
//!   attachment ([`generate::barabasi_albert`]);
//! * **geographic locality / hierarchy** — Waxman random graphs
//!   ([`generate::waxman`]) and transit-stub hierarchies
//!   ([`generate::transit_stub`]).
//!
//! Routing is link-state shortest-path ([`RoutingTable`]), i.e. exactly what
//! OSPF computes; the simulator only consumes per-pair latency and hop
//! counts, which are identical under any correct SPF implementation. Above
//! [`Routing::HIER_THRESHOLD`] nodes the exact all-pairs table no longer
//! fits in memory and [`Routing`] switches to the anchor-based two-level
//! model [`HierRouting`], keeping 10⁵–10⁶-node grids buildable.
//!
//! [`GridMap`] performs the paper's "map elements such as routers,
//! schedulers, and resources to obtain Grid topologies" step: scheduler and
//! estimator roles are placed at the best-connected nodes and every resource
//! is assigned to its nearest scheduler, giving the non-overlapping clusters
//! the paper requires.

#![warn(missing_docs)]

pub mod generate;
mod graph;
mod hier;
mod map;
pub mod metrics;
mod route;
mod routing;
mod vlink;

pub use graph::{Graph, Link, NodeId};
pub use hier::HierRouting;
pub use map::{GridMap, NodeRole, Placement};
pub use metrics::GraphMetrics;
pub use route::Routing;
pub use routing::RoutingTable;
pub use vlink::{PathSpec, VlinkTable};
