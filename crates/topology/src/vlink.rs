//! Virtual links: precomputed k-shortest-path aggregates per cluster pair.
//!
//! The bandwidth-aware network model needs, for every pair of scheduler
//! clusters, an ordered list of candidate paths with their propagation
//! latency and bottleneck capacity, plus the ids of the physical links
//! each path crosses so concurrent transfers can contend for shared
//! capacity. Computing paths per message would be both slow and a replay
//! hazard; instead this module precomputes everything once per topology
//! into an immutable [`VlinkTable`] that rides the simulator's shared
//! world (`Arc`-shared, never mutated — the zero-clone replay contract).
//!
//! Two construction modes mirror the two routing models:
//!
//! * **Exact** (paper scale, `< HIER_THRESHOLD` nodes): a truncated
//!   Yen-style enumeration. The first path is the [`RoutingTable`]
//!   shortest path; further candidates come from one Yen deviation level
//!   (re-running Dijkstra with each single link of the best path elided),
//!   deduplicated and ordered by `(latency, hops, link ids)`. One
//!   deviation level bounds the precompute at `O(pairs · pathlen)`
//!   Dijkstras while still yielding genuinely link-disjoint detours.
//! * **Hier** (10⁵–10⁶ nodes): enumerating physical paths is infeasible,
//!   so each cluster is modelled by one synthetic *uplink* whose capacity
//!   is the egress bandwidth of its scheduler (gateway) node, and every
//!   cluster pair gets a single modelled path `[uplink_a, uplink_b]` with
//!   the anchor-model latency. Contention then happens where it matters
//!   at that scale — on cluster gateways — with `O(clusters)` links and
//!   `O(clusters²)` path entries.
//!
//! Both modes only ever *add* latency over the shortest path (candidate
//! paths are ≥ the routed latency by construction), which is what keeps
//! the sharded executor's min-cross-latency lookahead conservative when
//! transfers queue behind saturated links.

use crate::graph::{Graph, NodeId};
use crate::map::GridMap;
use crate::route::Routing;
use crate::routing::RoutingTable;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One candidate path of a virtual link.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSpec {
    /// Total propagation latency along the path, in ticks.
    pub latency: u64,
    /// Number of links crossed.
    pub hops: u16,
    /// Minimum link capacity along the path (payload units per tick).
    pub bottleneck: f64,
    /// Ids of the links the path crosses, in travel order (indices into
    /// [`VlinkTable::link_cap`]).
    pub links: Vec<u32>,
}

/// The immutable per-topology virtual-link table: for every unordered
/// cluster pair, an ordered path list (best first), plus the capacity of
/// every referenced link.
#[derive(Debug, Clone)]
pub struct VlinkTable {
    clusters: usize,
    k: usize,
    hier: bool,
    /// Unordered pair `(a < b)` → candidate paths, best first. Indexed by
    /// the triangular pair index; empty when the pair is unreachable.
    paths: Vec<Vec<PathSpec>>,
    /// Link id → capacity in payload units per tick (already scaled by
    /// the bandwidth-sweep factor). Physical undirected link ids in exact
    /// mode, synthetic per-cluster uplink ids in hier mode.
    pub link_cap: Vec<f64>,
}

impl VlinkTable {
    /// Builds the table for `map`'s clusters over `g`, with up to `k`
    /// candidate paths per pair and every link capacity scaled by
    /// `capacity_scale` (the Case-5 bandwidth-sweep knob).
    pub fn build(
        g: &Graph,
        map: &GridMap,
        routing: &Routing,
        k: usize,
        capacity_scale: f64,
    ) -> VlinkTable {
        assert!(k >= 1, "at least one path per pair");
        assert!(
            capacity_scale > 0.0 && capacity_scale.is_finite(),
            "capacity scale must be positive"
        );
        match routing {
            Routing::Exact(rt) => Self::build_exact(g, map, rt, k, capacity_scale),
            Routing::Hier(_) => Self::build_hier(g, map, routing, capacity_scale),
        }
    }

    /// Exact mode: truncated Yen over the physical graph (module docs).
    fn build_exact(
        g: &Graph,
        map: &GridMap,
        rt: &RoutingTable,
        k: usize,
        capacity_scale: f64,
    ) -> VlinkTable {
        let nc = map.cluster_count();
        let ids = g.link_ids();
        let link_cap = g.link_capacities(capacity_scale);
        let mut paths = vec![Vec::new(); nc * (nc.saturating_sub(1)) / 2];
        let mut scratch = DijkstraScratch::new(g.node_count());
        for a in 0..nc {
            for b in (a + 1)..nc {
                let (sa, sb) = (map.cluster_scheduler(a), map.cluster_scheduler(b));
                let Some(best_nodes) = rt.path(sa, sb) else {
                    continue;
                };
                let best = spec_of(g, &ids, &link_cap, &best_nodes);
                let mut candidates = Vec::with_capacity(best.links.len());
                // One Yen deviation level: elide each link of the best
                // path in turn and re-route.
                for &elide in &best.links {
                    if let Some(nodes) = scratch.shortest_path(g, &ids, sa, sb, elide) {
                        let spec = spec_of(g, &ids, &link_cap, &nodes);
                        if spec.links != best.links && !candidates.contains(&spec) {
                            candidates.push(spec);
                        }
                    }
                }
                // Deterministic order: latency, then hops, then the link
                // id sequence itself (a total order over distinct paths).
                candidates.sort_by(|x, y| {
                    (x.latency, x.hops, &x.links).cmp(&(y.latency, y.hops, &y.links))
                });
                candidates.truncate(k.saturating_sub(1));
                let mut list = Vec::with_capacity(1 + candidates.len());
                list.push(best);
                list.extend(candidates);
                paths[pair_index(nc, a, b)] = list;
            }
        }
        VlinkTable {
            clusters: nc,
            k,
            hier: false,
            paths,
            link_cap,
        }
    }

    /// Hier mode: one synthetic uplink per cluster gateway (module docs).
    fn build_hier(g: &Graph, map: &GridMap, routing: &Routing, capacity_scale: f64) -> VlinkTable {
        let nc = map.cluster_count();
        // Synthetic link `c` = cluster c's uplink; its capacity is the
        // total egress bandwidth of the cluster's scheduler node.
        let link_cap: Vec<f64> = (0..nc)
            .map(|c| {
                let s = map.cluster_scheduler(c);
                let egress: f64 = g.neighbors(s).iter().map(|l| l.bandwidth).sum();
                egress.max(f64::MIN_POSITIVE) * capacity_scale
            })
            .collect();
        let mut paths = vec![Vec::new(); nc * (nc.saturating_sub(1)) / 2];
        for a in 0..nc {
            for b in (a + 1)..nc {
                let (sa, sb) = (map.cluster_scheduler(a), map.cluster_scheduler(b));
                let (Some(latency), Some(hops)) = (routing.latency(sa, sb), routing.hops(sa, sb))
                else {
                    continue;
                };
                paths[pair_index(nc, a, b)] = vec![PathSpec {
                    latency,
                    hops,
                    bottleneck: link_cap[a].min(link_cap[b]),
                    links: vec![a as u32, b as u32],
                }];
            }
        }
        VlinkTable {
            clusters: nc,
            k: 1,
            hier: true,
            paths,
            link_cap,
        }
    }

    /// Number of clusters the table covers.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// The `k` the table was built with (1 in hier mode).
    pub fn k_paths(&self) -> usize {
        self.k
    }

    /// True when the table models synthetic uplinks instead of physical
    /// link paths.
    pub fn is_hier(&self) -> bool {
        self.hier
    }

    /// Candidate paths between clusters `a` and `b`, best first. Empty
    /// when `a == b` (intra-cluster traffic never rides a virtual link)
    /// or the pair is unreachable.
    pub fn paths(&self, a: usize, b: usize) -> &[PathSpec] {
        if a == b {
            return &[];
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        &self.paths[pair_index(self.clusters, lo, hi)]
    }

    /// Approximate resident bytes (capacity-based; telemetry only).
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.link_cap.capacity() * size_of::<f64>()
            + self.paths.capacity() * size_of::<Vec<PathSpec>>()
            + self
                .paths
                .iter()
                .map(|list| {
                    list.capacity() * size_of::<PathSpec>()
                        + list
                            .iter()
                            .map(|p| p.links.capacity() * size_of::<u32>())
                            .sum::<usize>()
                })
                .sum::<usize>()
    }
}

/// Triangular index of unordered pair `(a, b)` with `a < b` over `n`.
fn pair_index(n: usize, a: usize, b: usize) -> usize {
    debug_assert!(a < b && b < n);
    a * n - a * (a + 1) / 2 + (b - a - 1)
}

/// Builds the [`PathSpec`] of an explicit node path.
fn spec_of(g: &Graph, ids: &[Vec<u32>], link_cap: &[f64], nodes: &[NodeId]) -> PathSpec {
    let mut latency = 0u64;
    let mut bottleneck = f64::INFINITY;
    let mut links = Vec::with_capacity(nodes.len().saturating_sub(1));
    for w in nodes.windows(2) {
        let (u, v) = (w[0], w[1]);
        let i = g
            .neighbors(u)
            .iter()
            .position(|l| l.to == v)
            .expect("path follows graph links");
        let link = &g.neighbors(u)[i];
        let id = ids[u as usize][i];
        latency += link.latency;
        bottleneck = bottleneck.min(link_cap[id as usize]);
        links.push(id);
    }
    PathSpec {
        latency,
        hops: links.len() as u16,
        bottleneck: if links.is_empty() { 0.0 } else { bottleneck },
        links,
    }
}

/// Reusable Dijkstra arena for the spur searches: distance / hop / pred
/// arrays sized once and reset per query via a generation stamp.
struct DijkstraScratch {
    dist: Vec<u64>,
    hops: Vec<u16>,
    pred: Vec<NodeId>,
    stamp: Vec<u32>,
    generation: u32,
}

impl DijkstraScratch {
    fn new(n: usize) -> DijkstraScratch {
        DijkstraScratch {
            dist: vec![0; n],
            hops: vec![0; n],
            pred: vec![0; n],
            stamp: vec![0; n],
            generation: 0,
        }
    }

    /// Shortest path `src → dst` with link `elide` removed, breaking
    /// latency ties by fewer hops then lower node id — the same total
    /// order [`RoutingTable::build`] uses, so elided-link reroutes are
    /// comparable with the base table's paths.
    fn shortest_path(
        &mut self,
        g: &Graph,
        ids: &[Vec<u32>],
        src: NodeId,
        dst: NodeId,
        elide: u32,
    ) -> Option<Vec<NodeId>> {
        self.generation += 1;
        let generation = self.generation;
        let mut heap: BinaryHeap<Reverse<(u64, u16, NodeId)>> = BinaryHeap::new();
        self.dist[src as usize] = 0;
        self.hops[src as usize] = 0;
        self.pred[src as usize] = src;
        self.stamp[src as usize] = generation;
        heap.push(Reverse((0, 0, src)));
        while let Some(Reverse((d, h, v))) = heap.pop() {
            if self.stamp[v as usize] == generation
                && (d, h) > (self.dist[v as usize], self.hops[v as usize])
            {
                continue;
            }
            if v == dst {
                break;
            }
            for (i, l) in g.neighbors(v).iter().enumerate() {
                if ids[v as usize][i] == elide {
                    continue;
                }
                let nd = d + l.latency;
                let nh = h + 1;
                let seen = self.stamp[l.to as usize] == generation;
                let improves = !seen
                    || nd < self.dist[l.to as usize]
                    || (nd == self.dist[l.to as usize] && nh < self.hops[l.to as usize])
                    || (nd == self.dist[l.to as usize]
                        && nh == self.hops[l.to as usize]
                        && v < self.pred[l.to as usize]);
                if improves {
                    self.dist[l.to as usize] = nd;
                    self.hops[l.to as usize] = nh;
                    self.pred[l.to as usize] = v;
                    self.stamp[l.to as usize] = generation;
                    heap.push(Reverse((nd, nh, l.to)));
                }
            }
        }
        if self.stamp[dst as usize] != generation {
            return None;
        }
        let mut path = vec![dst];
        let mut v = dst;
        while v != src {
            v = self.pred[v as usize];
            path.push(v);
            if path.len() > g.node_count() {
                return None; // defensive: corrupt pred chain
            }
        }
        path.reverse();
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{self, LinkParams};
    use crate::routing::RoutingTable;
    use gridscale_desim::SimRng;

    fn exact_sample(seed: u64) -> (Graph, Routing, GridMap) {
        let mut rng = SimRng::new(seed);
        let g = generate::barabasi_albert(120, 2, LinkParams::default(), &mut rng);
        let routing = Routing::Exact(RoutingTable::build(&g));
        let map = GridMap::build(&g, &routing, 6, 2, 0.9);
        (g, routing, map)
    }

    fn hier_sample(seed: u64) -> (Graph, Routing, GridMap) {
        let mut rng = SimRng::new(seed);
        let g = generate::barabasi_albert(300, 2, LinkParams::default(), &mut rng);
        let placement = GridMap::place(&g, 8, 0, 0.9);
        let routing = Routing::Hier(crate::HierRouting::build(&g, placement.schedulers()));
        let map = GridMap::assemble(placement, &routing);
        (g, routing, map)
    }

    #[test]
    fn exact_first_path_is_the_routed_shortest_and_alternates_never_undercut_it() {
        let (g, routing, map) = exact_sample(42);
        let t = VlinkTable::build(&g, &map, &routing, 3, 1.0);
        assert!(!t.is_hier());
        let mut pairs_with_alternates = 0;
        for a in 0..map.cluster_count() {
            for b in (a + 1)..map.cluster_count() {
                let list = t.paths(a, b);
                assert!(!list.is_empty(), "connected graph: pair ({a},{b})");
                assert!(list.len() <= 3);
                let routed = routing
                    .latency(map.cluster_scheduler(a), map.cluster_scheduler(b))
                    .unwrap();
                assert_eq!(
                    list[0].latency, routed,
                    "best path must match the routing table"
                );
                for w in list.windows(2) {
                    assert!(
                        (w[0].latency, w[0].hops) <= (w[1].latency, w[1].hops),
                        "paths must be ordered best-first"
                    );
                    assert!(
                        w[1].latency >= routed,
                        "alternates may only add latency (lookahead conservativeness)"
                    );
                }
                if list.len() > 1 {
                    pairs_with_alternates += 1;
                }
            }
        }
        assert!(
            pairs_with_alternates > 0,
            "a BA graph with m=2 has link-disjoint detours somewhere"
        );
    }

    #[test]
    fn exact_bottlenecks_and_links_are_consistent_with_capacities() {
        let (g, routing, map) = exact_sample(7);
        let scale = 0.25;
        let t = VlinkTable::build(&g, &map, &routing, 2, scale);
        assert_eq!(t.link_cap.len(), g.link_count());
        for cap in &t.link_cap {
            assert!((cap - LinkParams::default().bandwidth * scale).abs() < 1e-12);
        }
        for a in 0..map.cluster_count() {
            for b in (a + 1)..map.cluster_count() {
                for p in t.paths(a, b) {
                    assert_eq!(p.hops as usize, p.links.len());
                    let min = p
                        .links
                        .iter()
                        .map(|&l| t.link_cap[l as usize])
                        .fold(f64::INFINITY, f64::min);
                    assert_eq!(p.bottleneck.to_bits(), min.to_bits());
                }
            }
        }
    }

    #[test]
    fn paths_are_symmetric_and_empty_on_the_diagonal() {
        let (g, routing, map) = exact_sample(42);
        let t = VlinkTable::build(&g, &map, &routing, 2, 1.0);
        for a in 0..map.cluster_count() {
            assert!(t.paths(a, a).is_empty());
            for b in 0..map.cluster_count() {
                if a != b {
                    assert_eq!(t.paths(a, b), t.paths(b, a));
                }
            }
        }
    }

    #[test]
    fn build_is_deterministic() {
        let (g, routing, map) = exact_sample(99);
        let t1 = VlinkTable::build(&g, &map, &routing, 4, 1.0);
        let t2 = VlinkTable::build(&g, &map, &routing, 4, 1.0);
        for a in 0..map.cluster_count() {
            for b in (a + 1)..map.cluster_count() {
                assert_eq!(t1.paths(a, b), t2.paths(a, b));
            }
        }
        let bits = |caps: &[f64]| caps.iter().map(|c| c.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&t1.link_cap), bits(&t2.link_cap));
        assert!(t1.approx_bytes() > 0);
    }

    #[test]
    fn hier_mode_models_one_uplink_path_per_pair() {
        let (g, routing, map) = hier_sample(42);
        let t = VlinkTable::build(&g, &map, &routing, 4, 1.0);
        assert!(t.is_hier());
        assert_eq!(t.k_paths(), 1, "hier mode keeps a single modelled path");
        assert_eq!(t.link_cap.len(), map.cluster_count());
        for a in 0..map.cluster_count() {
            let s = map.cluster_scheduler(a);
            let egress: f64 = g.neighbors(s).iter().map(|l| l.bandwidth).sum();
            assert_eq!(t.link_cap[a].to_bits(), egress.to_bits());
            for b in (a + 1)..map.cluster_count() {
                let list = t.paths(a, b);
                assert_eq!(list.len(), 1);
                assert_eq!(list[0].links, vec![a as u32, b as u32]);
                assert_eq!(
                    list[0].bottleneck.to_bits(),
                    t.link_cap[a].min(t.link_cap[b]).to_bits()
                );
                let (sa, sb) = (map.cluster_scheduler(a), map.cluster_scheduler(b));
                assert_eq!(list[0].latency, routing.latency(sa, sb).unwrap());
            }
        }
    }

    #[test]
    fn ring_topology_yields_the_two_arc_paths() {
        // A 6-ring with 3 schedulers: between any two schedulers there are
        // exactly two link-disjoint paths (the two arcs), and the one-level
        // Yen deviation must find the second arc.
        let g = generate::ring(6, LinkParams::default());
        let routing = Routing::Exact(RoutingTable::build(&g));
        let map = GridMap::build(&g, &routing, 3, 0, 0.9);
        let t = VlinkTable::build(&g, &map, &routing, 2, 1.0);
        for a in 0..map.cluster_count() {
            for b in (a + 1)..map.cluster_count() {
                let list = t.paths(a, b);
                assert_eq!(list.len(), 2, "ring pair ({a},{b}) has both arcs");
                let ring_links = 6;
                assert_eq!(
                    list[0].hops as usize + list[1].hops as usize,
                    ring_links,
                    "the two arcs cover the whole ring"
                );
                // Link-disjoint by construction on a ring.
                for l in &list[0].links {
                    assert!(!list[1].links.contains(l));
                }
            }
        }
    }
}
