//! Property-based tests: the Dijkstra routing tables against a
//! Floyd–Warshall reference, and Grid-map partition invariants.

use gridscale_desim::SimRng;
use gridscale_topology::generate::{self, LinkParams};
use gridscale_topology::{Graph, GridMap, NodeId, Routing, RoutingTable};
use proptest::prelude::*;

/// Reference all-pairs shortest paths by Floyd–Warshall.
fn floyd_warshall(g: &Graph) -> Vec<Vec<Option<u64>>> {
    let n = g.node_count();
    let mut d = vec![vec![None::<u64>; n]; n];
    #[allow(clippy::needless_range_loop)]
    for v in 0..n {
        d[v][v] = Some(0);
        for l in g.neighbors(v as NodeId) {
            let cur = d[v][l.to as usize];
            let better = cur.map(|c| l.latency < c).unwrap_or(true);
            if better {
                d[v][l.to as usize] = Some(l.latency);
            }
        }
    }
    #[allow(clippy::needless_range_loop)]
    for k in 0..n {
        for i in 0..n {
            let Some(dik) = d[i][k] else { continue };
            for j in 0..n {
                let Some(dkj) = d[k][j] else { continue };
                let via = dik + dkj;
                if d[i][j].map(|c| via < c).unwrap_or(true) {
                    d[i][j] = Some(via);
                }
            }
        }
    }
    d
}

/// A random connected-ish graph (components allowed — both code paths use
/// the same None semantics).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..25, any::<u64>(), 0.05f64..0.5).prop_map(|(n, seed, density)| {
        let mut rng = SimRng::new(seed);
        let mut g = Graph::with_nodes(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.chance(density) {
                    g.add_link(a as NodeId, b as NodeId, rng.int_range(1, 20), 10.0);
                }
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Dijkstra tables equal the Floyd–Warshall reference on every pair.
    #[test]
    fn routing_matches_floyd_warshall(g in arb_graph()) {
        let rt = RoutingTable::build(&g);
        let fw = floyd_warshall(&g);
        #[allow(clippy::needless_range_loop)]
        for s in 0..g.node_count() {
            for t in 0..g.node_count() {
                prop_assert_eq!(
                    rt.latency(s as NodeId, t as NodeId),
                    fw[s][t],
                    "pair ({}, {})", s, t
                );
            }
        }
    }

    /// Materialized paths are valid walks whose edge-latency sum equals the
    /// table distance.
    #[test]
    fn paths_are_consistent_walks(g in arb_graph()) {
        let rt = RoutingTable::build(&g);
        let n = g.node_count() as NodeId;
        for s in 0..n {
            for t in 0..n {
                let Some(path) = rt.path(s, t) else { continue };
                prop_assert_eq!(*path.first().unwrap(), s);
                prop_assert_eq!(*path.last().unwrap(), t);
                let mut total = 0u64;
                for w in path.windows(2) {
                    let link = g.neighbors(w[0]).iter().find(|l| l.to == w[1]);
                    prop_assert!(link.is_some(), "path uses a non-edge");
                    total += link.unwrap().latency;
                }
                prop_assert_eq!(Some(total), rt.latency(s, t));
            }
        }
    }

    /// GridMap partitions resources exhaustively, disjointly, and
    /// non-emptily for any feasible shape.
    #[test]
    fn grid_map_partition_invariants(
        n in 20usize..80,
        scheds in 1usize..8,
        ests in 0usize..4,
        frac in 0.5f64..1.0,
        seed in any::<u64>(),
    ) {
        prop_assume!(scheds + ests + 4 < n);
        let mut rng = SimRng::new(seed);
        let g = generate::barabasi_albert(n, 2, LinkParams::default(), &mut rng);
        let rt = Routing::Exact(RoutingTable::build(&g));
        let m = GridMap::build(&g, &rt, scheds, ests, frac);

        let mut seen = std::collections::HashSet::new();
        for ci in 0..m.cluster_count() {
            prop_assert!(!m.cluster_resources(ci).is_empty(), "cluster {ci} empty");
            for &r in m.cluster_resources(ci) {
                prop_assert!(seen.insert(r), "resource {r} in two clusters");
                prop_assert_eq!(m.cluster_index(r), Some(ci));
            }
        }
        prop_assert_eq!(seen.len(), m.resources().len(), "partition exhaustive");
        // Estimator assignment exists iff estimators exist.
        for &r in m.resources() {
            prop_assert_eq!(m.estimator_for(r).is_some(), ests > 0);
        }
    }

    /// Latency scaling preserves shortest-path structure for uniform
    /// multipliers (scaling every edge by the same integer factor keeps
    /// argmin paths).
    #[test]
    fn uniform_latency_scaling_preserves_routes(g in arb_graph()) {
        let rt1 = RoutingTable::build(&g);
        let mut g2 = g.clone();
        g2.scale_latencies(3.0);
        let rt2 = RoutingTable::build(&g2);
        for s in 0..g.node_count() as NodeId {
            for t in 0..g.node_count() as NodeId {
                match (rt1.latency(s, t), rt2.latency(s, t)) {
                    (Some(a), Some(b)) => prop_assert_eq!(3 * a, b),
                    (None, None) => {}
                    (a, b) => prop_assert!(false, "reachability changed: {:?} vs {:?}", a, b),
                }
            }
        }
    }
}
