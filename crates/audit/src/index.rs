//! The workspace item index: a lightweight symbol table built on the
//! hand-rolled lexer.
//!
//! One linear pass over each file's token stream recovers exactly the
//! structure the call-graph and taint rules need — no `syn`, no type
//! inference:
//!
//! - **functions** (`fn` items) with their enclosing `impl` type and
//!   trait, `#[cfg(test)]` / `#[test]` context, body token span, and
//!   every call site inside the body (bare calls, `Type::method(…)`
//!   paths with `Self` resolved, `.method(…)` chains, and `name!(…)`
//!   macro invocations);
//! - **structs** with their field-type identifiers (for the Arc-shared
//!   interior-mutability closure of rule D8);
//! - the set of type names that appear inside `Arc<…>` anywhere in the
//!   indexed set (the roots of that closure).
//!
//! The index is deliberately *conservative*: it resolves names, not
//! types. A method call `.run(…)` maps to every workspace `fn run`
//! unless a path qualifier pins it down. That over-approximation is the
//! right default for a determinism audit — a missed edge hides a
//! nondeterminism source, a spurious edge costs one annotation.

use crate::lexer::{FileScan, Tok, TokKind};
use crate::rules::FileCtx;

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee identifier (last path segment; macro name for `name!`).
    pub name: String,
    /// Path qualifier (`Type` in `Type::name(…)`), with `Self` already
    /// resolved to the enclosing impl type. `None` for bare calls and
    /// method calls.
    pub qual: Option<String>,
    /// 1-based source line of the callee identifier.
    pub line: u32,
    /// True for `.name(…)` method-call syntax.
    pub is_method: bool,
    /// True for `name!(…)` macro invocations.
    pub is_macro: bool,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type (or trait, for default trait methods).
    pub qual: Option<String>,
    /// Trait being implemented, when the enclosing block is
    /// `impl Trait for Type`.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token span of the body (`start..end` indices into the file's
    /// token stream), empty for bodiless trait declarations.
    pub body: (usize, usize),
    /// 1-based line of the body's closing brace (`line` for bodiless
    /// declarations).
    pub end_line: u32,
    /// True inside `#[cfg(test)]` modules, under `#[test]`, or in a
    /// test-context file (`tests/`, `benches/`, `examples/`).
    pub is_test: bool,
    /// Call sites inside the body, in source order.
    pub calls: Vec<CallSite>,
}

impl FnDef {
    /// `Type::name` or bare `name` — the symbol diagnostics carry.
    pub fn symbol(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One `struct` item with named fields.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// 1-based line of the field block's closing brace.
    pub end_line: u32,
    /// Token span of the field block.
    pub body: (usize, usize),
    /// Every type identifier mentioned in the field block (the D8
    /// closure follows these into other workspace structs).
    pub field_type_idents: Vec<String>,
}

/// The index of one file.
#[derive(Debug, Default)]
pub struct FileIndex {
    /// Functions, in source order.
    pub fns: Vec<FnDef>,
    /// Structs with named fields, in source order.
    pub structs: Vec<StructDef>,
    /// Type names seen inside `Arc<…>` in this file.
    pub arc_shared: Vec<String>,
}

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: [&str; 10] = [
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in", "move",
];

/// What the next `{` opens.
#[derive(Debug, Clone, PartialEq)]
enum Pending {
    None,
    Mod {
        test: bool,
    },
    Impl {
        ty: String,
        trait_name: Option<String>,
    },
    Fn {
        def: usize,
    },
    Struct {
        def: usize,
    },
    Trait {
        name: String,
    },
}

/// One entry of the brace-scope stack.
#[derive(Debug, Clone, PartialEq)]
enum Scope {
    Mod {
        test: bool,
    },
    Impl {
        ty: String,
        trait_name: Option<String>,
    },
    Fn {
        def: usize,
    },
    Struct {
        def: usize,
    },
    Trait {
        name: String,
    },
    Block,
}

/// Builds the index of one lexed file.
pub fn index_file(ctx: &FileCtx, scan: &FileScan) -> FileIndex {
    let toks = &scan.toks;
    let n = toks.len();
    let mut out = FileIndex::default();
    let mut stack: Vec<Scope> = Vec::new();
    let mut pending = Pending::None;
    // True when the next item carries `#[test]` / `#[cfg(test)]`.
    let mut pending_test_attr = false;
    let mut i = 0usize;

    // The innermost enclosing impl/trait type on the stack.
    fn enclosing_qual(stack: &[Scope]) -> (Option<String>, Option<String>) {
        for s in stack.iter().rev() {
            match s {
                Scope::Impl { ty, trait_name } => return (Some(ty.clone()), trait_name.clone()),
                Scope::Trait { name } => return (Some(name.clone()), None),
                _ => {}
            }
        }
        (None, None)
    }
    fn in_test_scope(stack: &[Scope]) -> bool {
        stack.iter().any(|s| matches!(s, Scope::Mod { test: true }))
    }
    fn enclosing_fn(stack: &[Scope]) -> Option<usize> {
        stack.iter().rev().find_map(|s| match s {
            Scope::Fn { def } => Some(*def),
            _ => None,
        })
    }

    while i < n {
        match &toks[i].kind {
            TokKind::Punct('#') => {
                // Attribute: `#[ … ]` (or inner `#![ … ]`). Scan the
                // bracket group for `test` to classify the next item.
                let mut j = i + 1;
                if matches!(toks.get(j).map(|t| &t.kind), Some(TokKind::Punct('!'))) {
                    j += 1;
                }
                if matches!(toks.get(j).map(|t| &t.kind), Some(TokKind::Punct('['))) {
                    let mut depth = 0usize;
                    let mut saw_test = false;
                    while j < n {
                        match &toks[j].kind {
                            TokKind::Punct('[') => depth += 1,
                            TokKind::Punct(']') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            TokKind::Ident(id) if id == "test" || id == "bench" => saw_test = true,
                            _ => {}
                        }
                        j += 1;
                    }
                    if saw_test {
                        pending_test_attr = true;
                    }
                    i = j + 1;
                    continue;
                }
                i += 1;
            }
            TokKind::Ident(kw) if kw == "mod" => {
                // `mod name { … }` or `mod name;`
                let test = pending_test_attr;
                pending_test_attr = false;
                pending = Pending::Mod { test };
                i += 1;
            }
            TokKind::Ident(kw) if kw == "impl" => {
                // Only an item header when nothing else is pending:
                // `impl Fn() -> P` inside a fn signature (or an
                // `-> impl Iterator` return type) is a bound, not a
                // block, and must not steal the pending fn's body.
                if pending == Pending::None {
                    let (ty, trait_name, next) = parse_impl_header(toks, i + 1);
                    pending = Pending::Impl { ty, trait_name };
                    pending_test_attr = false;
                    i = next;
                } else {
                    i += 1;
                }
            }
            TokKind::Ident(kw) if kw == "trait" => {
                let name = match toks.get(i + 1).map(|t| &t.kind) {
                    Some(TokKind::Ident(id)) => id.clone(),
                    _ => String::new(),
                };
                pending = Pending::Trait { name };
                pending_test_attr = false;
                i += 1;
            }
            TokKind::Ident(kw) if kw == "struct" || kw == "union" => {
                if let Some(TokKind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                    out.structs.push(StructDef {
                        name: name.clone(),
                        line: toks[i].line,
                        end_line: toks[i].line,
                        body: (0, 0),
                        field_type_idents: Vec::new(),
                    });
                    pending = Pending::Struct {
                        def: out.structs.len() - 1,
                    };
                }
                pending_test_attr = false;
                i += 1;
            }
            TokKind::Ident(kw) if kw == "fn" => {
                if let Some(TokKind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                    let (qual, trait_name) = enclosing_qual(&stack);
                    let is_test = ctx.test_context
                        || pending_test_attr
                        || in_test_scope(&stack)
                        || enclosing_fn(&stack)
                            .map(|d| out.fns[d].is_test)
                            .unwrap_or(false);
                    out.fns.push(FnDef {
                        name: name.clone(),
                        qual,
                        trait_name,
                        line: toks[i].line,
                        end_line: toks[i].line,
                        body: (0, 0),
                        is_test,
                        calls: Vec::new(),
                    });
                    pending = Pending::Fn {
                        def: out.fns.len() - 1,
                    };
                }
                pending_test_attr = false;
                i += 2;
            }
            TokKind::Punct(';') => {
                // A bodiless item (trait method decl, `mod x;`, tuple
                // struct) closes whatever was pending.
                pending = Pending::None;
                i += 1;
            }
            TokKind::Punct('{') => {
                let scope = match std::mem::replace(&mut pending, Pending::None) {
                    Pending::Mod { test } => Scope::Mod { test },
                    Pending::Impl { ty, trait_name } => Scope::Impl { ty, trait_name },
                    Pending::Fn { def } => {
                        out.fns[def].body.0 = i + 1;
                        Scope::Fn { def }
                    }
                    Pending::Struct { def } => {
                        out.structs[def].body.0 = i + 1;
                        Scope::Struct { def }
                    }
                    Pending::Trait { name } => Scope::Trait { name },
                    Pending::None => Scope::Block,
                };
                stack.push(scope);
                i += 1;
            }
            TokKind::Punct('}') => {
                match stack.pop() {
                    Some(Scope::Fn { def }) => {
                        out.fns[def].body.1 = i;
                        out.fns[def].end_line = toks[i].line;
                    }
                    Some(Scope::Struct { def }) => {
                        out.structs[def].body.1 = i;
                        out.structs[def].end_line = toks[i].line;
                    }
                    _ => {}
                }
                i += 1;
            }
            TokKind::Ident(id) if id == "Arc" => {
                // `Arc<T>` / `Arc :: < T >` — record the first type
                // identifier inside the angle brackets.
                let mut j = i + 1;
                while matches!(toks.get(j).map(|t| &t.kind), Some(TokKind::Punct(':'))) {
                    j += 1;
                }
                if matches!(toks.get(j).map(|t| &t.kind), Some(TokKind::Punct('<'))) {
                    if let Some(TokKind::Ident(inner)) = toks.get(j + 1).map(|t| &t.kind) {
                        if !out.arc_shared.contains(inner) {
                            out.arc_shared.push(inner.clone());
                        }
                    }
                }
                i += 1;
            }
            TokKind::Ident(id) => {
                // Field-type collection inside struct bodies.
                if let Some(Scope::Struct { def }) = stack.last() {
                    let first = id.chars().next().unwrap_or('a');
                    if first.is_ascii_uppercase()
                        && !out.structs[*def].field_type_idents.contains(id)
                    {
                        out.structs[*def].field_type_idents.push(id.clone());
                    }
                }
                // Call-site collection inside fn bodies.
                if let Some(def) = enclosing_fn(&stack) {
                    let next = toks.get(i + 1).map(|t| &t.kind);
                    let is_macro = matches!(next, Some(TokKind::Punct('!')))
                        && matches!(
                            toks.get(i + 2).map(|t| &t.kind),
                            Some(TokKind::Punct('(' | '[' | '{'))
                        );
                    let is_call = matches!(next, Some(TokKind::Punct('(')));
                    if (is_call || is_macro) && !CALL_KEYWORDS.contains(&id.as_str()) {
                        let prev = i.checked_sub(1).map(|j| &toks[j].kind);
                        let is_method = matches!(prev, Some(TokKind::Punct('.')));
                        let mut qual = None;
                        if !is_method && !is_macro {
                            // `Seg :: name (` — take the path segment.
                            if matches!(prev, Some(TokKind::Punct(':')))
                                && i >= 3
                                && toks[i - 2].kind == TokKind::Punct(':')
                            {
                                if let TokKind::Ident(q) = &toks[i - 3].kind {
                                    let q = if q == "Self" || q == "self" {
                                        enclosing_qual(&stack).0.unwrap_or_else(|| q.clone())
                                    } else {
                                        q.clone()
                                    };
                                    qual = Some(q);
                                }
                            }
                        }
                        out.fns[def].calls.push(CallSite {
                            name: id.clone(),
                            qual,
                            line: toks[i].line,
                            is_method,
                            is_macro,
                        });
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    // Unterminated bodies (truncated input): close at EOF.
    let eof_line = toks.last().map_or(1, |t| t.line);
    for s in stack {
        match s {
            Scope::Fn { def } if out.fns[def].body.1 == 0 => {
                out.fns[def].body.1 = n;
                out.fns[def].end_line = eof_line;
            }
            Scope::Struct { def } if out.structs[def].body.1 == 0 => {
                out.structs[def].body.1 = n;
                out.structs[def].end_line = eof_line;
            }
            _ => {}
        }
    }
    out
}

impl FileIndex {
    /// The symbol enclosing `line`: the innermost function whose span
    /// contains it, else the enclosing struct, else `None`.
    pub fn symbol_at(&self, line: u32) -> Option<String> {
        let mut best: Option<(u32, String)> = None;
        for f in &self.fns {
            if f.line <= line && line <= f.end_line {
                match &best {
                    Some((l, _)) if *l >= f.line => {}
                    _ => best = Some((f.line, f.symbol())),
                }
            }
        }
        if best.is_none() {
            for s in &self.structs {
                if s.line <= line && line <= s.end_line {
                    match &best {
                        Some((l, _)) if *l >= s.line => {}
                        _ => best = Some((s.line, s.name.clone())),
                    }
                }
            }
        }
        best.map(|(_, s)| s)
    }
}

/// Parses the header after an `impl` keyword: skips the generic
/// parameter list, then reads `Path [for Path]` up to the opening brace.
/// Returns `(type_name, trait_name, next_token_index)`.
fn parse_impl_header(toks: &[Tok], mut i: usize) -> (String, Option<String>, usize) {
    let n = toks.len();
    // Skip `<…>` generics (balanced; `->` cannot appear here).
    if matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Punct('<'))) {
        let mut depth = 0i32;
        while i < n {
            match &toks[i].kind {
                TokKind::Punct('<') => depth += 1,
                TokKind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    let (first, mut i) = parse_path_name(toks, i);
    if matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Ident(id)) if id == "for") {
        let (second, j) = parse_path_name(toks, i + 1);
        i = j;
        (second, Some(first), i)
    } else {
        (first, None, i)
    }
}

/// Reads one type path (`a::b::Name<…>`), returning its last identifier
/// and the index just past it (generics skipped, references skipped).
fn parse_path_name(toks: &[Tok], mut i: usize) -> (String, usize) {
    let n = toks.len();
    let mut last = String::new();
    while i < n {
        match &toks[i].kind {
            TokKind::Ident(id) if id == "for" => break,
            TokKind::Ident(id) if id == "dyn" || id == "mut" => i += 1,
            TokKind::Ident(id) => {
                last = id.clone();
                i += 1;
            }
            TokKind::Punct(':') | TokKind::Punct('&') => i += 1,
            TokKind::Punct('<') => {
                let mut depth = 0i32;
                while i < n {
                    match &toks[i].kind {
                        TokKind::Punct('<') => depth += 1,
                        TokKind::Punct('>') => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            _ => break,
        }
    }
    (last, i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::rules::FileCtx;

    fn index(path: &str, src: &str) -> FileIndex {
        index_file(&FileCtx::classify(path), &scan(src))
    }

    #[test]
    fn fns_get_impl_quals_and_traits() {
        let src = "
            impl SimTemplate {
                pub fn run(&self) { helper(1); self.go(); }
            }
            impl Policy for Lowest {
                fn dispatch(&mut self) { Other::make(); }
            }
            fn helper(x: u64) -> u64 { x }
        ";
        let ix = index("crates/gridsim/src/sim.rs", src);
        let syms: Vec<String> = ix.fns.iter().map(|f| f.symbol()).collect();
        assert_eq!(syms, vec!["SimTemplate::run", "Lowest::dispatch", "helper"]);
        assert_eq!(ix.fns[1].trait_name.as_deref(), Some("Policy"));
        let run_calls: Vec<&str> = ix.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(run_calls, vec!["helper", "go"]);
        assert!(ix.fns[0].calls[1].is_method);
        assert_eq!(ix.fns[1].calls[0].qual.as_deref(), Some("Other"));
    }

    #[test]
    fn self_qualifier_resolves_to_impl_type() {
        let src = "impl Engine { fn a(&self) { Self::b(); } fn b() {} }";
        let ix = index("crates/desim/src/engine.rs", src);
        assert_eq!(ix.fns[0].calls[0].qual.as_deref(), Some("Engine"));
    }

    #[test]
    fn cfg_test_modules_and_test_attrs_mark_fns() {
        let src = "
            fn prod() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { prod(); }
            }
        ";
        let ix = index("crates/core/src/x.rs", src);
        assert!(!ix.fns[0].is_test);
        assert!(ix.fns[1].is_test);
        // Whole-file test context (integration tests, benches).
        let ix = index("crates/gridsim/tests/behavior.rs", "fn helper() {}");
        assert!(ix.fns[0].is_test);
    }

    #[test]
    fn structs_collect_field_types_and_arc_roots() {
        let src = "
            pub struct SharedWorld { layout: Layout, n: u64 }
            pub struct Holder { world: Arc<SharedWorld> }
        ";
        let ix = index("crates/gridsim/src/world.rs", src);
        assert_eq!(ix.structs[0].field_type_idents, vec!["Layout"]);
        assert_eq!(ix.arc_shared, vec!["SharedWorld"]);
    }

    #[test]
    fn macro_calls_are_recorded() {
        let src = "fn f() { panic!(\"boom\"); }";
        let ix = index("crates/gridsim/src/x.rs", src);
        let c = &ix.fns[0].calls[0];
        assert_eq!(c.name, "panic");
        assert!(c.is_macro);
    }

    #[test]
    fn trait_method_decls_are_bodiless() {
        let src = "trait Policy { fn name(&self) -> &str; fn init(&mut self) { setup(); } }";
        let ix = index("crates/gridsim/src/policy.rs", src);
        assert_eq!(ix.fns.len(), 2);
        assert_eq!(ix.fns[0].body, (0, 0));
        assert_eq!(ix.fns[0].qual.as_deref(), Some("Policy"));
        assert_eq!(ix.fns[1].calls[0].name, "setup");
    }
}
