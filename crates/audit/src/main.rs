//! `gridscale-audit` — the standalone determinism-analyzer binary.
//!
//! ```text
//! cargo run -p gridscale-audit -- [--root DIR] [--call-graph | --no-call-graph]
//!                                 [--baseline FILE | --no-baseline] [--write-baseline]
//!                                 [--json REPORT.json] [--sarif REPORT.sarif]
//!                                 [--deny-warnings] [--quiet]
//! ```
//!
//! Exit codes: 0 clean, 1 violations (or warnings under
//! `--deny-warnings`), 2 usage/IO error. The same driver backs the
//! `gridscale audit` subcommand.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(gridscale_audit::run_cli(&args));
}
