//! The conservative intra-workspace call graph.
//!
//! Nodes are the indexed `fn` items; an edge runs from caller to every
//! workspace definition the callee name can resolve to:
//!
//! - `Type::name(…)` with a known workspace `impl Type` → only the
//!   matching methods (`Self` was already resolved by the index);
//! - `Type::name(…)` with an *unknown* qualifier (`f64::max`,
//!   `Vec::new`) → no edge: the callee lives outside the workspace;
//! - bare `name(…)` and `.name(…)` → every workspace `fn name`
//!   (receiver types are unknown to a lexer, so the graph
//!   over-approximates rather than miss a path).
//!
//! Test-context functions are excluded on both sides: they neither
//! taint nor get tainted, so `#[cfg(test)]` helpers don't create
//! phantom paths into the replay hot path.
//!
//! Reachability is a BFS that records parent pointers, which is what
//! lets diagnostics render the *full call chain* from a sink entry
//! (e.g. `SimTemplate::run`) down to the offending source line.

use crate::index::FileIndex;
use std::collections::BTreeMap;

/// A function's global id: `(file index, fn index within that file)`.
pub type FnId = (usize, usize);

/// The workspace call graph over a set of indexed files.
pub struct CallGraph {
    /// Adjacency: for each caller, the resolved callee ids (deduped,
    /// in deterministic order).
    edges: BTreeMap<FnId, Vec<FnId>>,
    /// All non-test function ids, in (file, fn) order.
    nodes: Vec<FnId>,
}

impl CallGraph {
    /// Builds the graph from per-file indexes (parallel to the scanned
    /// file list).
    pub fn build(files: &[FileIndex]) -> CallGraph {
        // Name → candidate definitions (non-test only).
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        // Qualifier type names that have at least one workspace method.
        let mut known_quals: BTreeMap<&str, ()> = BTreeMap::new();
        let mut nodes = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            for (di, def) in file.fns.iter().enumerate() {
                if def.is_test {
                    continue;
                }
                nodes.push((fi, di));
                by_name.entry(def.name.as_str()).or_default().push((fi, di));
                if let Some(q) = &def.qual {
                    known_quals.entry(q.as_str()).or_insert(());
                }
            }
        }

        let mut edges: BTreeMap<FnId, Vec<FnId>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (di, def) in file.fns.iter().enumerate() {
                if def.is_test {
                    continue;
                }
                let mut out: Vec<FnId> = Vec::new();
                for call in &def.calls {
                    if call.is_macro {
                        continue;
                    }
                    let Some(cands) = by_name.get(call.name.as_str()) else {
                        continue;
                    };
                    match &call.qual {
                        Some(q) if known_quals.contains_key(q.as_str()) => {
                            out.extend(cands.iter().filter(|&&(cf, cd)| {
                                files[cf].fns[cd].qual.as_deref() == Some(q.as_str())
                            }));
                        }
                        Some(_) => {} // foreign qualifier: not ours
                        None => out.extend(cands.iter()),
                    }
                }
                out.sort_unstable();
                out.dedup();
                // Self-loops add nothing to reachability or chains.
                out.retain(|&id| id != (fi, di));
                edges.insert((fi, di), out);
            }
        }
        CallGraph { edges, nodes }
    }

    /// All non-test nodes.
    pub fn nodes(&self) -> &[FnId] {
        &self.nodes
    }

    /// BFS from `entries`; returns, for each reached node, the parent
    /// it was first discovered through (entries map to themselves).
    /// Iteration order is deterministic: entries in given order, then
    /// queue order with sorted adjacency.
    pub fn reach(&self, entries: &[FnId]) -> BTreeMap<FnId, FnId> {
        let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<FnId> = Default::default();
        for &e in entries {
            if parent.insert(e, e).is_none() {
                queue.push_back(e);
            }
        }
        while let Some(u) = queue.pop_front() {
            if let Some(vs) = self.edges.get(&u) {
                for &v in vs {
                    if let std::collections::btree_map::Entry::Vacant(slot) = parent.entry(v) {
                        slot.insert(u);
                        queue.push_back(v);
                    }
                }
            }
        }
        parent
    }

    /// Renders the discovery chain from the BFS entry down to `target`
    /// as `entry → … → target` using each node's symbol.
    pub fn chain(
        &self,
        parent: &BTreeMap<FnId, FnId>,
        files: &[FileIndex],
        target: FnId,
    ) -> Vec<String> {
        let mut rev = Vec::new();
        let mut cur = target;
        loop {
            rev.push(files[cur.0].fns[cur.1].symbol());
            match parent.get(&cur) {
                Some(&p) if p != cur => cur = p,
                _ => break,
            }
        }
        rev.reverse();
        rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::index_file;
    use crate::lexer::scan;
    use crate::rules::FileCtx;

    fn build(srcs: &[(&str, &str)]) -> (Vec<FileIndex>, CallGraph) {
        let files: Vec<FileIndex> = srcs
            .iter()
            .map(|(p, s)| index_file(&FileCtx::classify(p), &scan(s)))
            .collect();
        let graph = CallGraph::build(&files);
        (files, graph)
    }

    #[test]
    fn cross_file_chains_resolve_and_render() {
        let (files, graph) = build(&[
            (
                "crates/gridsim/src/sim.rs",
                "impl SimTemplate { pub fn run(&self) { mid(); } }",
            ),
            ("crates/gridsim/src/a.rs", "pub fn mid() { deep_leaf(); }"),
            ("crates/topology/src/b.rs", "pub fn deep_leaf() {}"),
        ]);
        let entry = (0usize, 0usize);
        let parent = graph.reach(&[entry]);
        let leaf = (2usize, 0usize);
        assert!(parent.contains_key(&leaf));
        assert_eq!(
            graph.chain(&parent, &files, leaf),
            vec!["SimTemplate::run", "mid", "deep_leaf"]
        );
    }

    #[test]
    fn foreign_qualifiers_do_not_edge() {
        let (_, graph) = build(&[(
            "crates/core/src/x.rs",
            "fn max() {} fn f() { f64::max(1.0, 2.0); }",
        )]);
        // `f64` is not a workspace impl type: no edge from f to max.
        let parent = graph.reach(&[(0, 1)]);
        assert!(!parent.contains_key(&(0, 0)));
    }

    #[test]
    fn known_qualifiers_pin_the_method() {
        let (_, graph) = build(&[(
            "crates/core/src/x.rs",
            "impl A { fn go() {} } impl B { fn go() {} } fn f() { A::go(); }",
        )]);
        let parent = graph.reach(&[(0, 2)]);
        assert!(parent.contains_key(&(0, 0)), "A::go reached");
        assert!(!parent.contains_key(&(0, 1)), "B::go not reached");
    }

    #[test]
    fn method_calls_over_approximate() {
        let (_, graph) = build(&[(
            "crates/core/src/x.rs",
            "impl A { fn go(&self) {} } fn f(a: &A) { a.go(); }",
        )]);
        let parent = graph.reach(&[(0, 1)]);
        assert!(parent.contains_key(&(0, 0)));
    }

    #[test]
    fn test_fns_are_invisible() {
        let (_, graph) = build(&[(
            "crates/core/src/x.rs",
            "fn prod() {}\n#[cfg(test)]\nmod t { #[test] fn t1() { prod(); } }",
        )]);
        assert_eq!(graph.nodes().len(), 1);
    }
}
