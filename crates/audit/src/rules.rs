//! The determinism rules D1–D5.
//!
//! Every rule produces [`Diagnostic`]s with exact `file:line` positions
//! and a stable rule identifier, so CI output and the JSON report can be
//! consumed mechanically. Suppression is via line comments of the form
//!
//! ```text
//! // audit:allow(hash-iter, reason="token-keyed lookup, never iterated")
//! ```
//!
//! placed on the offending line or the line directly above it. The
//! engine verifies every annotation actually suppressed something — a
//! dangling allow is itself reported (`unused-allow`), so stale
//! annotations cannot silently accumulate.

use crate::lexer::{AllowSite, FileScan, Tok, TokKind};

/// D1: `HashMap`/`HashSet` in sim-facing crates (declaration or
/// iteration). Hash iteration order is seeded per-process, so any
/// iterated hash container breaks bit-identical replay.
pub const RULE_HASH_ITER: &str = "hash-iter";
/// D2: `Instant::now` / `SystemTime` wall-clock reads outside the bench
/// crate and annotated telemetry sites.
pub const RULE_WALL_CLOCK: &str = "wall-clock";
/// D3: ambient entropy (`thread_rng`, `from_entropy`, `OsRng`, …) —
/// all randomness must flow through `desim::rng`'s seeded streams.
pub const RULE_AMBIENT_ENTROPY: &str = "ambient-entropy";
/// D4: unordered parallel float reductions (`par_iter().sum()` and
/// friends) — float addition is not associative, so reduction order must
/// be fixed.
pub const RULE_PAR_FLOAT_SUM: &str = "par-float-sum";
/// D5: cross-thread merges of per-shard simulation state outside the
/// blessed, order-fixed barrier merge. Folding shard results as worker
/// threads happen to finish makes the aggregate depend on scheduling;
/// every merge site must gather by shard index and carry an annotation
/// spelling out why its fold order is fixed.
pub const RULE_SHARD_MERGE: &str = "shard-merge";
/// An `audit:allow` annotation that suppressed nothing.
pub const RULE_UNUSED_ALLOW: &str = "unused-allow";
/// An `audit:allow` annotation without a `reason="…"` clause.
pub const RULE_MISSING_REASON: &str = "missing-reason";

/// All enforced determinism rules (the D-numbered contract).
pub const DETERMINISM_RULES: [&str; 5] = [
    RULE_HASH_ITER,
    RULE_WALL_CLOCK,
    RULE_AMBIENT_ENTROPY,
    RULE_PAR_FLOAT_SUM,
    RULE_SHARD_MERGE,
];

/// Diagnostic severity. Violations always fail the audit; warnings fail
/// only under `--deny-warnings` (the CI setting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory (unused/reason-less annotations).
    Warning,
    /// A determinism-contract violation.
    Violation,
}

/// One finding, positioned at an exact source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier (`hash-iter`, `wall-clock`, …).
    pub rule: &'static str,
    /// Violation or warning.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// Per-file lint context derived from the workspace-relative path.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path (diagnostics key).
    pub rel_path: String,
    /// D1 applies: the file belongs to a crate whose state feeds the
    /// simulation (`desim`, `gridsim`, `rms`, `core`).
    pub sim_facing: bool,
    /// D2 is path-exempt: benchmark code (the `bench` crate and
    /// `benches/` directories) may read the wall clock freely.
    pub wall_clock_exempt: bool,
}

impl FileCtx {
    /// Classifies a workspace-relative path (forward slashes).
    pub fn classify(rel_path: &str) -> FileCtx {
        let sim_facing = [
            "crates/desim/",
            "crates/gridsim/",
            "crates/rms/",
            "crates/core/",
        ]
        .iter()
        .any(|p| rel_path.starts_with(p));
        let wall_clock_exempt =
            rel_path.starts_with("crates/bench/") || rel_path.contains("/benches/");
        FileCtx {
            rel_path: rel_path.to_string(),
            sim_facing,
            wall_clock_exempt,
        }
    }
}

/// Tracks which allow annotations suppressed at least one diagnostic.
struct AllowLedger<'a> {
    allows: &'a [AllowSite],
    used: Vec<bool>,
}

impl<'a> AllowLedger<'a> {
    fn new(allows: &'a [AllowSite]) -> Self {
        AllowLedger {
            allows,
            used: vec![false; allows.len()],
        }
    }

    /// True (and marks the annotation used) when a diagnostic of `rule`
    /// at `line` is covered by an annotation on the same or previous
    /// line.
    fn suppresses(&mut self, rule: &str, line: u32) -> bool {
        for (i, a) in self.allows.iter().enumerate() {
            if a.rule == rule && (a.line == line || a.line + 1 == line) {
                self.used[i] = true;
                return true;
            }
        }
        false
    }
}

/// Runs every rule over one lexed file, returning its diagnostics.
pub fn check_file(ctx: &FileCtx, scan: &FileScan) -> Vec<Diagnostic> {
    let mut ledger = AllowLedger::new(&scan.allows);
    let mut out = Vec::new();
    let toks = &scan.toks;

    let mut emit = |ledger: &mut AllowLedger, rule: &'static str, line: u32, message: String| {
        if !ledger.suppresses(rule, line) {
            out.push(Diagnostic {
                rule,
                severity: Severity::Violation,
                file: ctx.rel_path.clone(),
                line,
                message,
            });
        }
    };

    if ctx.sim_facing {
        check_hash_iter(ctx, toks, &mut ledger, &mut emit);
        check_shard_merge(toks, &mut ledger, &mut emit);
    }
    if !ctx.wall_clock_exempt {
        check_wall_clock(toks, &mut ledger, &mut emit);
    }
    check_ambient_entropy(toks, &mut ledger, &mut emit);
    check_par_float_sum(toks, &mut ledger, &mut emit);

    // Annotation hygiene: every allow must have earned its keep, and
    // should carry a reason.
    for (i, a) in scan.allows.iter().enumerate() {
        if !DETERMINISM_RULES.contains(&a.rule.as_str()) {
            out.push(Diagnostic {
                rule: RULE_UNUSED_ALLOW,
                severity: Severity::Warning,
                file: ctx.rel_path.clone(),
                line: a.line,
                message: format!(
                    "audit:allow names unknown rule `{}` (known: {})",
                    a.rule,
                    DETERMINISM_RULES.join(", ")
                ),
            });
            continue;
        }
        if !ledger.used[i] {
            out.push(Diagnostic {
                rule: RULE_UNUSED_ALLOW,
                severity: Severity::Warning,
                file: ctx.rel_path.clone(),
                line: a.line,
                message: format!(
                    "audit:allow({}) is not attached to any `{}` use site — remove it",
                    a.rule, a.rule
                ),
            });
        } else if !a.has_reason {
            out.push(Diagnostic {
                rule: RULE_MISSING_REASON,
                severity: Severity::Warning,
                file: ctx.rel_path.clone(),
                line: a.line,
                message: format!(
                    "audit:allow({}) suppresses a diagnostic but carries no reason=\"…\"",
                    a.rule
                ),
            });
        }
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    // One diagnostic per (rule, line): `HashMap<K, V> = HashMap::new()`
    // on a single line is one finding, not two.
    out.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    out
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Tok], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Methods whose call on a hash container observes its nondeterministic
/// iteration order.
const HASH_ITER_METHODS: [&str; 12] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "extract_if",
    "clone_from_iter",
];

/// D1. Two sub-checks:
///
/// 1. Every `HashMap`/`HashSet` *mention* (type position or constructor,
///    `use` declarations excepted) must carry an allow annotation
///    declaring the map lookup-only.
/// 2. Any order-observing method call (or `for … in` loop) on an
///    identifier bound to a hash container is flagged — annotated or
///    not, because iterating contradicts the lookup-only declaration.
fn check_hash_iter(
    _ctx: &FileCtx,
    toks: &[Tok],
    ledger: &mut AllowLedger,
    emit: &mut impl FnMut(&mut AllowLedger, &'static str, u32, String),
) {
    // Identifiers bound to hash containers (fields, lets, statics).
    let mut hash_idents: Vec<String> = Vec::new();
    let mut in_use = false;

    for (i, t) in toks.iter().enumerate() {
        match &t.kind {
            TokKind::Ident(id) if id == "use" => {
                // `use` only begins an import at statement position (also
                // `pub use` / `pub(crate) use`); the closure-capture
                // keyword can't be followed by a path.
                let stmt_start = match i.checked_sub(1).map(|j| &toks[j].kind) {
                    None => true,
                    Some(TokKind::Punct(';' | '}' | '{' | ')' | ']')) => true,
                    Some(TokKind::Ident(p)) if p == "pub" => true,
                    _ => false,
                };
                if stmt_start {
                    in_use = true;
                }
            }
            TokKind::Punct(';') => in_use = false,
            TokKind::Ident(id) if id == "HashMap" || id == "HashSet" => {
                if in_use {
                    continue;
                }
                // Record the bound identifier (look back past the type
                // path / `&mut` / generics for `name :` or `name =`).
                if let Some(name) = binding_ident(toks, i) {
                    if !hash_idents.contains(&name) {
                        hash_idents.push(name);
                    }
                }
                emit(
                    ledger,
                    RULE_HASH_ITER,
                    t.line,
                    format!(
                        "{id} in a sim-facing crate: use BTreeMap/BTreeSet (deterministic \
                         order), or annotate a lookup-only map with \
                         `// audit:allow(hash-iter, reason=\"…\")`"
                    ),
                );
            }
            _ => {}
        }
    }

    // Iteration sites over tracked identifiers.
    for i in 0..toks.len() {
        // `x.iter()` / `self.x.drain()` …
        if let Some(name) = ident_at(toks, i) {
            if hash_idents.iter().any(|h| h == name)
                && punct_at(toks, i + 1) == Some('.')
                && ident_at(toks, i + 2).is_some_and(|m| HASH_ITER_METHODS.contains(&m))
                && punct_at(toks, i + 3) == Some('(')
            {
                let line = toks[i].line;
                let method = ident_at(toks, i + 2).unwrap().to_string();
                emit(
                    ledger,
                    RULE_HASH_ITER,
                    line,
                    format!(
                        "`{name}.{method}()` iterates a hash container in unspecified \
                         order — migrate `{name}` to BTreeMap/BTreeSet or collect-and-sort"
                    ),
                );
            }
            // `for v in &map { … }` / `for (k, v) in map { … }`
            if name == "in" {
                for j in (i + 1)..(i + 6).min(toks.len()) {
                    match &toks[j].kind {
                        TokKind::Ident(id) if hash_idents.iter().any(|h| h == id) => {
                            // Method calls after the ident (e.g.
                            // `map.get(..)`) are not direct iteration.
                            if punct_at(toks, j + 1) == Some('.') {
                                break;
                            }
                            emit(
                                ledger,
                                RULE_HASH_ITER,
                                toks[j].line,
                                format!(
                                    "`for … in {id}` iterates a hash container in \
                                     unspecified order"
                                ),
                            );
                            break;
                        }
                        TokKind::Punct('{') => break,
                        _ => {}
                    }
                }
            }
        }
    }
}

/// Walks backwards from a `HashMap`/`HashSet` token to the identifier it
/// is bound to (`pending: HashMap<…>`, `let m = HashMap::new()`, …).
fn binding_ident(toks: &[Tok], at: usize) -> Option<String> {
    let mut j = at;
    // Skip the path/reference/generic prelude before the type name.
    while j > 0 {
        j -= 1;
        match &toks[j].kind {
            TokKind::Punct(':') | TokKind::Punct('=') => {
                // Collapse `::` (path separator) — keep walking.
                if toks[j].kind == TokKind::Punct(':')
                    && j > 0
                    && toks[j - 1].kind == TokKind::Punct(':')
                {
                    j -= 1;
                    continue;
                }
                // Found the binding separator; the name precedes it.
                let mut k = j;
                while k > 0 {
                    k -= 1;
                    match &toks[k].kind {
                        TokKind::Ident(id) if id == "mut" => continue,
                        TokKind::Ident(id) => return Some(id.clone()),
                        TokKind::Punct('>') | TokKind::Punct(')') => return None,
                        _ => return None,
                    }
                }
                return None;
            }
            TokKind::Ident(id)
                if id == "std" || id == "collections" || id == "mut" || id == "dyn" =>
            {
                continue;
            }
            TokKind::Punct('&') | TokKind::Punct('<') => continue,
            _ => return None,
        }
    }
    None
}

/// D2: `Instant::now` and any `SystemTime` use.
fn check_wall_clock(
    toks: &[Tok],
    ledger: &mut AllowLedger,
    emit: &mut impl FnMut(&mut AllowLedger, &'static str, u32, String),
) {
    for i in 0..toks.len() {
        match ident_at(toks, i) {
            Some("Instant")
                if punct_at(toks, i + 1) == Some(':')
                    && punct_at(toks, i + 2) == Some(':')
                    && ident_at(toks, i + 3) == Some("now") =>
            {
                emit(
                    ledger,
                    RULE_WALL_CLOCK,
                    toks[i].line,
                    "Instant::now() reads the wall clock — simulation state must \
                     derive from SimTime only (telemetry sites: annotate with \
                     `// audit:allow(wall-clock, reason=\"…\")`)"
                        .to_string(),
                );
            }
            Some("SystemTime") => {
                emit(
                    ledger,
                    RULE_WALL_CLOCK,
                    toks[i].line,
                    "SystemTime is wall-clock state — simulation inputs must be \
                     seeded and replayable"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
}

/// Ambient entropy sources D3 forbids outright.
const ENTROPY_IDENTS: [&str; 6] = [
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "getrandom",
    "random_seed",
];

/// D3: ambient entropy. Also catches `rand::random::<T>()`.
fn check_ambient_entropy(
    toks: &[Tok],
    ledger: &mut AllowLedger,
    emit: &mut impl FnMut(&mut AllowLedger, &'static str, u32, String),
) {
    for i in 0..toks.len() {
        if let Some(id) = ident_at(toks, i) {
            if ENTROPY_IDENTS.contains(&id) {
                emit(
                    ledger,
                    RULE_AMBIENT_ENTROPY,
                    toks[i].line,
                    format!(
                        "`{id}` draws ambient entropy — all randomness must flow \
                         through desim::SimRng's seeded streams"
                    ),
                );
            } else if id == "rand"
                && punct_at(toks, i + 1) == Some(':')
                && punct_at(toks, i + 2) == Some(':')
                && ident_at(toks, i + 3) == Some("random")
            {
                emit(
                    ledger,
                    RULE_AMBIENT_ENTROPY,
                    toks[i].line,
                    "`rand::random` draws from the thread-local generator — use a \
                     seeded SimRng stream"
                        .to_string(),
                );
            }
        }
    }
}

/// Parallel-iterator entry points whose reduction order is scheduling-
/// dependent.
const PAR_ITER_IDENTS: [&str; 5] = [
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_bridge",
];

/// Reducers that are order-sensitive over floats.
const REDUCERS: [&str; 4] = ["sum", "product", "reduce", "fold"];

/// How many tokens after `par_iter` a reducer is still considered part
/// of the same chain (chains are short; statements end at `;`).
const CHAIN_WINDOW: usize = 48;

/// D4: unordered parallel float reductions.
fn check_par_float_sum(
    toks: &[Tok],
    ledger: &mut AllowLedger,
    emit: &mut impl FnMut(&mut AllowLedger, &'static str, u32, String),
) {
    for i in 0..toks.len() {
        let Some(id) = ident_at(toks, i) else {
            continue;
        };
        if !PAR_ITER_IDENTS.contains(&id) {
            continue;
        }
        for j in (i + 1)..(i + CHAIN_WINDOW).min(toks.len()) {
            if punct_at(toks, j) == Some(';') {
                break;
            }
            if punct_at(toks, j) == Some('.') {
                if let Some(m) = ident_at(toks, j + 1) {
                    if REDUCERS.contains(&m) {
                        emit(
                            ledger,
                            RULE_PAR_FLOAT_SUM,
                            toks[i].line,
                            format!(
                                "`{id}().…{m}()` reduces in scheduling order — float \
                                 reductions must be sequential or tree-fixed \
                                 (telemetry: annotate with \
                                 `// audit:allow(par-float-sum, reason=\"…\")`)"
                            ),
                        );
                        break;
                    }
                }
            }
        }
    }
}

/// Methods that combine per-shard simulation state across threads. The
/// definition site is exempt (`fn absorb_shard` is just the primitive);
/// every *call* must sit inside the blessed, shard-ordered merge and be
/// annotated.
const SHARD_MERGE_IDENTS: [&str; 2] = ["absorb_shard", "merge_shard_core"];

/// Chain consumers that gather thread `join()` results into one value.
const GATHER_METHODS: [&str; 5] = ["collect", "fold", "reduce", "extend", "for_each"];

/// D5: cross-thread shard merges. Two sub-checks:
///
/// 1. Any call to a shard-state merge primitive (`absorb_shard`,
///    `merge_shard_core`) — the fold is only exact when slots are
///    disjoint and shards merge in ascending index order, so each call
///    site must carry an annotation stating that argument.
/// 2. `handle.join()` results flowing straight into a gather
///    (`collect`, `fold`, …): the gathered order must not depend on
///    thread completion order — sort by shard index and annotate.
fn check_shard_merge(
    toks: &[Tok],
    ledger: &mut AllowLedger,
    emit: &mut impl FnMut(&mut AllowLedger, &'static str, u32, String),
) {
    for i in 0..toks.len() {
        let Some(id) = ident_at(toks, i) else {
            continue;
        };
        if SHARD_MERGE_IDENTS.contains(&id)
            && punct_at(toks, i + 1) == Some('(')
            && (i == 0 || ident_at(toks, i - 1) != Some("fn"))
        {
            emit(
                ledger,
                RULE_SHARD_MERGE,
                toks[i].line,
                format!(
                    "`{id}` merges per-shard simulation state — only the barrier-\
                     ordered merge may fold shard results; annotate the blessed \
                     site with `// audit:allow(shard-merge, reason=\"…\")` \
                     spelling out why the fold order is fixed"
                ),
            );
        }
        // Thread-gather chains: `h.join()` (argument-less — thread
        // handles, not str/path join) feeding a reducer.
        if id == "join" && punct_at(toks, i + 1) == Some('(') && punct_at(toks, i + 2) == Some(')')
        {
            for j in (i + 3)..(i + CHAIN_WINDOW).min(toks.len()) {
                if punct_at(toks, j) == Some(';') {
                    break;
                }
                if punct_at(toks, j) == Some('.') {
                    if let Some(m) = ident_at(toks, j + 1) {
                        if GATHER_METHODS.contains(&m) {
                            emit(
                                ledger,
                                RULE_SHARD_MERGE,
                                toks[i].line,
                                format!(
                                    "thread `join()` results flow into `{m}` — the \
                                     merge order must not depend on completion order; \
                                     gather by shard index and annotate with \
                                     `// audit:allow(shard-merge, reason=\"…\")`"
                                ),
                            );
                            break;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
        check_file(&FileCtx::classify(path), &scan(src))
    }

    #[test]
    fn hash_map_declaration_flagged_in_sim_crates_only() {
        let src = "struct S { pending: HashMap<u64, Job> }";
        assert_eq!(lint("crates/rms/src/x.rs", src).len(), 1);
        assert_eq!(lint("crates/topology/src/x.rs", src).len(), 0);
    }

    #[test]
    fn annotated_lookup_map_is_allowed_but_iteration_is_not() {
        let ok = "// audit:allow(hash-iter, reason=\"token-keyed lookups only\")\nlet cache: HashMap<u64, f64> = HashMap::new();";
        // One mention per line; the annotation covers both lines it spans.
        let diags = lint("crates/core/src/x.rs", ok);
        assert!(diags.is_empty(), "{diags:?}");

        let bad = "// audit:allow(hash-iter, reason=\"lookups\")\nlet cache: HashMap<u64, f64> = HashMap::new();\nfor v in cache.values() { }";
        let diags = lint("crates/core/src/x.rs", bad);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == RULE_HASH_ITER && d.severity == Severity::Violation),
            "iteration must stay flagged: {diags:?}"
        );
    }

    #[test]
    fn use_statements_are_not_use_sites() {
        let src = "use std::collections::HashMap;";
        assert!(lint("crates/rms/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_and_entropy_and_par_sum_fire() {
        let d = lint("crates/core/src/x.rs", "let t = Instant::now();");
        assert_eq!(d[0].rule, RULE_WALL_CLOCK);
        let d = lint("src/lib.rs", "let r = thread_rng();");
        assert_eq!(d[0].rule, RULE_AMBIENT_ENTROPY);
        let d = lint(
            "crates/core/src/x.rs",
            "let s: f64 = xs.par_iter().map(f).sum();",
        );
        assert_eq!(d[0].rule, RULE_PAR_FLOAT_SUM);
    }

    #[test]
    fn bench_paths_are_wall_clock_exempt() {
        let src = "let t = Instant::now();";
        assert!(lint("crates/bench/src/bin/figures.rs", src).is_empty());
        assert!(lint("crates/gridsim/benches/sim_replay.rs", src).is_empty());
    }

    #[test]
    fn unused_allow_warns() {
        let d = lint(
            "crates/rms/src/x.rs",
            "// audit:allow(wall-clock, reason=\"nothing here\")\nlet x = 1;",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RULE_UNUSED_ALLOW);
        assert_eq!(d[0].severity, Severity::Warning);
    }

    #[test]
    fn shard_merge_fires_on_calls_not_definitions() {
        // The primitive's definition is fine; a bare call is not.
        let def = "impl Accounting { pub(crate) fn absorb_shard(&mut self, o: &Accounting) {} }";
        assert!(lint("crates/gridsim/src/x.rs", def).is_empty());

        let call = "base.acct.absorb_shard(&other.acct);";
        let d = lint("crates/gridsim/src/x.rs", call);
        assert_eq!(d[0].rule, RULE_SHARD_MERGE);
        assert_eq!(d[0].severity, Severity::Violation);
        // Outside sim-facing crates the rule is silent.
        assert!(lint("crates/bench/src/x.rs", call).is_empty());

        let allowed = "// audit:allow(shard-merge, reason=\"ascending shard order\")\nbase.acct.absorb_shard(&other.acct);";
        assert!(lint("crates/gridsim/src/x.rs", allowed).is_empty());
    }

    #[test]
    fn join_gather_chains_fire_but_str_join_does_not() {
        let bad = "let all: Vec<Shard> = handles.into_iter().map(|h| h.join().unwrap()).collect();";
        let d = lint("crates/gridsim/src/x.rs", bad);
        assert_eq!(d[0].rule, RULE_SHARD_MERGE);

        // `join` with arguments is string/path joining, not thread gather.
        let ok = "let s = parts.join(\", \");";
        assert!(lint("crates/gridsim/src/x.rs", ok).is_empty());

        // A lone join with no downstream gather is not a merge.
        let lone = "handle.join().unwrap();";
        assert!(lint("crates/gridsim/src/x.rs", lone).is_empty());
    }

    #[test]
    fn for_loop_over_hash_map_fires_but_get_does_not() {
        let bad = "let m: HashMap<u64, u64> = HashMap::new();\nfor (k, v) in &m { }";
        let d = lint("crates/gridsim/src/x.rs", bad);
        // One deduped finding for the declaration line, one for the loop.
        let lines: Vec<u32> = d
            .iter()
            .filter(|d| d.rule == RULE_HASH_ITER)
            .map(|d| d.line)
            .collect();
        assert_eq!(lines, vec![1, 2], "{d:?}");

        let ok = "// audit:allow(hash-iter, reason=\"lookup table\")\nlet m: HashMap<u64, u64> = HashMap::new();\nlet v = m.get(&1);";
        let d = lint("crates/gridsim/src/x.rs", ok);
        assert!(d.is_empty(), "{d:?}");
    }
}
