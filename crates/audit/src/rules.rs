//! The determinism rules D1–D9.
//!
//! Every rule produces [`Diagnostic`]s with exact `file:line` positions
//! and a stable rule identifier, so CI output and the JSON report can be
//! consumed mechanically. Suppression is via line comments of the form
//!
//! ```text
//! // audit:allow(hash-iter, reason="token-keyed lookup, never iterated")
//! ```
//!
//! placed on the offending line or directly above it (annotation
//! comments stack: several `audit:allow` lines above one statement all
//! cover it). The engine verifies every annotation actually suppressed
//! something — a dangling allow is itself reported (`unused-allow`), so
//! stale annotations cannot silently accumulate.
//!
//! This module holds the *lexical* rules (D1–D6, D9), which see one
//! file at a time, plus the shared diagnostic/suppression machinery.
//! The workspace-aware rules — D7 `hot-path-panic`, D8
//! `shared-interior-mut`, and the cross-file `taint-flow` pass — live in
//! [`crate::taint`] on top of the item index and call graph.

use crate::index::FileIndex;
use crate::lexer::{AllowSite, FileScan, Tok, TokKind};

/// D1: `HashMap`/`HashSet` in sim-facing crates (declaration or
/// iteration). Hash iteration order is seeded per-process, so any
/// iterated hash container breaks bit-identical replay.
pub const RULE_HASH_ITER: &str = "hash-iter";
/// D2: `Instant::now` / `SystemTime` wall-clock reads outside the bench
/// crate and annotated telemetry sites.
pub const RULE_WALL_CLOCK: &str = "wall-clock";
/// D3: ambient entropy (`thread_rng`, `from_entropy`, `OsRng`, …) —
/// all randomness must flow through `desim::rng`'s seeded streams.
pub const RULE_AMBIENT_ENTROPY: &str = "ambient-entropy";
/// D4: unordered parallel float reductions (`par_iter().sum()` and
/// friends) — float addition is not associative, so reduction order must
/// be fixed.
pub const RULE_PAR_FLOAT_SUM: &str = "par-float-sum";
/// D5: cross-thread merges of per-shard simulation state outside the
/// blessed, order-fixed barrier merge. Folding shard results as worker
/// threads happen to finish makes the aggregate depend on scheduling;
/// every merge site must gather by shard index and carry an annotation
/// spelling out why its fold order is fixed.
pub const RULE_SHARD_MERGE: &str = "shard-merge";
/// D6: sequential float accumulation whose order is fixed by a keyed
/// container's iteration rather than by the blessed ascending-shard /
/// ascending-rep folds. Over a hash container the order is
/// nondeterministic outright; over a `BTreeMap`/`BTreeSet` it is stable
/// only as long as nobody changes the key type or container — the fold
/// must either be restructured over an explicitly ordered sequence or
/// annotated with the ordering argument.
pub const RULE_SEQ_FLOAT_FOLD: &str = "seq-float-fold";
/// D7: `panic!` / `unwrap` / `expect` / unchecked access reachable from
/// the replay hot path (`SimTemplate::run*`). A panic mid-replay tears
/// down a sharded run at a scheduling-dependent point; hot-path code
/// must return errors or defaults instead.
pub const RULE_HOT_PATH_PANIC: &str = "hot-path-panic";
/// D8: interior mutability (`Cell`, `RefCell`, `Mutex`, atomics, …)
/// inside types reachable by value from an `Arc`-shared root
/// (`SharedWorld`, `Layout`, …). A shared world must be deeply immutable
/// during replay — hidden write channels let one run observe another.
pub const RULE_SHARED_INTERIOR_MUT: &str = "shared-interior-mut";
/// D9: blocking or lock acquisition inside sharded barrier-phase
/// functions (the `RoundBarrier` flush/drain/run rounds). An unexpected
/// lock inside a phase can deadlock against the barrier or serialize
/// the window; every blocking site there must carry its non-contention
/// argument.
pub const RULE_BARRIER_BLOCKING: &str = "barrier-blocking";
/// Cross-file taint: a nondeterminism source (hash iteration, wall
/// clock, order-sensitive fold) in a crate where the per-file rules
/// stand down, reached transitively from a sim-facing sink (a `Policy`
/// impl, kernel dispatch, shard merge, accounting fold, or
/// `SimTemplate::run*`). The diagnostic carries the full source→sink
/// call chain.
pub const RULE_TAINT_FLOW: &str = "taint-flow";
/// An `audit:allow` annotation that suppressed nothing.
pub const RULE_UNUSED_ALLOW: &str = "unused-allow";
/// An `audit:allow` annotation without a `reason="…"` clause.
pub const RULE_MISSING_REASON: &str = "missing-reason";

/// All enforced determinism rules (the D-numbered contract plus the
/// cross-file taint pass).
pub const DETERMINISM_RULES: [&str; 10] = [
    RULE_HASH_ITER,
    RULE_WALL_CLOCK,
    RULE_AMBIENT_ENTROPY,
    RULE_PAR_FLOAT_SUM,
    RULE_SHARD_MERGE,
    RULE_SEQ_FLOAT_FOLD,
    RULE_HOT_PATH_PANIC,
    RULE_SHARED_INTERIOR_MUT,
    RULE_BARRIER_BLOCKING,
    RULE_TAINT_FLOW,
];

/// Diagnostic severity. Violations always fail the audit; warnings fail
/// only under `--deny-warnings` (the CI setting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory (unused/reason-less annotations).
    Warning,
    /// A determinism-contract violation.
    Violation,
}

/// One finding, positioned at an exact source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier (`hash-iter`, `wall-clock`, …).
    pub rule: &'static str,
    /// Violation or warning.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Enclosing function (`Type::name`) or type, when known. Baseline
    /// entries key on this instead of the line, so accepted findings
    /// survive unrelated edits above them.
    pub symbol: String,
    /// For call-graph rules: the call chain from the sim-facing entry
    /// point down to this site, outermost first.
    pub chain: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic with no symbol/chain attribution (filled in later
    /// by the engine from the item index).
    pub(crate) fn new(
        rule: &'static str,
        severity: Severity,
        file: &str,
        line: u32,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            severity,
            file: file.to_string(),
            line,
            message,
            symbol: String::new(),
            chain: Vec::new(),
        }
    }
}

/// Per-file lint context derived from the workspace-relative path.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path (diagnostics key).
    pub rel_path: String,
    /// D1 applies: the file belongs to a crate whose state feeds the
    /// simulation (`desim`, `gridsim`, `rms`, `core`).
    pub sim_facing: bool,
    /// D2 is path-exempt: benchmark code (the `bench` crate and
    /// `benches/` directories) may read the wall clock freely.
    pub wall_clock_exempt: bool,
    /// Test/bench/example context: functions here are invisible to the
    /// call graph (they neither taint nor get tainted).
    pub test_context: bool,
}

impl FileCtx {
    /// Classifies a workspace-relative path (forward slashes).
    pub fn classify(rel_path: &str) -> FileCtx {
        let sim_facing = [
            "crates/desim/",
            "crates/gridsim/",
            "crates/rms/",
            "crates/core/",
        ]
        .iter()
        .any(|p| rel_path.starts_with(p));
        let wall_clock_exempt =
            rel_path.starts_with("crates/bench/") || rel_path.contains("/benches/");
        let test_context = rel_path.starts_with("tests/")
            || rel_path.contains("/tests/")
            || rel_path.starts_with("benches/")
            || rel_path.contains("/benches/")
            || rel_path.starts_with("examples/")
            || rel_path.contains("/examples/");
        FileCtx {
            rel_path: rel_path.to_string(),
            sim_facing,
            wall_clock_exempt,
            test_context,
        }
    }
}

// ---------------------------------------------------------------------
// Container-binding tracking (shared by D1, D6, and the taint facts)
// ---------------------------------------------------------------------

/// What a tracked identifier is bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ContainerKind {
    /// `HashMap` / `HashSet`: iteration order is per-process random.
    Hash,
    /// `BTreeMap` / `BTreeSet`: ordered by key, but value folds still
    /// encode an implicit ordering contract (D6).
    BTree,
}

/// Identifiers bound to keyed containers in one file (fields, lets,
/// params, statics), found by walking back from the type tokens.
#[derive(Debug, Default)]
pub(crate) struct ContainerBindings {
    names: Vec<(String, ContainerKind)>,
}

impl ContainerBindings {
    pub(crate) fn collect(toks: &[Tok]) -> ContainerBindings {
        let mut b = ContainerBindings::default();
        for (i, t) in toks.iter().enumerate() {
            let kind = match &t.kind {
                TokKind::Ident(id) if id == "HashMap" || id == "HashSet" => ContainerKind::Hash,
                TokKind::Ident(id) if id == "BTreeMap" || id == "BTreeSet" => ContainerKind::BTree,
                _ => continue,
            };
            if let Some(name) = binding_ident(toks, i) {
                if !b.names.iter().any(|(n, _)| *n == name) {
                    b.names.push((name, kind));
                }
            }
        }
        b
    }

    pub(crate) fn kind_of(&self, name: &str) -> Option<ContainerKind> {
        self.names.iter().find(|(n, _)| n == name).map(|(_, k)| *k)
    }

    fn is_hash(&self, name: &str) -> bool {
        self.kind_of(name) == Some(ContainerKind::Hash)
    }
}

/// Walks backwards from a container type token to the identifier it is
/// bound to (`pending: HashMap<…>`, `let m = HashMap::new()`, …).
fn binding_ident(toks: &[Tok], at: usize) -> Option<String> {
    let mut j = at;
    // Skip the path/reference/generic prelude before the type name.
    while j > 0 {
        j -= 1;
        match &toks[j].kind {
            TokKind::Punct(':') | TokKind::Punct('=') => {
                // Collapse `::` (path separator) — keep walking.
                if toks[j].kind == TokKind::Punct(':')
                    && j > 0
                    && toks[j - 1].kind == TokKind::Punct(':')
                {
                    j -= 1;
                    continue;
                }
                // Found the binding separator; the name precedes it.
                let mut k = j;
                while k > 0 {
                    k -= 1;
                    match &toks[k].kind {
                        TokKind::Ident(id) if id == "mut" => continue,
                        TokKind::Ident(id) => return Some(id.clone()),
                        TokKind::Punct('>') | TokKind::Punct(')') => return None,
                        _ => return None,
                    }
                }
                return None;
            }
            TokKind::Ident(id)
                if id == "std" || id == "collections" || id == "mut" || id == "dyn" =>
            {
                continue;
            }
            TokKind::Punct('&') | TokKind::Punct('<') => continue,
            _ => return None,
        }
    }
    None
}

// ---------------------------------------------------------------------
// Raw rule passes (no suppression — the engine applies allows after)
// ---------------------------------------------------------------------

pub(crate) fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

pub(crate) fn punct_at(toks: &[Tok], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Methods whose call on a hash container observes its nondeterministic
/// iteration order.
pub(crate) const HASH_ITER_METHODS: [&str; 12] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "extract_if",
    "clone_from_iter",
];

/// D1. Two sub-checks:
///
/// 1. Every `HashMap`/`HashSet` *mention* (type position or constructor,
///    `use` declarations excepted) must carry an allow annotation
///    declaring the map lookup-only.
/// 2. Any order-observing method call (or `for … in` loop) on an
///    identifier bound to a hash container is flagged — annotated or
///    not, because iterating contradicts the lookup-only declaration.
fn check_hash_iter(
    ctx: &FileCtx,
    toks: &[Tok],
    bindings: &ContainerBindings,
    out: &mut Vec<Diagnostic>,
) {
    let mut in_use = false;
    for (i, t) in toks.iter().enumerate() {
        match &t.kind {
            TokKind::Ident(id) if id == "use" => {
                // `use` only begins an import at statement position (also
                // `pub use` / `pub(crate) use`); the closure-capture
                // keyword can't be followed by a path.
                let stmt_start = match i.checked_sub(1).map(|j| &toks[j].kind) {
                    None => true,
                    Some(TokKind::Punct(';' | '}' | '{' | ')' | ']')) => true,
                    Some(TokKind::Ident(p)) if p == "pub" => true,
                    _ => false,
                };
                if stmt_start {
                    in_use = true;
                }
            }
            TokKind::Punct(';') => in_use = false,
            TokKind::Ident(id) if id == "HashMap" || id == "HashSet" => {
                if in_use {
                    continue;
                }
                out.push(Diagnostic::new(
                    RULE_HASH_ITER,
                    Severity::Violation,
                    &ctx.rel_path,
                    t.line,
                    format!(
                        "{id} in a sim-facing crate: use BTreeMap/BTreeSet (deterministic \
                         order), or annotate a lookup-only map with \
                         `// audit:allow(hash-iter, reason=\"…\")`"
                    ),
                ));
            }
            _ => {}
        }
    }

    // Iteration sites over tracked identifiers.
    for i in 0..toks.len() {
        if let Some(name) = ident_at(toks, i) {
            // `x.iter()` / `self.x.drain()` …
            if bindings.is_hash(name)
                && punct_at(toks, i + 1) == Some('.')
                && ident_at(toks, i + 2).is_some_and(|m| HASH_ITER_METHODS.contains(&m))
                && punct_at(toks, i + 3) == Some('(')
            {
                let line = toks[i].line;
                let method = ident_at(toks, i + 2).unwrap().to_string();
                out.push(Diagnostic::new(
                    RULE_HASH_ITER,
                    Severity::Violation,
                    &ctx.rel_path,
                    line,
                    format!(
                        "`{name}.{method}()` iterates a hash container in unspecified \
                         order — migrate `{name}` to BTreeMap/BTreeSet or collect-and-sort"
                    ),
                ));
            }
            // `for v in &map { … }` / `for (k, v) in map { … }`
            if name == "in" {
                for j in (i + 1)..(i + 6).min(toks.len()) {
                    match &toks[j].kind {
                        TokKind::Ident(id) if bindings.is_hash(id) => {
                            // Method calls after the ident (e.g.
                            // `map.get(..)`) are not direct iteration.
                            if punct_at(toks, j + 1) == Some('.') {
                                break;
                            }
                            out.push(Diagnostic::new(
                                RULE_HASH_ITER,
                                Severity::Violation,
                                &ctx.rel_path,
                                toks[j].line,
                                format!(
                                    "`for … in {id}` iterates a hash container in \
                                     unspecified order"
                                ),
                            ));
                            break;
                        }
                        TokKind::Punct('{') => break,
                        _ => {}
                    }
                }
            }
        }
    }
}

/// D2: `Instant::now` and any `SystemTime` use.
fn check_wall_clock(ctx: &FileCtx, toks: &[Tok], out: &mut Vec<Diagnostic>) {
    for (i, site) in wall_clock_sites(toks) {
        let _ = i;
        out.push(Diagnostic::new(
            RULE_WALL_CLOCK,
            Severity::Violation,
            &ctx.rel_path,
            site.0,
            site.1,
        ));
    }
}

/// Shared D2 site scanner: `(token index, (line, message))` per hit.
pub(crate) fn wall_clock_sites(toks: &[Tok]) -> Vec<(usize, (u32, String))> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        match ident_at(toks, i) {
            Some("Instant")
                if punct_at(toks, i + 1) == Some(':')
                    && punct_at(toks, i + 2) == Some(':')
                    && ident_at(toks, i + 3) == Some("now") =>
            {
                out.push((
                    i,
                    (
                        toks[i].line,
                        "Instant::now() reads the wall clock — simulation state must \
                         derive from SimTime only (telemetry sites: annotate with \
                         `// audit:allow(wall-clock, reason=\"…\")`)"
                            .to_string(),
                    ),
                ));
            }
            Some("SystemTime") => {
                out.push((
                    i,
                    (
                        toks[i].line,
                        "SystemTime is wall-clock state — simulation inputs must be \
                         seeded and replayable"
                            .to_string(),
                    ),
                ));
            }
            _ => {}
        }
    }
    out
}

/// Ambient entropy sources D3 forbids outright.
const ENTROPY_IDENTS: [&str; 6] = [
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "getrandom",
    "random_seed",
];

/// D3: ambient entropy. Also catches `rand::random::<T>()`.
fn check_ambient_entropy(ctx: &FileCtx, toks: &[Tok], out: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        if let Some(id) = ident_at(toks, i) {
            if ENTROPY_IDENTS.contains(&id) {
                out.push(Diagnostic::new(
                    RULE_AMBIENT_ENTROPY,
                    Severity::Violation,
                    &ctx.rel_path,
                    toks[i].line,
                    format!(
                        "`{id}` draws ambient entropy — all randomness must flow \
                         through desim::SimRng's seeded streams"
                    ),
                ));
            } else if id == "rand"
                && punct_at(toks, i + 1) == Some(':')
                && punct_at(toks, i + 2) == Some(':')
                && ident_at(toks, i + 3) == Some("random")
            {
                out.push(Diagnostic::new(
                    RULE_AMBIENT_ENTROPY,
                    Severity::Violation,
                    &ctx.rel_path,
                    toks[i].line,
                    "`rand::random` draws from the thread-local generator — use a \
                     seeded SimRng stream"
                        .to_string(),
                ));
            }
        }
    }
}

/// Parallel-iterator entry points whose reduction order is scheduling-
/// dependent.
const PAR_ITER_IDENTS: [&str; 5] = [
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_bridge",
];

/// Reducers that are order-sensitive over floats.
pub(crate) const REDUCERS: [&str; 4] = ["sum", "product", "reduce", "fold"];

/// How many tokens after `par_iter` a reducer is still considered part
/// of the same chain (chains are short; statements end at `;`).
pub(crate) const CHAIN_WINDOW: usize = 48;

/// D4: unordered parallel float reductions.
fn check_par_float_sum(ctx: &FileCtx, toks: &[Tok], out: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        let Some(id) = ident_at(toks, i) else {
            continue;
        };
        if !PAR_ITER_IDENTS.contains(&id) {
            continue;
        }
        for j in (i + 1)..(i + CHAIN_WINDOW).min(toks.len()) {
            if punct_at(toks, j) == Some(';') {
                break;
            }
            if punct_at(toks, j) == Some('.') {
                if let Some(m) = ident_at(toks, j + 1) {
                    if REDUCERS.contains(&m) {
                        out.push(Diagnostic::new(
                            RULE_PAR_FLOAT_SUM,
                            Severity::Violation,
                            &ctx.rel_path,
                            toks[i].line,
                            format!(
                                "`{id}().…{m}()` reduces in scheduling order — float \
                                 reductions must be sequential or tree-fixed \
                                 (telemetry: annotate with \
                                 `// audit:allow(par-float-sum, reason=\"…\")`)"
                            ),
                        ));
                        break;
                    }
                }
            }
        }
    }
}

/// Methods that combine per-shard simulation state across threads. The
/// definition site is exempt (`fn absorb_shard` is just the primitive);
/// every *call* must sit inside the blessed, shard-ordered merge and be
/// annotated.
const SHARD_MERGE_IDENTS: [&str; 2] = ["absorb_shard", "merge_shard_core"];

/// Chain consumers that gather thread `join()` results into one value.
const GATHER_METHODS: [&str; 5] = ["collect", "fold", "reduce", "extend", "for_each"];

/// D5: cross-thread shard merges. Two sub-checks:
///
/// 1. Any call to a shard-state merge primitive (`absorb_shard`,
///    `merge_shard_core`) — the fold is only exact when slots are
///    disjoint and shards merge in ascending index order, so each call
///    site must carry an annotation stating that argument.
/// 2. `handle.join()` results flowing straight into a gather
///    (`collect`, `fold`, …): the gathered order must not depend on
///    thread completion order — sort by shard index and annotate.
fn check_shard_merge(ctx: &FileCtx, toks: &[Tok], out: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        let Some(id) = ident_at(toks, i) else {
            continue;
        };
        if SHARD_MERGE_IDENTS.contains(&id)
            && punct_at(toks, i + 1) == Some('(')
            && (i == 0 || ident_at(toks, i - 1) != Some("fn"))
        {
            out.push(Diagnostic::new(
                RULE_SHARD_MERGE,
                Severity::Violation,
                &ctx.rel_path,
                toks[i].line,
                format!(
                    "`{id}` merges per-shard simulation state — only the barrier-\
                     ordered merge may fold shard results; annotate the blessed \
                     site with `// audit:allow(shard-merge, reason=\"…\")` \
                     spelling out why the fold order is fixed"
                ),
            ));
        }
        // Thread-gather chains: `h.join()` (argument-less — thread
        // handles, not str/path join) feeding a reducer.
        if id == "join" && punct_at(toks, i + 1) == Some('(') && punct_at(toks, i + 2) == Some(')')
        {
            for j in (i + 3)..(i + CHAIN_WINDOW).min(toks.len()) {
                if punct_at(toks, j) == Some(';') {
                    break;
                }
                if punct_at(toks, j) == Some('.') {
                    if let Some(m) = ident_at(toks, j + 1) {
                        if GATHER_METHODS.contains(&m) {
                            out.push(Diagnostic::new(
                                RULE_SHARD_MERGE,
                                Severity::Violation,
                                &ctx.rel_path,
                                toks[i].line,
                                format!(
                                    "thread `join()` results flow into `{m}` — the \
                                     merge order must not depend on completion order; \
                                     gather by shard index and annotate with \
                                     `// audit:allow(shard-merge, reason=\"…\")`"
                                ),
                            ));
                            break;
                        }
                    }
                }
            }
        }
    }
}

/// Iteration methods that root a D6 chain on a keyed container.
pub(crate) const KEYED_ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
];

/// D6: sequential float accumulation ordered by a keyed container's
/// iteration. Fires on `map.values().…sum::<f64>()`-shaped chains
/// (also `fold`/`reduce`/`product`) whose root identifier is bound to a
/// `HashMap`/`HashSet`/`BTreeMap`/`BTreeSet` in this file. Hash roots
/// are nondeterministic outright; BTree roots encode an implicit
/// "ascending key order" contract that must be stated — the blessed
/// ascending-shard/ascending-rep folds carry annotations.
fn check_seq_float_fold(
    ctx: &FileCtx,
    toks: &[Tok],
    bindings: &ContainerBindings,
    out: &mut Vec<Diagnostic>,
) {
    for i in 0..toks.len() {
        let Some(name) = ident_at(toks, i) else {
            continue;
        };
        let Some(kind) = bindings.kind_of(name) else {
            continue;
        };
        // Root: `name.<iter-ish>(`
        if punct_at(toks, i + 1) != Some('.')
            || !ident_at(toks, i + 2).is_some_and(|m| KEYED_ITER_METHODS.contains(&m))
            || punct_at(toks, i + 3) != Some('(')
        {
            continue;
        }
        let iter_method = ident_at(toks, i + 2).unwrap().to_string();
        // Chain: a reducer downstream of the iteration, same statement.
        for j in (i + 4)..(i + 2 * CHAIN_WINDOW).min(toks.len()) {
            if punct_at(toks, j) == Some(';') {
                break;
            }
            if punct_at(toks, j) == Some('.') {
                if let Some(m) = ident_at(toks, j + 1) {
                    if REDUCERS.contains(&m) {
                        let order = match kind {
                            ContainerKind::Hash => "hash iteration order, which varies per process",
                            ContainerKind::BTree => {
                                "ascending key order — stable today, but only by the \
                                 container's courtesy"
                            }
                        };
                        out.push(Diagnostic::new(
                            RULE_SEQ_FLOAT_FOLD,
                            Severity::Violation,
                            &ctx.rel_path,
                            toks[i].line,
                            format!(
                                "`{name}.{iter_method}().…{m}()` accumulates in {order}; \
                                 float folds outside the blessed ascending-shard/\
                                 ascending-rep folds must state their ordering argument \
                                 (`// audit:allow(seq-float-fold, reason=\"…\")`) or \
                                 fold over an explicitly ordered sequence"
                            ),
                        ));
                        break;
                    }
                }
            }
        }
    }
}

/// Blocking method calls D9 flags inside barrier-phase functions
/// (`join` only in its argument-less thread-handle form; the barrier's
/// own `wait()` is the synchronization point itself and exempt).
const BLOCKING_METHODS: [&str; 6] = [
    "lock",
    "recv",
    "recv_timeout",
    "wait_timeout",
    "park",
    "join",
];

/// Blocking free functions (`thread::sleep`, `thread::park`, …).
const BLOCKING_FREE_FNS: [&str; 3] = ["sleep", "park", "park_timeout"];

/// D9: blocking or lock acquisition inside sharded barrier phases. A
/// function that mentions `RoundBarrier` runs (or builds) the lockstep
/// flush/drain/run rounds; any lock it takes can deadlock against the
/// barrier or serialize the phase, so each blocking site must carry its
/// non-contention argument as an annotation.
fn check_barrier_blocking(
    ctx: &FileCtx,
    toks: &[Tok],
    index: &FileIndex,
    out: &mut Vec<Diagnostic>,
) {
    for f in &index.fns {
        if f.is_test {
            continue;
        }
        let (s, e) = f.body;
        if e <= s || e > toks.len() {
            continue;
        }
        // The barrier can be named in the signature (`b: &RoundBarrier`)
        // or built in the body — scan from the `fn` line through the
        // closing brace.
        let hdr = toks.partition_point(|t| t.line < f.line);
        let mentions_barrier = toks[hdr.min(s)..e]
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Ident(id) if id == "RoundBarrier"));
        if !mentions_barrier {
            continue;
        }
        let body = &toks[s..e];
        for i in 0..body.len() {
            // `.lock(` / `.recv(` / argless `.join()` …
            if punct_at(body, i) == Some('.') {
                if let Some(m) = ident_at(body, i + 1) {
                    if BLOCKING_METHODS.contains(&m) && punct_at(body, i + 2) == Some('(') {
                        if m == "join" && punct_at(body, i + 3) != Some(')') {
                            continue; // str/path join, not a thread join
                        }
                        out.push(Diagnostic::new(
                            RULE_BARRIER_BLOCKING,
                            Severity::Violation,
                            &ctx.rel_path,
                            body[i + 1].line,
                            format!(
                                "`.{m}()` inside barrier-phase fn `{}` — blocking in a \
                                 RoundBarrier round can deadlock the lockstep windows; \
                                 state the non-contention argument with \
                                 `// audit:allow(barrier-blocking, reason=\"…\")`",
                                f.symbol()
                            ),
                        ));
                    }
                }
            }
            // `thread::sleep(` and friends.
            if let Some(id) = ident_at(body, i) {
                if BLOCKING_FREE_FNS.contains(&id)
                    && punct_at(body, i + 1) == Some('(')
                    && punct_at(body, i.wrapping_sub(1)) != Some('.')
                {
                    out.push(Diagnostic::new(
                        RULE_BARRIER_BLOCKING,
                        Severity::Violation,
                        &ctx.rel_path,
                        body[i].line,
                        format!(
                            "`{id}()` inside barrier-phase fn `{}` — a sleeping worker \
                             stalls every shard at the next barrier; remove it or \
                             annotate with `// audit:allow(barrier-blocking, \
                             reason=\"…\")`",
                            f.symbol()
                        ),
                    ));
                }
            }
        }
    }
}

/// Runs every lexical rule (D1–D6, D9) over one lexed file, returning
/// *raw* diagnostics — no allow-suppression applied. The engine applies
/// [`apply_allows`] after merging in the workspace-aware rules so that
/// one ledger accounts for every rule family.
pub(crate) fn collect_file_raw(
    ctx: &FileCtx,
    scan: &FileScan,
    index: &FileIndex,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &scan.toks;
    let bindings = ContainerBindings::collect(toks);

    if ctx.sim_facing {
        check_hash_iter(ctx, toks, &bindings, &mut out);
        check_shard_merge(ctx, toks, &mut out);
        check_seq_float_fold(ctx, toks, &bindings, &mut out);
        check_barrier_blocking(ctx, toks, index, &mut out);
    }
    if !ctx.wall_clock_exempt {
        check_wall_clock(ctx, toks, &mut out);
    }
    check_ambient_entropy(ctx, toks, &mut out);
    check_par_float_sum(ctx, toks, &mut out);
    out
}

/// Tracks which allow annotations suppressed at least one diagnostic.
/// An annotation covers its own line and the first following line that
/// carries a token — so several stacked `audit:allow` comments above a
/// statement all reach it.
struct AllowLedger<'a> {
    allows: &'a [AllowSite],
    /// Per-allow target line (first token line after the comment).
    targets: Vec<u32>,
    used: Vec<bool>,
}

impl<'a> AllowLedger<'a> {
    fn new(allows: &'a [AllowSite], toks: &[Tok]) -> Self {
        let targets = allows
            .iter()
            .map(|a| {
                toks.iter()
                    .map(|t| t.line)
                    .find(|&l| l > a.line)
                    .unwrap_or(a.line + 1)
            })
            .collect();
        AllowLedger {
            allows,
            targets,
            used: vec![false; allows.len()],
        }
    }

    /// True (and marks the annotation used) when a diagnostic of `rule`
    /// at `line` is covered by an annotation on the same line or
    /// targeting it.
    fn suppresses(&mut self, rule: &str, line: u32) -> bool {
        for (i, a) in self.allows.iter().enumerate() {
            if a.rule == rule && (a.line == line || self.targets[i] == line) {
                self.used[i] = true;
                return true;
            }
        }
        false
    }
}

/// Applies the file's `audit:allow` annotations to raw diagnostics and
/// appends the annotation-hygiene warnings (`unused-allow`,
/// `missing-reason`). Returns the surviving diagnostics sorted by
/// (line, rule) and deduped per (rule, line).
pub(crate) fn apply_allows(
    ctx: &FileCtx,
    scan: &FileScan,
    raw: Vec<Diagnostic>,
) -> Vec<Diagnostic> {
    let mut ledger = AllowLedger::new(&scan.allows, &scan.toks);
    let mut out: Vec<Diagnostic> = Vec::with_capacity(raw.len());
    for d in raw {
        if !ledger.suppresses(d.rule, d.line) {
            out.push(d);
        }
    }

    // Annotation hygiene: every allow must have earned its keep, and
    // should carry a reason.
    for (i, a) in scan.allows.iter().enumerate() {
        if !DETERMINISM_RULES.contains(&a.rule.as_str()) {
            out.push(Diagnostic::new(
                RULE_UNUSED_ALLOW,
                Severity::Warning,
                &ctx.rel_path,
                a.line,
                format!(
                    "audit:allow names unknown rule `{}` (known: {})",
                    a.rule,
                    DETERMINISM_RULES.join(", ")
                ),
            ));
            continue;
        }
        if !ledger.used[i] {
            out.push(Diagnostic::new(
                RULE_UNUSED_ALLOW,
                Severity::Warning,
                &ctx.rel_path,
                a.line,
                format!(
                    "audit:allow({}) is not attached to any `{}` use site — remove it",
                    a.rule, a.rule
                ),
            ));
        } else if !a.has_reason {
            out.push(Diagnostic::new(
                RULE_MISSING_REASON,
                Severity::Warning,
                &ctx.rel_path,
                a.line,
                format!(
                    "audit:allow({}) suppresses a diagnostic but carries no reason=\"…\"",
                    a.rule
                ),
            ));
        }
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    // One diagnostic per (rule, line): `HashMap<K, V> = HashMap::new()`
    // on a single line is one finding, not two.
    out.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    out
}

/// Runs the lexical rules (D1–D6, D9) over one lexed file with allow
/// suppression — the per-file path used by `--no-call-graph` mode and
/// the rule unit tests. The workspace-aware rules (D7, D8, taint) need
/// the full file set; see [`crate::analyze_sources`].
pub fn check_file(ctx: &FileCtx, scan: &FileScan) -> Vec<Diagnostic> {
    let index = crate::index::index_file(ctx, scan);
    let raw = collect_file_raw(ctx, scan, &index);
    apply_allows(ctx, scan, raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
        check_file(&FileCtx::classify(path), &scan(src))
    }

    #[test]
    fn hash_map_declaration_flagged_in_sim_crates_only() {
        let src = "struct S { pending: HashMap<u64, Job> }";
        assert_eq!(lint("crates/rms/src/x.rs", src).len(), 1);
        assert_eq!(lint("crates/topology/src/x.rs", src).len(), 0);
    }

    #[test]
    fn annotated_lookup_map_is_allowed_but_iteration_is_not() {
        let ok = "// audit:allow(hash-iter, reason=\"token-keyed lookups only\")\nlet cache: HashMap<u64, f64> = HashMap::new();";
        // One mention per line; the annotation covers both lines it spans.
        let diags = lint("crates/core/src/x.rs", ok);
        assert!(diags.is_empty(), "{diags:?}");

        let bad = "// audit:allow(hash-iter, reason=\"lookups\")\nlet cache: HashMap<u64, f64> = HashMap::new();\nfor v in cache.values() { }";
        let diags = lint("crates/core/src/x.rs", bad);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == RULE_HASH_ITER && d.severity == Severity::Violation),
            "iteration must stay flagged: {diags:?}"
        );
    }

    #[test]
    fn use_statements_are_not_use_sites() {
        let src = "use std::collections::HashMap;";
        assert!(lint("crates/rms/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_and_entropy_and_par_sum_fire() {
        let d = lint("crates/core/src/x.rs", "let t = Instant::now();");
        assert_eq!(d[0].rule, RULE_WALL_CLOCK);
        let d = lint("src/lib.rs", "let r = thread_rng();");
        assert_eq!(d[0].rule, RULE_AMBIENT_ENTROPY);
        let d = lint(
            "crates/core/src/x.rs",
            "let s: f64 = xs.par_iter().map(f).sum();",
        );
        assert_eq!(d[0].rule, RULE_PAR_FLOAT_SUM);
    }

    #[test]
    fn bench_paths_are_wall_clock_exempt() {
        let src = "let t = Instant::now();";
        assert!(lint("crates/bench/src/bin/figures.rs", src).is_empty());
        assert!(lint("crates/gridsim/benches/sim_replay.rs", src).is_empty());
    }

    #[test]
    fn unused_allow_warns() {
        let d = lint(
            "crates/rms/src/x.rs",
            "// audit:allow(wall-clock, reason=\"nothing here\")\nlet x = 1;",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RULE_UNUSED_ALLOW);
        assert_eq!(d[0].severity, Severity::Warning);
    }

    #[test]
    fn shard_merge_fires_on_calls_not_definitions() {
        // The primitive's definition is fine; a bare call is not.
        let def = "impl Accounting { pub(crate) fn absorb_shard(&mut self, o: &Accounting) {} }";
        assert!(lint("crates/gridsim/src/x.rs", def).is_empty());

        let call = "base.acct.absorb_shard(&other.acct);";
        let d = lint("crates/gridsim/src/x.rs", call);
        assert_eq!(d[0].rule, RULE_SHARD_MERGE);
        assert_eq!(d[0].severity, Severity::Violation);
        // Outside sim-facing crates the rule is silent.
        assert!(lint("crates/bench/src/x.rs", call).is_empty());

        let allowed = "// audit:allow(shard-merge, reason=\"ascending shard order\")\nbase.acct.absorb_shard(&other.acct);";
        assert!(lint("crates/gridsim/src/x.rs", allowed).is_empty());
    }

    #[test]
    fn join_gather_chains_fire_but_str_join_does_not() {
        let bad = "let all: Vec<Shard> = handles.into_iter().map(|h| h.join().unwrap()).collect();";
        let d = lint("crates/gridsim/src/x.rs", bad);
        assert_eq!(d[0].rule, RULE_SHARD_MERGE);

        // `join` with arguments is string/path joining, not thread gather.
        let ok = "let s = parts.join(\", \");";
        assert!(lint("crates/gridsim/src/x.rs", ok).is_empty());

        // A lone join with no downstream gather is not a merge.
        let lone = "handle.join().unwrap();";
        assert!(lint("crates/gridsim/src/x.rs", lone).is_empty());
    }

    #[test]
    fn for_loop_over_hash_map_fires_but_get_does_not() {
        let bad = "let m: HashMap<u64, u64> = HashMap::new();\nfor (k, v) in &m { }";
        let d = lint("crates/gridsim/src/x.rs", bad);
        // One deduped finding for the declaration line, one for the loop.
        let lines: Vec<u32> = d
            .iter()
            .filter(|d| d.rule == RULE_HASH_ITER)
            .map(|d| d.line)
            .collect();
        assert_eq!(lines, vec![1, 2], "{d:?}");

        let ok = "// audit:allow(hash-iter, reason=\"lookup table\")\nlet m: HashMap<u64, u64> = HashMap::new();\nlet v = m.get(&1);";
        let d = lint("crates/gridsim/src/x.rs", ok);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn seq_float_fold_fires_on_btree_value_sums() {
        let src = "let books: BTreeMap<u64, f64> = BTreeMap::new();\nlet t: f64 = books.values().sum::<f64>();";
        let d = lint("crates/rms/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == RULE_SEQ_FLOAT_FOLD), "{d:?}");
        // Vec folds are ordered by construction: silent.
        let ok = "let xs: Vec<f64> = Vec::new();\nlet t: f64 = xs.iter().sum::<f64>();";
        assert!(lint("crates/rms/src/x.rs", ok).is_empty());
        // Outside sim-facing crates D6 stands down.
        assert!(lint("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn seq_float_fold_annotation_covers_the_chain() {
        let src = "let books: BTreeMap<u64, f64> = BTreeMap::new();\n// audit:allow(seq-float-fold, reason=\"ascending key order is the spec\")\nlet t: f64 = books.values().fold(0.0, |a, b| a + b);";
        let d = lint("crates/rms/src/x.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn barrier_blocking_fires_only_in_barrier_fns() {
        let bad = "fn phase(b: &RoundBarrier, m: &Mutex<u64>) {\n    let g = m.lock().unwrap();\n    b.wait();\n}";
        let d = lint("crates/gridsim/src/x.rs", bad);
        assert_eq!(d[0].rule, RULE_BARRIER_BLOCKING, "{d:?}");
        assert_eq!(d[0].line, 2);

        // The same lock in a barrier-free fn is not D9's business.
        let ok = "fn no_barrier(m: &Mutex<u64>) { let g = m.lock().unwrap(); }";
        assert!(lint("crates/gridsim/src/x.rs", ok).is_empty());

        // The barrier's own wait() is the sync point, not a finding.
        let wait_ok = "fn phase(b: &RoundBarrier) { b.wait(); }";
        assert!(lint("crates/gridsim/src/x.rs", wait_ok).is_empty());
    }

    #[test]
    fn stacked_allow_annotations_all_reach_the_statement() {
        let src = "fn phase(b: &RoundBarrier, h: Handle) {\n    // audit:allow(shard-merge, reason=\"gather re-sorted by shard id\")\n    // audit:allow(barrier-blocking, reason=\"join happens after the last round\")\n    let all: Vec<S> = h.join().map(|x| x).collect();\n}";
        let d = lint("crates/gridsim/src/x.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }
}
