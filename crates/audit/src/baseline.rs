//! The accepted-findings baseline (`audit-baseline.toml`).
//!
//! Growing the analyzer is only deployable if pre-existing findings
//! don't block CI while *new* regressions do. The baseline file commits
//! the accepted debt: each entry names a `(rule, file, symbol)` group
//! and how many findings of that shape are accepted. At audit time, up
//! to `count` matching violations are suppressed (lowest lines first);
//! the `count+1`-th is a regression and fails the build.
//!
//! Keying on the enclosing symbol instead of the line number keeps the
//! baseline stable across unrelated edits — inserting a comment above a
//! function does not invalidate its accepted findings. Stale entries
//! (groups that no longer produce findings) are ignored silently, so
//! fixing debt never *breaks* CI; regenerate with `--write-baseline` to
//! garbage-collect them.
//!
//! The format is a hand-rolled TOML subset (`[[accept]]` tables with
//! string/integer values) — the crate stays dependency-free.

use crate::rules::{Diagnostic, Severity};
use std::collections::BTreeMap;

/// One accepted finding group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule identifier (`hot-path-panic`, …).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Enclosing symbol (`Type::fn`), or `""` for file-level findings.
    pub symbol: String,
    /// How many findings of this shape are accepted.
    pub count: usize,
}

/// The parsed baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses the `audit-baseline.toml` subset: `[[accept]]` tables
    /// with `rule`, `file`, `symbol` (strings) and `count` (integer).
    /// Unknown keys are ignored; malformed lines return an error with
    /// the 1-based line number.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        let mut cur: Option<BaselineEntry> = None;
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[accept]]" {
                if let Some(e) = cur.take() {
                    entries.push(e);
                }
                cur = Some(BaselineEntry {
                    rule: String::new(),
                    file: String::new(),
                    symbol: String::new(),
                    count: 1,
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", ln + 1));
            };
            let Some(e) = cur.as_mut() else {
                return Err(format!("line {}: key outside [[accept]] table", ln + 1));
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "rule" | "file" | "symbol" => {
                    let v = value
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| format!("line {}: {key} must be a string", ln + 1))?;
                    match key {
                        "rule" => e.rule = v.to_string(),
                        "file" => e.file = v.to_string(),
                        _ => e.symbol = v.to_string(),
                    }
                }
                "count" => {
                    e.count = value
                        .parse()
                        .map_err(|_| format!("line {}: count must be an integer", ln + 1))?;
                }
                _ => {} // forward-compatible: unknown keys ignored
            }
        }
        if let Some(e) = cur.take() {
            entries.push(e);
        }
        Ok(Baseline { entries })
    }

    /// Number of accepted groups.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no groups are accepted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Splits `diags` into (kept, suppressed-count). Only violations
    /// are baselinable — warnings (annotation hygiene) always surface.
    /// Within a matching group, the lowest-line findings are suppressed
    /// first, so a *new* finding in an already-indebted function shows
    /// up as the overflow.
    pub fn apply(&self, diags: Vec<Diagnostic>) -> (Vec<Diagnostic>, usize) {
        let mut budget: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for e in &self.entries {
            *budget
                .entry((e.rule.clone(), e.file.clone(), e.symbol.clone()))
                .or_insert(0) += e.count;
        }
        let mut kept = Vec::with_capacity(diags.len());
        let mut suppressed = 0usize;
        // Input is already sorted by (file, line, rule), so within a
        // group lower lines are consumed first.
        for d in diags {
            if d.severity == Severity::Violation {
                let key = (d.rule.to_string(), d.file.clone(), d.symbol.clone());
                if let Some(b) = budget.get_mut(&key) {
                    if *b > 0 {
                        *b -= 1;
                        suppressed += 1;
                        continue;
                    }
                }
            }
            kept.push(d);
        }
        (kept, suppressed)
    }
}

/// Renders the baseline that would accept every violation in `diags`,
/// grouped by (rule, file, symbol) and sorted — the `--write-baseline`
/// output. Byte-stable across hosts.
pub fn render_baseline(diags: &[Diagnostic]) -> String {
    let mut groups: BTreeMap<(&str, &str, &str), usize> = BTreeMap::new();
    for d in diags {
        if d.severity == Severity::Violation {
            *groups
                .entry((d.rule, d.file.as_str(), d.symbol.as_str()))
                .or_insert(0) += 1;
        }
    }
    let mut s = String::new();
    s.push_str(
        "# audit-baseline.toml — accepted pre-existing determinism findings.\n\
         #\n\
         # Each [[accept]] group tolerates `count` findings of `rule` inside\n\
         # `symbol` (in `file`). New findings beyond the count fail CI.\n\
         # Regenerate with: gridscale audit --write-baseline\n",
    );
    for ((rule, file, symbol), count) in groups {
        s.push_str("\n[[accept]]\n");
        s.push_str(&format!("rule = \"{rule}\"\n"));
        s.push_str(&format!("file = \"{file}\"\n"));
        s.push_str(&format!("symbol = \"{symbol}\"\n"));
        s.push_str(&format!("count = {count}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RULE_HOT_PATH_PANIC;

    fn diag(rule: &'static str, file: &str, line: u32, symbol: &str) -> Diagnostic {
        let mut d = Diagnostic::new(rule, Severity::Violation, file, line, "m".into());
        d.symbol = symbol.to_string();
        d
    }

    #[test]
    fn roundtrip_and_budgeted_suppression() {
        let diags = vec![
            diag(RULE_HOT_PATH_PANIC, "a.rs", 3, "A::f"),
            diag(RULE_HOT_PATH_PANIC, "a.rs", 9, "A::f"),
        ];
        let text = render_baseline(&diags);
        let base = Baseline::parse(&text).unwrap();
        assert_eq!(base.len(), 1);

        // Exactly covered: everything suppressed.
        let (kept, n) = base.apply(diags.clone());
        assert!(kept.is_empty());
        assert_eq!(n, 2);

        // One new finding in the same fn: the overflow surfaces, and it
        // is the *highest* line (lowest lines consume the budget).
        let mut more = diags;
        more.push(diag(RULE_HOT_PATH_PANIC, "a.rs", 20, "A::f"));
        let (kept, n) = base.apply(more);
        assert_eq!(n, 2);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 20);
    }

    #[test]
    fn stale_entries_and_unknown_keys_are_ignored() {
        let text = "[[accept]]\nrule = \"hot-path-panic\"\nfile = \"gone.rs\"\nsymbol = \"X::y\"\ncount = 5\nnote = \"legacy\"\n";
        let base = Baseline::parse(text).unwrap();
        let (kept, n) = base.apply(vec![diag(RULE_HOT_PATH_PANIC, "a.rs", 1, "A::f")]);
        assert_eq!(n, 0);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn warnings_are_never_baselined() {
        let text =
            "[[accept]]\nrule = \"unused-allow\"\nfile = \"a.rs\"\nsymbol = \"\"\ncount = 1\n";
        let base = Baseline::parse(text).unwrap();
        let w = Diagnostic::new(
            crate::rules::RULE_UNUSED_ALLOW,
            Severity::Warning,
            "a.rs",
            1,
            "m".into(),
        );
        let (kept, n) = base.apply(vec![w]);
        assert_eq!(n, 0);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        assert!(Baseline::parse("rule = \"x\"\n").is_err());
        assert!(Baseline::parse("[[accept]]\ncount = x\n")
            .unwrap_err()
            .contains("line 2"));
    }
}
