//! The workspace-aware rules: taint propagation (cross-file
//! `taint-flow`), D7 `hot-path-panic`, and D8 `shared-interior-mut`.
//!
//! These passes run over the *whole* scanned file set — per-file index
//! plus the conservative call graph — which is what lets them see a
//! nondeterminism source three helpers away from the sim hot path:
//!
//! - **taint-flow**: nondeterminism *source facts* are collected in
//!   exactly the files where the per-file rules stand down (hash
//!   iteration outside the sim-facing crates, wall-clock reads in the
//!   path-exempt bench code, order-sensitive float folds outside
//!   sim-facing crates). A fact becomes a finding when its enclosing
//!   function is reachable from a sim-facing *sink entry* — a `Policy`
//!   impl, the kernel dispatch, the shard merge primitives, an
//!   `Accounting` fold, or `SimTemplate::run*`. The diagnostic lands on
//!   the source line and carries the full sink→source call chain.
//! - **D7 `hot-path-panic`**: `panic!`-family macros, `.unwrap()`,
//!   `.expect()`, and `get_unchecked` in any function reachable from
//!   `SimTemplate::run*`, with the chain that reaches it.
//! - **D8 `shared-interior-mut`**: the transitive field closure of the
//!   `Arc`-shared root types (`SharedWorld`, `Layout`, plus every type
//!   the scan sees inside `Arc<…>`) must be free of interior
//!   mutability; each `Cell`/`RefCell`/`Mutex`/atomic field in a member
//!   struct is flagged with the root→struct containment chain.
//!
//! Suppression works like everywhere else: an `audit:allow(rule, …)`
//! annotation on (or above) the flagged line — the engine routes these
//! diagnostics through the same per-file allow ledger.

use crate::callgraph::{CallGraph, FnId};
use crate::index::FileIndex;
use crate::lexer::{FileScan, TokKind};
use crate::rules::{
    ident_at, punct_at, wall_clock_sites, ContainerBindings, ContainerKind, Diagnostic, FileCtx,
    Severity, CHAIN_WINDOW, HASH_ITER_METHODS, KEYED_ITER_METHODS, REDUCERS, RULE_HOT_PATH_PANIC,
    RULE_SHARED_INTERIOR_MUT, RULE_TAINT_FLOW,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Macros that abort the replay mid-run.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Panicking (or UB-on-misuse) method calls D7 flags on the hot path.
const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "get_unchecked", "get_unchecked_mut"];

/// Interior-mutability type names D8 forbids inside Arc-shared state.
const INTERIOR_MUT_IDENTS: [&str; 19] = [
    "Cell",
    "RefCell",
    "Mutex",
    "RwLock",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

/// Always-on D8 roots: the shared-world types every replication thread
/// holds by `Arc`.
const ARC_ROOT_SEEDS: [&str; 2] = ["SharedWorld", "Layout"];

/// One nondeterminism source fact (a site the per-file rules don't
/// report in this file, but which must not be reachable from a
/// sim-facing sink).
struct SourceFact {
    line: u32,
    desc: String,
}

/// Collects source facts for one file: exactly the gaps the per-file
/// rules leave open (so taint findings never double-report a D1–D6
/// diagnostic).
fn collect_facts(ctx: &FileCtx, scan: &FileScan) -> Vec<SourceFact> {
    let toks = &scan.toks;
    let mut out = Vec::new();
    let bindings = ContainerBindings::collect(toks);

    // Hash iteration outside the sim-facing crates (D1 is silent there).
    if !ctx.sim_facing {
        for i in 0..toks.len() {
            let Some(name) = ident_at(toks, i) else {
                continue;
            };
            if bindings.kind_of(name) == Some(ContainerKind::Hash)
                && punct_at(toks, i + 1) == Some('.')
                && ident_at(toks, i + 2).is_some_and(|m| HASH_ITER_METHODS.contains(&m))
                && punct_at(toks, i + 3) == Some('(')
            {
                out.push(SourceFact {
                    line: toks[i].line,
                    desc: format!(
                        "hash-order iteration `{name}.{}()`",
                        ident_at(toks, i + 2).unwrap()
                    ),
                });
            }
            if name == "in" {
                for j in (i + 1)..(i + 6).min(toks.len()) {
                    match &toks[j].kind {
                        TokKind::Ident(id) if bindings.kind_of(id) == Some(ContainerKind::Hash) => {
                            if punct_at(toks, j + 1) != Some('.') {
                                out.push(SourceFact {
                                    line: toks[j].line,
                                    desc: format!("hash-order iteration `for … in {id}`"),
                                });
                            }
                            break;
                        }
                        TokKind::Punct('{') => break,
                        _ => {}
                    }
                }
            }
        }
    }

    // Wall-clock reads in path-exempt files (D2 is silent there).
    if ctx.wall_clock_exempt {
        for (_, (line, _)) in wall_clock_sites(toks) {
            out.push(SourceFact {
                line,
                desc: "wall-clock read (`Instant::now`/`SystemTime`)".to_string(),
            });
        }
    }

    // Keyed-container float folds outside sim-facing crates (D6 is
    // silent there).
    if !ctx.sim_facing {
        for i in 0..toks.len() {
            let Some(name) = ident_at(toks, i) else {
                continue;
            };
            if bindings.kind_of(name).is_none()
                || punct_at(toks, i + 1) != Some('.')
                || !ident_at(toks, i + 2).is_some_and(|m| KEYED_ITER_METHODS.contains(&m))
                || punct_at(toks, i + 3) != Some('(')
            {
                continue;
            }
            for j in (i + 4)..(i + 2 * CHAIN_WINDOW).min(toks.len()) {
                if punct_at(toks, j) == Some(';') {
                    break;
                }
                if punct_at(toks, j) == Some('.') {
                    if let Some(m) = ident_at(toks, j + 1) {
                        if REDUCERS.contains(&m) {
                            out.push(SourceFact {
                                line: toks[i].line,
                                desc: format!(
                                    "keyed-container fold `{name}.{}().…{m}()`",
                                    ident_at(toks, i + 2).unwrap()
                                ),
                            });
                            break;
                        }
                    }
                }
            }
        }
    }

    out
}

/// The innermost non-test fn in `index` whose span contains `line`.
fn enclosing_fn(index: &FileIndex, line: u32) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (di, f) in index.fns.iter().enumerate() {
        if f.is_test || f.line > line || line > f.end_line {
            continue;
        }
        match best {
            Some(b) if index.fns[b].line >= f.line => {}
            _ => best = Some(di),
        }
    }
    best
}

fn render_chain(chain: &[String]) -> String {
    chain.join(" → ")
}

/// Sim-facing sink entries: the functions whose transitive callees must
/// be free of nondeterminism sources.
fn sink_entries(ctxs: &[FileCtx], indexes: &[FileIndex]) -> Vec<FnId> {
    let mut out = Vec::new();
    for (fi, index) in indexes.iter().enumerate() {
        let in_kernel = ctxs[fi].rel_path.ends_with("kernel.rs");
        for (di, f) in index.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let is_sink = f.trait_name.as_deref() == Some("Policy")
                || (in_kernel && ctxs[fi].sim_facing)
                || f.name == "absorb_shard"
                || f.name == "merge_shard_core"
                || f.qual.as_deref() == Some("Accounting")
                || (f.qual.as_deref() == Some("SimTemplate") && f.name.starts_with("run"));
            if is_sink {
                out.push((fi, di));
            }
        }
    }
    out
}

/// Replay hot-path entries for D7: `SimTemplate::run*`.
fn hot_path_entries(indexes: &[FileIndex]) -> Vec<FnId> {
    let mut out = Vec::new();
    for (fi, index) in indexes.iter().enumerate() {
        for (di, f) in index.fns.iter().enumerate() {
            if !f.is_test && f.qual.as_deref() == Some("SimTemplate") && f.name.starts_with("run") {
                out.push((fi, di));
            }
        }
    }
    out
}

/// Cross-file taint: source facts reachable from sim-facing sinks.
fn check_taint_flow(
    ctxs: &[FileCtx],
    scans: &[FileScan],
    indexes: &[FileIndex],
    graph: &CallGraph,
    out: &mut Vec<Diagnostic>,
) {
    let entries = sink_entries(ctxs, indexes);
    if entries.is_empty() {
        return;
    }
    let parent = graph.reach(&entries);
    for fi in 0..ctxs.len() {
        let facts = collect_facts(&ctxs[fi], &scans[fi]);
        if facts.is_empty() {
            continue;
        }
        for fact in facts {
            let Some(di) = enclosing_fn(&indexes[fi], fact.line) else {
                continue; // not inside a fn: unreachable by calls
            };
            if !parent.contains_key(&(fi, di)) {
                continue;
            }
            let chain = graph.chain(&parent, indexes, (fi, di));
            let mut d = Diagnostic::new(
                RULE_TAINT_FLOW,
                Severity::Violation,
                &ctxs[fi].rel_path,
                fact.line,
                format!(
                    "{} is reachable from sim-facing entry `{}` — call chain: {}",
                    fact.desc,
                    chain.first().map(String::as_str).unwrap_or("?"),
                    render_chain(&chain)
                ),
            );
            d.chain = chain;
            out.push(d);
        }
    }
}

/// D7: panics reachable from the replay hot path.
fn check_hot_path_panic(
    ctxs: &[FileCtx],
    scans: &[FileScan],
    indexes: &[FileIndex],
    graph: &CallGraph,
    out: &mut Vec<Diagnostic>,
) {
    let entries = hot_path_entries(indexes);
    if entries.is_empty() {
        return;
    }
    let parent = graph.reach(&entries);
    for (&(fi, di), _) in parent.iter() {
        let f = &indexes[fi].fns[di];
        let toks = &scans[fi].toks;
        let (s, e) = f.body;
        if e <= s || e > toks.len() {
            continue;
        }
        let mut sites: Vec<(u32, String)> = Vec::new();
        // Panicking macros come straight off the indexed call sites.
        for c in &f.calls {
            if c.is_macro && PANIC_MACROS.contains(&c.name.as_str()) {
                sites.push((c.line, format!("`{}!`", c.name)));
            }
        }
        // `.unwrap()` / `.expect(` / `get_unchecked` are token scans
        // over the body span (they are std methods, not indexed calls).
        let body = &toks[s..e];
        for i in 0..body.len() {
            if punct_at(body, i) == Some('.') {
                if let Some(m) = ident_at(body, i + 1) {
                    if PANIC_METHODS.contains(&m) && punct_at(body, i + 2) == Some('(') {
                        sites.push((body[i + 1].line, format!("`.{m}()`")));
                    }
                }
            }
        }
        if sites.is_empty() {
            continue;
        }
        let chain = graph.chain(&parent, indexes, (fi, di));
        sites.sort();
        sites.dedup();
        for (line, what) in sites {
            let mut d = Diagnostic::new(
                RULE_HOT_PATH_PANIC,
                Severity::Violation,
                &ctxs[fi].rel_path,
                line,
                format!(
                    "{what} in `{}` is reachable from the replay hot path — a panic \
                     mid-replay tears down the sharded run at a scheduling-dependent \
                     point; return an error/default or annotate the invariant \
                     (call chain: {})",
                    f.symbol(),
                    render_chain(&chain)
                ),
            );
            d.chain = chain.clone();
            out.push(d);
        }
    }
}

/// D8: interior mutability inside the Arc-shared struct closure.
fn check_shared_interior_mut(
    ctxs: &[FileCtx],
    scans: &[FileScan],
    indexes: &[FileIndex],
    out: &mut Vec<Diagnostic>,
) {
    // Struct name → definitions, restricted to sim-facing files (the
    // closure is about the shared world, not arbitrary same-named types
    // in tooling crates).
    let mut defs: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, index) in indexes.iter().enumerate() {
        if !ctxs[fi].sim_facing {
            continue;
        }
        for (si, st) in index.structs.iter().enumerate() {
            defs.entry(st.name.as_str()).or_default().push((fi, si));
        }
    }

    // Roots: the seeds plus everything seen inside `Arc<…>` anywhere.
    let mut roots: BTreeSet<String> = ARC_ROOT_SEEDS.iter().map(|s| s.to_string()).collect();
    for index in indexes {
        for t in &index.arc_shared {
            roots.insert(t.clone());
        }
    }

    // BFS over the field-type closure, recording each struct's parent
    // for the containment chain.
    let mut parent: BTreeMap<String, Option<String>> = BTreeMap::new();
    let mut queue: VecDeque<String> = VecDeque::new();
    for r in &roots {
        if defs.contains_key(r.as_str()) && !parent.contains_key(r) {
            parent.insert(r.clone(), None);
            queue.push_back(r.clone());
        }
    }
    while let Some(name) = queue.pop_front() {
        let Some(sites) = defs.get(name.as_str()) else {
            continue;
        };
        for &(fi, si) in sites {
            let st = &indexes[fi].structs[si];
            let toks = &scans[fi].toks;
            let (s, e) = st.body;
            if e <= s || e > toks.len() {
                continue;
            }
            // Flag interior-mut field types in this member struct.
            for t in &toks[s..e] {
                if let TokKind::Ident(id) = &t.kind {
                    if INTERIOR_MUT_IDENTS.contains(&id.as_str()) {
                        let mut chain = vec![st.name.clone()];
                        let mut cur = name.clone();
                        while let Some(Some(p)) = parent.get(&cur) {
                            chain.push(p.clone());
                            cur = p.clone();
                        }
                        chain.reverse();
                        let mut d = Diagnostic::new(
                            RULE_SHARED_INTERIOR_MUT,
                            Severity::Violation,
                            &ctxs[fi].rel_path,
                            t.line,
                            format!(
                                "`{id}` field inside `{}`, which is reachable from \
                                 Arc-shared root `{}` — shared-world state must be \
                                 deeply immutable during replay (containment: {})",
                                st.name,
                                chain.first().map(String::as_str).unwrap_or("?"),
                                render_chain(&chain)
                            ),
                        );
                        d.symbol = st.name.clone();
                        d.chain = chain;
                        out.push(d);
                    }
                }
            }
            // Follow field types into other workspace structs.
            for t in &st.field_type_idents {
                if defs.contains_key(t.as_str()) && !parent.contains_key(t) {
                    parent.insert(t.clone(), Some(st.name.clone()));
                    queue.push_back(t.clone());
                }
            }
        }
    }
}

/// Runs every workspace-aware rule over the scanned file set. Returned
/// diagnostics are *raw* (no allow-suppression); the engine merges them
/// with the per-file raw diagnostics and applies each file's allow
/// ledger once over the union.
pub(crate) fn check_workspace(
    ctxs: &[FileCtx],
    scans: &[FileScan],
    indexes: &[FileIndex],
) -> Vec<Diagnostic> {
    let graph = CallGraph::build(indexes);
    let mut out = Vec::new();
    check_taint_flow(ctxs, scans, indexes, &graph, &mut out);
    check_hot_path_panic(ctxs, scans, indexes, &graph, &mut out);
    check_shared_interior_mut(ctxs, scans, indexes, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::index_file;
    use crate::lexer::scan;

    fn analyze(srcs: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ctxs: Vec<FileCtx> = srcs.iter().map(|(p, _)| FileCtx::classify(p)).collect();
        let scans: Vec<FileScan> = srcs.iter().map(|(_, s)| scan(s)).collect();
        let indexes: Vec<FileIndex> = ctxs
            .iter()
            .zip(&scans)
            .map(|(c, s)| index_file(c, s))
            .collect();
        check_workspace(&ctxs, &scans, &indexes)
    }

    #[test]
    fn taint_reaches_across_files_with_full_chain() {
        let d = analyze(&[
            (
                "crates/rms/src/policy.rs",
                "impl Policy for Lowest { fn dispatch(&mut self) { score_all(); } }",
            ),
            (
                "crates/topology/src/score.rs",
                "pub fn score_all() { let m: HashMap<u64, f64> = HashMap::new(); for v in m.values() { } }",
            ),
        ]);
        let t: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == RULE_TAINT_FLOW).collect();
        assert_eq!(t.len(), 1, "{d:?}");
        assert_eq!(t[0].file, "crates/topology/src/score.rs");
        assert_eq!(t[0].chain, vec!["Lowest::dispatch", "score_all"]);
        assert!(t[0].message.contains("Lowest::dispatch → score_all"));
    }

    #[test]
    fn unreached_sources_stay_silent() {
        let d = analyze(&[
            (
                "crates/rms/src/policy.rs",
                "impl Policy for Lowest { fn dispatch(&mut self) {} }",
            ),
            (
                "crates/topology/src/score.rs",
                "pub fn orphan() { let m: HashMap<u64, f64> = HashMap::new(); for v in m.values() { } }",
            ),
        ]);
        assert!(d.iter().all(|d| d.rule != RULE_TAINT_FLOW), "{d:?}");
    }

    #[test]
    fn hot_path_panics_carry_the_chain() {
        let d = analyze(&[
            (
                "crates/gridsim/src/sim.rs",
                "impl SimTemplate { pub fn run(&self) { step(); } }",
            ),
            (
                "crates/gridsim/src/queue.rs",
                "pub fn step() { let x: Option<u64> = None; x.unwrap(); }",
            ),
        ]);
        let p: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == RULE_HOT_PATH_PANIC).collect();
        assert_eq!(p.len(), 1, "{d:?}");
        assert_eq!(p[0].chain, vec!["SimTemplate::run", "step"]);
        assert!(p[0].message.contains("`.unwrap()`"));
    }

    #[test]
    fn interior_mut_found_through_the_field_closure() {
        let d = analyze(&[(
            "crates/gridsim/src/world.rs",
            "pub struct SharedWorld { layout: Layout }\npub struct Layout { links: LinkTable }\npub struct LinkTable { cache: RefCell<u64> }",
        )]);
        let m: Vec<&Diagnostic> = d
            .iter()
            .filter(|d| d.rule == RULE_SHARED_INTERIOR_MUT)
            .collect();
        assert_eq!(m.len(), 1, "{d:?}");
        assert_eq!(m[0].symbol, "LinkTable");
        // `Layout` is itself a seed root, so the containment chain
        // starts there (roots have no parent).
        assert_eq!(m[0].chain, vec!["Layout", "LinkTable"]);
    }

    #[test]
    fn non_shared_interior_mut_is_fine() {
        let d = analyze(&[(
            "crates/gridsim/src/scratch.rs",
            "pub struct Scratch { pool: Mutex<Vec<u64>> }",
        )]);
        assert!(
            d.iter().all(|d| d.rule != RULE_SHARED_INTERIOR_MUT),
            "{d:?}"
        );
    }
}
