//! # gridscale-audit
//!
//! The workspace determinism linter. Every result this repository
//! produces — G(k) curves, isoefficiency tunings, golden-report fixtures
//! — depends on the simulator being *bit-identical* across replay modes,
//! thread counts, and queue disciplines. This crate machine-checks the
//! static half of that contract on every commit:
//!
//! | Rule | ID | What it forbids |
//! |------|----|-----------------|
//! | D1 | `hash-iter` | `HashMap`/`HashSet` in sim-facing crates (`desim`, `gridsim`, `rms`, `core`); iteration over them anywhere |
//! | D2 | `wall-clock` | `Instant::now` / `SystemTime` outside the bench crate and annotated telemetry sites |
//! | D3 | `ambient-entropy` | `thread_rng`, `from_entropy`, `OsRng`, … — randomness must flow through `desim::SimRng` |
//! | D4 | `par-float-sum` | `par_iter().sum::<f64>()`-style unordered parallel float reductions |
//! | D5 | `shard-merge` | cross-thread merges of per-shard simulation state outside the blessed, shard-ordered barrier merge |
//!
//! Lookup-only hash maps and telemetry clock reads opt out with
//! annotations the linter *verifies are attached to a real use site*:
//!
//! ```text
//! // audit:allow(hash-iter, reason="token-keyed lookups, never iterated")
//! cache: HashMap<u64, SimReport>,
//! ```
//!
//! Run as `cargo run -p gridscale-audit` or `gridscale audit`. The
//! runtime half of the contract is the event-stream fingerprint folded by
//! the simulation kernel (see `gridsim`'s `SimReport::event_fingerprint`).
//!
//! Deliberately dependency-free (hand-rolled lexer and JSON emitter): the
//! linter is part of the trust base and must build wherever the
//! toolchain does, including fully offline environments.

#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

pub use rules::{Diagnostic, FileCtx, Severity, DETERMINISM_RULES};

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never scanned (build output, VCS, CI config).
const SKIP_DIRS: [&str; 5] = ["target", ".git", ".github", "results", "node_modules"];

/// Directory suffix excluded from the scan: the linter's own test
/// fixtures under `crates/audit/tests/fixtures` are *intentionally*
/// violating snippets. Matched as a suffix so the skip holds whether
/// the scan root is the workspace or the audit crate itself.
const SKIP_SUFFIX: &str = "tests/fixtures";

/// The outcome of auditing a workspace.
#[derive(Debug, Default)]
pub struct AuditOutcome {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All diagnostics, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
}

impl AuditOutcome {
    /// Diagnostics that always fail the audit.
    pub fn violations(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Violation)
    }

    /// Advisory diagnostics (fail only under `--deny-warnings`).
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// True when the audit passes under the given strictness.
    pub fn is_clean(&self, deny_warnings: bool) -> bool {
        self.violations().count() == 0 && (!deny_warnings || self.warnings().count() == 0)
    }

    /// Serializes the outcome as a machine-readable JSON report.
    ///
    /// Shape:
    /// ```json
    /// {
    ///   "files_scanned": 96,
    ///   "violations": 0,
    ///   "warnings": 0,
    ///   "rules": ["hash-iter", "wall-clock", "ambient-entropy", "par-float-sum"],
    ///   "diagnostics": [ {"rule": "...", "severity": "...",
    ///                     "file": "...", "line": 1, "message": "..."} ]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.diagnostics.len() * 160);
        s.push_str("{\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!(
            "  \"violations\": {},\n",
            self.violations().count()
        ));
        s.push_str(&format!("  \"warnings\": {},\n", self.warnings().count()));
        s.push_str("  \"rules\": [");
        for (i, r) in DETERMINISM_RULES.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{r}\""));
        }
        s.push_str("],\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"rule\": \"{}\", ", d.rule));
            s.push_str(&format!(
                "\"severity\": \"{}\", ",
                match d.severity {
                    Severity::Violation => "violation",
                    Severity::Warning => "warning",
                }
            ));
            s.push_str(&format!("\"file\": \"{}\", ", json_escape(&d.file)));
            s.push_str(&format!("\"line\": {}, ", d.line));
            s.push_str(&format!("\"message\": \"{}\"", json_escape(&d.message)));
            s.push('}');
        }
        if !self.diagnostics.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Minimal JSON string escaping.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lints a single source text as if it lived at `rel_path` (workspace-
/// relative, forward slashes). The entry point the fixture tests use.
pub fn audit_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let ctx = FileCtx::classify(rel_path);
    rules::check_file(&ctx, &lexer::scan(src))
}

/// Walks `root` and lints every `.rs` file, returning the aggregate
/// outcome. `root` should be the workspace root (the directory holding
/// the top-level `Cargo.toml`).
pub fn audit_workspace(root: &Path) -> std::io::Result<AuditOutcome> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut outcome = AuditOutcome::default();
    for rel in files {
        let abs = root.join(&rel);
        let src = fs::read_to_string(&abs)?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        outcome.diagnostics.extend(audit_source(&rel_str, &src));
        outcome.files_scanned += 1;
    }
    outcome
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(outcome)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            let rel = path.strip_prefix(root).unwrap_or(&path);
            let rel_str = rel
                .to_string_lossy()
                .replace(std::path::MAIN_SEPARATOR, "/");
            if rel_str.ends_with(SKIP_SUFFIX) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Shared driver for the `gridscale-audit` binary and the `gridscale
/// audit` subcommand. Parses `--root`, `--json`, `--deny-warnings`,
/// `--quiet` from `args`, prints diagnostics, and returns the process
/// exit code (0 = clean).
pub fn run_cli(args: &[String]) -> i32 {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut deny_warnings = false;
    let mut quiet = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                root = args.get(i).map(PathBuf::from);
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).map(PathBuf::from);
            }
            "--deny-warnings" => deny_warnings = true,
            "--quiet" => quiet = true,
            other => {
                eprintln!("gridscale-audit: unknown flag {other}");
                eprintln!(
                    "usage: gridscale-audit [--root DIR] [--json REPORT.json] \
                     [--deny-warnings] [--quiet]"
                );
                return 2;
            }
        }
        i += 1;
    }
    let root = root
        .or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|d| find_workspace_root(&d))
        })
        .unwrap_or_else(|| PathBuf::from("."));

    let outcome = match audit_workspace(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gridscale-audit: cannot scan {}: {e}", root.display());
            return 2;
        }
    };

    if !quiet {
        for d in &outcome.diagnostics {
            let kind = match d.severity {
                Severity::Violation => "error",
                Severity::Warning => "warning",
            };
            println!("{}:{}: {kind}[{}]: {}", d.file, d.line, d.rule, d.message);
        }
        let v = outcome.violations().count();
        let w = outcome.warnings().count();
        println!(
            "audit: {} files scanned, {v} violation{}, {w} warning{}",
            outcome.files_scanned,
            if v == 1 { "" } else { "s" },
            if w == 1 { "" } else { "s" },
        );
    }
    if let Some(p) = json_path {
        if let Err(e) = fs::write(&p, outcome.to_json()) {
            eprintln!("gridscale-audit: cannot write {}: {e}", p.display());
            return 2;
        }
        if !quiet {
            println!("audit report → {}", p.display());
        }
    }
    if outcome.is_clean(deny_warnings) {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_shape() {
        let outcome = AuditOutcome {
            files_scanned: 2,
            diagnostics: vec![Diagnostic {
                rule: rules::RULE_WALL_CLOCK,
                severity: Severity::Violation,
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                message: "a \"quoted\" message".into(),
            }],
        };
        let json = outcome.to_json();
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"line\": 3"));
        assert!(!outcome.is_clean(false));
    }

    #[test]
    fn clean_outcome_with_warnings_depends_on_strictness() {
        let outcome = AuditOutcome {
            files_scanned: 1,
            diagnostics: vec![Diagnostic {
                rule: rules::RULE_UNUSED_ALLOW,
                severity: Severity::Warning,
                file: "src/lib.rs".into(),
                line: 1,
                message: "m".into(),
            }],
        };
        assert!(outcome.is_clean(false));
        assert!(!outcome.is_clean(true));
    }
}
