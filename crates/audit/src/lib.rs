//! # gridscale-audit
//!
//! The workspace determinism analyzer. Every result this repository
//! produces — G(k) curves, isoefficiency tunings, golden-report fixtures
//! — depends on the simulator being *bit-identical* across replay modes,
//! thread counts, and queue disciplines. This crate machine-checks the
//! static half of that contract on every commit:
//!
//! | Rule | ID | What it forbids |
//! |------|----|-----------------|
//! | D1 | `hash-iter` | `HashMap`/`HashSet` in sim-facing crates (`desim`, `gridsim`, `rms`, `core`); iteration over them anywhere |
//! | D2 | `wall-clock` | `Instant::now` / `SystemTime` outside the bench crate and annotated telemetry sites |
//! | D3 | `ambient-entropy` | `thread_rng`, `from_entropy`, `OsRng`, … — randomness must flow through `desim::SimRng` |
//! | D4 | `par-float-sum` | `par_iter().sum::<f64>()`-style unordered parallel float reductions |
//! | D5 | `shard-merge` | cross-thread merges of per-shard simulation state outside the blessed, shard-ordered barrier merge |
//! | D6 | `seq-float-fold` | sequential float folds ordered by a keyed container's iteration (`map.values().sum::<f64>()`) |
//! | D7 | `hot-path-panic` | `panic!`/`unwrap`/`expect`/`get_unchecked` reachable from `SimTemplate::run*` |
//! | D8 | `shared-interior-mut` | `Cell`/`RefCell`/`Mutex`/atomics inside the Arc-shared `SharedWorld`/`Layout` closure |
//! | D9 | `barrier-blocking` | blocking/lock acquisition inside `RoundBarrier` phase functions |
//! | — | `taint-flow` | nondeterminism sources reached *transitively* from sim-facing sinks (`Policy` impls, kernel dispatch, shard merge, accounting, `SimTemplate::run*`), reported with the full call chain |
//!
//! D1–D6 and D9 are per-file lexical rules; D7, D8, and `taint-flow`
//! run on a workspace item index and a conservative call graph (see
//! [`index`], [`callgraph`], [`taint`]) and can be switched off with
//! `--no-call-graph` for the legacy per-file mode.
//!
//! Lookup-only hash maps and telemetry clock reads opt out with
//! annotations the analyzer *verifies are attached to a real use site*:
//!
//! ```text
//! // audit:allow(hash-iter, reason="token-keyed lookups, never iterated")
//! cache: HashMap<u64, SimReport>,
//! ```
//!
//! Accepted pre-existing findings live in `audit-baseline.toml` (see
//! [`baseline`]): CI fails only on *new* findings. Run as
//! `cargo run -p gridscale-audit` or `gridscale audit`. The runtime
//! half of the contract is the event-stream fingerprint folded by the
//! simulation kernel (see `gridsim`'s `SimReport::event_fingerprint`).
//!
//! Deliberately dependency-free (hand-rolled lexer, JSON/SARIF emitters,
//! TOML-subset baseline parser): the analyzer is part of the trust base
//! and must build wherever the toolchain does, including fully offline
//! environments.

#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod index;
pub mod lexer;
pub mod rules;
pub mod taint;

pub use baseline::Baseline;
pub use rules::{Diagnostic, FileCtx, Severity, DETERMINISM_RULES};

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never scanned (build output, VCS, CI config).
const SKIP_DIRS: [&str; 5] = ["target", ".git", ".github", "results", "node_modules"];

/// Directory suffix excluded from the scan: the analyzer's own test
/// fixtures under `crates/audit/tests/fixtures` are *intentionally*
/// violating snippets. Matched as a suffix so the skip holds whether
/// the scan root is the workspace or the audit crate itself.
const SKIP_SUFFIX: &str = "tests/fixtures";

/// Default baseline file name, resolved against the scan root.
pub const BASELINE_FILE: &str = "audit-baseline.toml";

/// Analyzer configuration.
#[derive(Debug, Default)]
pub struct AnalyzeOptions {
    /// Disable the workspace-aware rules (D7, D8, `taint-flow`) and run
    /// the legacy per-file mode only.
    pub no_call_graph: bool,
    /// Accepted pre-existing findings; violations covered by the
    /// baseline are counted in [`AuditOutcome::baselined`] instead of
    /// failing the audit.
    pub baseline: Option<Baseline>,
}

/// The outcome of auditing a workspace.
#[derive(Debug, Default)]
pub struct AuditOutcome {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All diagnostics, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Violations suppressed by the baseline file.
    pub baselined: usize,
}

impl AuditOutcome {
    /// Diagnostics that always fail the audit.
    pub fn violations(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Violation)
    }

    /// Advisory diagnostics (fail only under `--deny-warnings`).
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// True when the audit passes under the given strictness.
    pub fn is_clean(&self, deny_warnings: bool) -> bool {
        self.violations().count() == 0 && (!deny_warnings || self.warnings().count() == 0)
    }

    /// Serializes the outcome as a machine-readable JSON report.
    ///
    /// Byte-stable across hosts: diagnostics are sorted by (file, line,
    /// rule) and every map key is emitted in a fixed order, so CI diffs
    /// and committed reports are reproducible.
    ///
    /// Shape:
    /// ```json
    /// {
    ///   "files_scanned": 96,
    ///   "violations": 0,
    ///   "warnings": 0,
    ///   "baselined": 12,
    ///   "rules": ["hash-iter", "wall-clock", "..."],
    ///   "diagnostics": [ {"rule": "...", "severity": "...",
    ///                     "file": "...", "line": 1, "symbol": "...",
    ///                     "chain": ["..."], "message": "..."} ]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.diagnostics.len() * 160);
        s.push_str("{\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!(
            "  \"violations\": {},\n",
            self.violations().count()
        ));
        s.push_str(&format!("  \"warnings\": {},\n", self.warnings().count()));
        s.push_str(&format!("  \"baselined\": {},\n", self.baselined));
        s.push_str("  \"rules\": [");
        for (i, r) in DETERMINISM_RULES.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{r}\""));
        }
        s.push_str("],\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"rule\": \"{}\", ", d.rule));
            s.push_str(&format!(
                "\"severity\": \"{}\", ",
                match d.severity {
                    Severity::Violation => "violation",
                    Severity::Warning => "warning",
                }
            ));
            s.push_str(&format!("\"file\": \"{}\", ", json_escape(&d.file)));
            s.push_str(&format!("\"line\": {}, ", d.line));
            s.push_str(&format!("\"symbol\": \"{}\", ", json_escape(&d.symbol)));
            s.push_str("\"chain\": [");
            for (j, c) in d.chain.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{}\"", json_escape(c)));
            }
            s.push_str("], ");
            s.push_str(&format!("\"message\": \"{}\"", json_escape(&d.message)));
            s.push('}');
        }
        if !self.diagnostics.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Serializes the outcome as a minimal SARIF 2.1.0 log for GitHub
    /// code-scanning annotations. Same stable ordering as the JSON
    /// report.
    pub fn to_sarif(&self) -> String {
        let mut s = String::with_capacity(512 + self.diagnostics.len() * 220);
        s.push_str("{\n");
        s.push_str("  \"version\": \"2.1.0\",\n");
        s.push_str(
            "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
        );
        s.push_str("  \"runs\": [{\n");
        s.push_str("    \"tool\": {\"driver\": {\"name\": \"gridscale-audit\", \"rules\": [");
        for (i, r) in DETERMINISM_RULES.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{{\"id\": \"{r}\"}}"));
        }
        s.push_str("]}},\n");
        s.push_str("    \"results\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n      {");
            s.push_str(&format!("\"ruleId\": \"{}\", ", d.rule));
            s.push_str(&format!(
                "\"level\": \"{}\", ",
                match d.severity {
                    Severity::Violation => "error",
                    Severity::Warning => "warning",
                }
            ));
            s.push_str(&format!(
                "\"message\": {{\"text\": \"{}\"}}, ",
                json_escape(&d.message)
            ));
            s.push_str(&format!(
                "\"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
                 {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]",
                json_escape(&d.file),
                d.line
            ));
            s.push('}');
        }
        if !self.diagnostics.is_empty() {
            s.push_str("\n    ");
        }
        s.push_str("]\n  }]\n}\n");
        s
    }
}

/// Minimal JSON string escaping.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs the full analyzer over an in-memory file set (`(rel_path,
/// source)` pairs, workspace-relative forward-slash paths). The entry
/// point the fixture tests use; [`audit_workspace`] is the same
/// pipeline fed from disk.
pub fn analyze_sources(files: &[(&str, &str)], opts: &AnalyzeOptions) -> AuditOutcome {
    let ctxs: Vec<FileCtx> = files.iter().map(|(p, _)| FileCtx::classify(p)).collect();
    let scans: Vec<lexer::FileScan> = files.iter().map(|(_, s)| lexer::scan(s)).collect();
    let indexes: Vec<index::FileIndex> = ctxs
        .iter()
        .zip(&scans)
        .map(|(c, s)| index::index_file(c, s))
        .collect();

    // Per-file lexical rules (raw, unsuppressed).
    let mut raw_per_file: Vec<Vec<Diagnostic>> = ctxs
        .iter()
        .zip(&scans)
        .zip(&indexes)
        .map(|((c, s), ix)| rules::collect_file_raw(c, s, ix))
        .collect();

    // Workspace-aware rules, routed back to their file's allow ledger.
    if !opts.no_call_graph {
        for d in taint::check_workspace(&ctxs, &scans, &indexes) {
            if let Some(fi) = ctxs.iter().position(|c| c.rel_path == d.file) {
                raw_per_file[fi].push(d);
            }
        }
    }

    // One allow pass per file over the union, then symbol attribution.
    let mut diagnostics = Vec::new();
    for ((ctx, scan), ix) in ctxs.iter().zip(&scans).zip(&indexes) {
        let fi_diags = raw_per_file.remove(0);
        for mut d in rules::apply_allows(ctx, scan, fi_diags) {
            if d.symbol.is_empty() {
                if let Some(sym) = ix.symbol_at(d.line) {
                    d.symbol = sym;
                }
            }
            diagnostics.push(d);
        }
    }
    diagnostics.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    let (diagnostics, baselined) = match &opts.baseline {
        Some(b) => b.apply(diagnostics),
        None => (diagnostics, 0),
    };
    AuditOutcome {
        files_scanned: files.len(),
        diagnostics,
        baselined,
    }
}

/// Lints a single source text as if it lived at `rel_path` (workspace-
/// relative, forward slashes), with the full engine (call-graph rules
/// included, no baseline).
pub fn audit_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    analyze_sources(&[(rel_path, src)], &AnalyzeOptions::default()).diagnostics
}

/// Walks `root` and audits every `.rs` file with the given options,
/// returning the aggregate outcome. `root` should be the workspace root
/// (the directory holding the top-level `Cargo.toml`).
pub fn audit_workspace_with(root: &Path, opts: &AnalyzeOptions) -> std::io::Result<AuditOutcome> {
    let mut paths = Vec::new();
    collect_rs_files(root, root, &mut paths)?;
    paths.sort();
    let mut sources = Vec::new();
    for rel in &paths {
        let src = fs::read_to_string(root.join(rel))?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        sources.push((rel_str, src));
    }
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    Ok(analyze_sources(&refs, opts))
}

/// [`audit_workspace_with`] under the default configuration CI uses:
/// call-graph mode on, and the committed `audit-baseline.toml` at the
/// root applied when present.
pub fn audit_workspace(root: &Path) -> std::io::Result<AuditOutcome> {
    let mut opts = AnalyzeOptions::default();
    let baseline_path = root.join(BASELINE_FILE);
    if let Ok(text) = fs::read_to_string(&baseline_path) {
        opts.baseline = Some(Baseline::parse(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: {e}", baseline_path.display()),
            )
        })?);
    }
    audit_workspace_with(root, &opts)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            let rel = path.strip_prefix(root).unwrap_or(&path);
            let rel_str = rel
                .to_string_lossy()
                .replace(std::path::MAIN_SEPARATOR, "/");
            if rel_str.ends_with(SKIP_SUFFIX) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Shared driver for the `gridscale-audit` binary and the `gridscale
/// audit` subcommand.
///
/// Flags:
/// - `--root DIR` — workspace root (default: walk up to `[workspace]`)
/// - `--call-graph` / `--no-call-graph` — workspace-aware rules (D7,
///   D8, taint-flow); default on
/// - `--baseline FILE` — accepted-findings file (default:
///   `audit-baseline.toml` at the root, when present)
/// - `--no-baseline` — ignore any baseline file
/// - `--write-baseline` — regenerate the baseline accepting every
///   current violation, then exit
/// - `--json REPORT.json` — write the byte-stable JSON report
/// - `--sarif REPORT.sarif` — write a SARIF 2.1.0 log
/// - `--deny-warnings` — annotation-hygiene warnings also fail
/// - `--quiet` — suppress per-diagnostic output
///
/// Returns the process exit code (0 = clean, 1 = findings, 2 = usage or
/// I/O error).
pub fn run_cli(args: &[String]) -> i32 {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut no_baseline = false;
    let mut write_baseline = false;
    let mut no_call_graph = false;
    let mut deny_warnings = false;
    let mut quiet = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                root = args.get(i).map(PathBuf::from);
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).map(PathBuf::from);
            }
            "--sarif" => {
                i += 1;
                sarif_path = args.get(i).map(PathBuf::from);
            }
            "--baseline" => {
                i += 1;
                baseline_path = args.get(i).map(PathBuf::from);
            }
            "--no-baseline" => no_baseline = true,
            "--write-baseline" => write_baseline = true,
            "--call-graph" => no_call_graph = false,
            "--no-call-graph" => no_call_graph = true,
            "--deny-warnings" => deny_warnings = true,
            "--quiet" => quiet = true,
            other => {
                eprintln!("gridscale-audit: unknown flag {other}");
                eprintln!(
                    "usage: gridscale-audit [--root DIR] [--call-graph | --no-call-graph] \
                     [--baseline FILE | --no-baseline] [--write-baseline] \
                     [--json REPORT.json] [--sarif REPORT.sarif] \
                     [--deny-warnings] [--quiet]"
                );
                return 2;
            }
        }
        i += 1;
    }
    let root = root
        .or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|d| find_workspace_root(&d))
        })
        .unwrap_or_else(|| PathBuf::from("."));

    let baseline_file = baseline_path.unwrap_or_else(|| root.join(BASELINE_FILE));
    let mut opts = AnalyzeOptions {
        no_call_graph,
        baseline: None,
    };
    // A missing baseline file is fine (every finding surfaces); a
    // malformed one is a hard error, never a silently empty accept-list.
    if !no_baseline && !write_baseline {
        if let Ok(text) = fs::read_to_string(&baseline_file) {
            match Baseline::parse(&text) {
                Ok(b) => opts.baseline = Some(b),
                Err(e) => {
                    eprintln!(
                        "gridscale-audit: malformed baseline {}: {e}",
                        baseline_file.display()
                    );
                    return 2;
                }
            }
        }
    }

    let outcome = match audit_workspace_with(&root, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gridscale-audit: cannot scan {}: {e}", root.display());
            return 2;
        }
    };

    if write_baseline {
        let text = baseline::render_baseline(&outcome.diagnostics);
        if let Err(e) = fs::write(&baseline_file, &text) {
            eprintln!(
                "gridscale-audit: cannot write {}: {e}",
                baseline_file.display()
            );
            return 2;
        }
        let v = outcome.violations().count();
        println!(
            "baseline → {} ({v} violation{} accepted)",
            baseline_file.display(),
            if v == 1 { "" } else { "s" },
        );
        return 0;
    }

    if !quiet {
        for d in &outcome.diagnostics {
            let kind = match d.severity {
                Severity::Violation => "error",
                Severity::Warning => "warning",
            };
            println!("{}:{}: {kind}[{}]: {}", d.file, d.line, d.rule, d.message);
        }
        let v = outcome.violations().count();
        let w = outcome.warnings().count();
        println!(
            "audit: {} files scanned, {v} violation{}, {w} warning{}, {} baselined",
            outcome.files_scanned,
            if v == 1 { "" } else { "s" },
            if w == 1 { "" } else { "s" },
            outcome.baselined,
        );
    }
    if let Some(p) = json_path {
        if let Err(e) = fs::write(&p, outcome.to_json()) {
            eprintln!("gridscale-audit: cannot write {}: {e}", p.display());
            return 2;
        }
        if !quiet {
            println!("audit report → {}", p.display());
        }
    }
    if let Some(p) = sarif_path {
        if let Err(e) = fs::write(&p, outcome.to_sarif()) {
            eprintln!("gridscale-audit: cannot write {}: {e}", p.display());
            return 2;
        }
        if !quiet {
            println!("sarif log → {}", p.display());
        }
    }
    if outcome.is_clean(deny_warnings) {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, sev: Severity) -> Diagnostic {
        let mut d = Diagnostic::new(
            rule,
            sev,
            "crates/x/src/lib.rs",
            3,
            "a \"quoted\" message".into(),
        );
        d.symbol = "X::f".into();
        d.chain = vec!["SimTemplate::run".into(), "X::f".into()];
        d
    }

    #[test]
    fn json_report_shape() {
        let outcome = AuditOutcome {
            files_scanned: 2,
            diagnostics: vec![diag(rules::RULE_WALL_CLOCK, Severity::Violation)],
            baselined: 4,
        };
        let json = outcome.to_json();
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\"baselined\": 4"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("\"symbol\": \"X::f\""));
        assert!(json.contains("\"chain\": [\"SimTemplate::run\", \"X::f\"]"));
        assert!(!outcome.is_clean(false));
    }

    #[test]
    fn sarif_log_shape() {
        let outcome = AuditOutcome {
            files_scanned: 1,
            diagnostics: vec![diag(rules::RULE_HOT_PATH_PANIC, Severity::Violation)],
            baselined: 0,
        };
        let sarif = outcome.to_sarif();
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"ruleId\": \"hot-path-panic\""));
        assert!(sarif.contains("\"level\": \"error\""));
        assert!(sarif.contains("\"uri\": \"crates/x/src/lib.rs\""));
        assert!(sarif.contains("\"startLine\": 3"));
    }

    #[test]
    fn clean_outcome_with_warnings_depends_on_strictness() {
        let outcome = AuditOutcome {
            files_scanned: 1,
            diagnostics: vec![diag(rules::RULE_UNUSED_ALLOW, Severity::Warning)],
            baselined: 0,
        };
        assert!(outcome.is_clean(false));
        assert!(!outcome.is_clean(true));
    }

    #[test]
    fn analyze_sources_attributes_symbols() {
        let outcome = analyze_sources(
            &[(
                "crates/core/src/x.rs",
                "fn measure() { let t = Instant::now(); }",
            )],
            &AnalyzeOptions::default(),
        );
        assert_eq!(outcome.diagnostics.len(), 1);
        assert_eq!(outcome.diagnostics[0].symbol, "measure");
    }
}
