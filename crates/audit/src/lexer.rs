//! A minimal, dependency-free Rust lexer.
//!
//! The determinism rules (D1–D5) are *lexical* properties: forbidden
//! identifiers, method-call chains, and type names. A full AST (`syn`)
//! would not add type information anyway — so the linter carries its own
//! ~200-line tokenizer instead of an external parser, keeping the audit
//! tool buildable in fully offline environments. The lexer understands
//! exactly what is needed to avoid false positives: line comments (where
//! `audit:allow` annotations live), nested block comments, string / raw
//! string / byte-string / char literals, lifetimes, numbers, identifiers,
//! and single-character punctuation.

/// One lexical token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line.
    pub line: u32,
    /// Token payload.
    pub kind: TokKind,
}

/// The token alphabet the rules care about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (`.`, `:`, `<`, `;`, …).
    Punct(char),
    /// A literal (string, char, number); contents are irrelevant to the
    /// rules, only its presence as a chain separator.
    Lit,
}

/// An `// audit:allow(rule, reason="…")` annotation found in a line
/// comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowSite {
    /// 1-based line the annotation comment is on. It suppresses
    /// diagnostics on this line and the next one.
    pub line: u32,
    /// The rule identifier inside the parentheses (e.g. `hash-iter`).
    pub rule: String,
    /// Whether a `reason="…"` clause is present. Reason-less annotations
    /// still suppress, but are themselves reported as warnings.
    pub has_reason: bool,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Token stream in source order.
    pub toks: Vec<Tok>,
    /// Every `audit:allow` annotation, in source order.
    pub allows: Vec<AllowSite>,
}

/// Parses the body of a line comment for an `audit:allow(...)` marker.
/// Doc comments (`///`, `//!`) are skipped: annotations there are
/// documentation *examples*, not suppressions.
fn parse_allow(comment: &str, line: u32) -> Option<AllowSite> {
    if comment.starts_with("///") || comment.starts_with("//!") {
        return None;
    }
    let start = comment.find("audit:allow(")?;
    let rest = &comment[start + "audit:allow(".len()..];
    let end = rest.find(')')?;
    let args = &rest[..end];
    let mut parts = args.splitn(2, ',');
    let rule = parts.next()?.trim().to_string();
    if rule.is_empty() {
        return None;
    }
    let has_reason = parts
        .next()
        .map(|tail| {
            let tail = tail.trim_start();
            tail.starts_with("reason") && tail.contains('"')
        })
        .unwrap_or(false);
    Some(AllowSite {
        line,
        rule,
        has_reason,
    })
}

/// Tokenizes `src`, collecting `audit:allow` annotations along the way.
pub fn scan(src: &str) -> FileScan {
    let b = src.as_bytes();
    let mut out = FileScan::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    // Counts newlines in b[from..to] into `line`.
    macro_rules! advance_lines {
        ($from:expr, $to:expr) => {
            line += b[$from..$to].iter().filter(|&&c| c == b'\n').count() as u32;
        };
    }

    while i < n {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                // Line comment: scan for an allow annotation, then skip.
                let end = src[i..].find('\n').map(|o| i + o).unwrap_or(n);
                if let Some(allow) = parse_allow(&src[i..end], line) {
                    out.allows.push(allow);
                }
                i = end;
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                // Block comment; Rust block comments nest.
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if i + 1 < n && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                advance_lines!(start, i.min(n));
            }
            b'"' => {
                let start = i;
                i = skip_string(b, i + 1);
                advance_lines!(start, i.min(n));
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Lit,
                });
            }
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                let start = i;
                i = skip_raw_or_byte(b, i);
                advance_lines!(start, i.min(n));
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Lit,
                });
            }
            b'\'' => {
                // Lifetime/label (`'a`) vs char literal (`'a'`, `'\n'`).
                let is_lifetime = i + 1 < n
                    && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                    && !(i + 2 < n && b[i + 2] == b'\'');
                if is_lifetime {
                    i += 1;
                    while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                } else {
                    // Char literal: consume to the unescaped closing quote.
                    i += 1;
                    while i < n {
                        if b[i] == b'\\' {
                            i += 2;
                        } else if b[i] == b'\'' {
                            i += 1;
                            break;
                        } else {
                            i += 1;
                        }
                    }
                    out.toks.push(Tok {
                        line,
                        kind: TokKind::Lit,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                // Number literal (digits, underscores, type suffixes, hex,
                // exponents; a trailing `.` only binds if a digit follows,
                // so `2.pow()` stays a method call).
                i += 1;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                if i + 1 < n && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Lit,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Ident(src[start..i].to_string()),
                });
            }
            _ => {
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Punct(c as char),
                });
                i += 1;
            }
        }
    }
    out
}

/// True when position `i` starts a raw/byte string (`r"`, `r#"`, `b"`,
/// `br#"` …) rather than a plain identifier beginning with `r`/`b`.
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let n = b.len();
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j < n && b[j] == b'"' {
            return true; // b"..."
        }
    }
    if j < n && b[j] == b'r' {
        j += 1;
        while j < n && b[j] == b'#' {
            j += 1;
        }
        return j < n && b[j] == b'"';
    }
    false
}

/// Skips past a raw or byte string starting at `i`; returns the index
/// after its closing delimiter.
fn skip_raw_or_byte(b: &[u8], i: usize) -> usize {
    let n = b.len();
    let mut j = i;
    if j < n && b[j] == b'b' {
        j += 1;
    }
    if j < n && b[j] == b'"' {
        // Plain byte string: escape-aware scan.
        return skip_string(b, j + 1);
    }
    // Raw string: count hashes, then find `"` followed by that many `#`.
    j += 1; // past 'r'
    let mut hashes = 0usize;
    while j < n && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // past opening quote
    while j < n {
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && b[k] == b'#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    n
}

/// Skips past an escape-aware `"`-delimited string body starting just
/// after the opening quote; returns the index after the closing quote.
fn skip_string(b: &[u8], mut i: usize) -> usize {
    let n = b.len();
    while i < n {
        if b[i] == b'\\' {
            i += 2;
        } else if b[i] == b'"' {
            return i + 1;
        } else {
            i += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_skipped() {
        let src = r##"
            // thread_rng in a comment
            /* HashMap in /* a nested */ block */
            let s = "Instant::now() inside a string";
            let r = r#"SystemTime "raw" body"#;
            let c = 'x';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids
            .iter()
            .any(|s| s == "thread_rng" || s == "HashMap" || s == "Instant" || s == "SystemTime"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        // Lifetime names are consumed with the `'`, not emitted as idents.
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "f", "x", "str", "str", "x"]);
    }

    #[test]
    fn allow_annotations_are_collected() {
        let src = "\n// audit:allow(hash-iter, reason=\"lookup-only token map\")\nlet m = HashMap::new();\n// audit:allow(wall-clock)\n";
        let s = scan(src);
        assert_eq!(s.allows.len(), 2);
        assert_eq!(s.allows[0].rule, "hash-iter");
        assert!(s.allows[0].has_reason);
        assert_eq!(s.allows[0].line, 2);
        assert_eq!(s.allows[1].rule, "wall-clock");
        assert!(!s.allows[1].has_reason);
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "a\n/* two\nlines */\nb\n\"str\nspan\"\nc";
        let s = scan(src);
        let lines: Vec<(String, u32)> = s
            .toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(id) => Some((id.clone(), t.line)),
                _ => None,
            })
            .collect();
        assert_eq!(
            lines,
            vec![
                ("a".to_string(), 1),
                ("b".to_string(), 4),
                ("c".to_string(), 7)
            ]
        );
    }

    #[test]
    fn numbers_do_not_swallow_method_calls() {
        let src = "let x = 2.pow(3); let y = 1.5e3_f64;";
        let ids = idents(src);
        assert!(ids.contains(&"pow".to_string()));
    }
}
