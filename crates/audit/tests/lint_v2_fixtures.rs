//! Fixture tests for the call-graph-aware v2 rule families (D6–D9 and
//! cross-file taint). Unlike `lint_fixtures.rs`, these pin the *exact*
//! diagnostic text — including the rendered call chain — so message
//! regressions show up as test diffs, not as churn in CI baselines.

use gridscale_audit::{analyze_sources, audit_source, AnalyzeOptions, Diagnostic};

fn read_fixture(fixture: &str) -> String {
    let path = format!("{}/tests/fixtures/{fixture}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read fixture {path}: {e}"))
}

fn lint_fixture(fixture: &str, as_path: &str) -> Vec<Diagnostic> {
    audit_source(as_path, &read_fixture(fixture))
}

/// `(rule, line, message)` triples of every diagnostic for `rule`.
fn pins(diags: &[Diagnostic], rule: &str) -> Vec<(u32, String)> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| (d.line, d.message.clone()))
        .collect()
}

// ---------------------------------------------------------------- D6

#[test]
fn d6_seq_float_fold_fixture_violates_with_pinned_text() {
    let diags = lint_fixture("d6_seq_float_fold.rs", "crates/gridsim/src/fixture.rs");
    assert_eq!(
        pins(&diags, "seq-float-fold"),
        vec![
            (
                9,
                "`loads.values().…sum()` accumulates in hash iteration order, \
                 which varies per process; float folds outside the blessed \
                 ascending-shard/ascending-rep folds must state their ordering \
                 argument (`// audit:allow(seq-float-fold, reason=\"…\")`) or \
                 fold over an explicitly ordered sequence"
                    .to_string()
            ),
            (
                11,
                "`ordered.values().…fold()` accumulates in ascending key order \
                 — stable today, but only by the container's courtesy; float \
                 folds outside the blessed ascending-shard/ascending-rep folds \
                 must state their ordering argument \
                 (`// audit:allow(seq-float-fold, reason=\"…\")`) or fold over \
                 an explicitly ordered sequence"
                    .to_string()
            ),
        ],
        "{diags:?}"
    );
    // The hash container also trips D1 on its own account (decl + use).
    assert!(diags.iter().any(|d| d.rule == "hash-iter"), "{diags:?}");
}

#[test]
fn d6_allowed_fixture_is_clean() {
    let diags = lint_fixture("d6_allowed.rs", "crates/gridsim/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn d6_is_scoped_to_sim_facing_crates() {
    // Outside the sim-facing set the fold is only a taint *fact*; with
    // no sink reaching it, nothing is reported.
    let diags = lint_fixture("d6_seq_float_fold.rs", "crates/bench/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- D7

#[test]
fn d7_hot_path_panic_fixture_violates_with_pinned_chain() {
    let diags = lint_fixture("d7_hot_path_panic.rs", "crates/gridsim/src/fixture.rs");
    assert_eq!(
        pins(&diags, "hot-path-panic"),
        vec![
            (
                17,
                "`panic!` in `drain_round` is reachable from the replay hot \
                 path — a panic mid-replay tears down the sharded run at a \
                 scheduling-dependent point; return an error/default or \
                 annotate the invariant (call chain: SimTemplate::run_replay \
                 → drain_round)"
                    .to_string()
            ),
            (
                19,
                "`.unwrap()` in `drain_round` is reachable from the replay hot \
                 path — a panic mid-replay tears down the sharded run at a \
                 scheduling-dependent point; return an error/default or \
                 annotate the invariant (call chain: SimTemplate::run_replay \
                 → drain_round)"
                    .to_string()
            ),
        ],
        "{diags:?}"
    );
    // The structured chain rides along for --json consumers.
    let d = diags.iter().find(|d| d.rule == "hot-path-panic").unwrap();
    assert_eq!(d.chain, vec!["SimTemplate::run_replay", "drain_round"]);
    assert_eq!(d.symbol, "drain_round");
}

#[test]
fn d7_allowed_fixture_is_clean() {
    let diags = lint_fixture("d7_allowed.rs", "crates/gridsim/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn d7_is_silent_without_call_graph() {
    let src = read_fixture("d7_hot_path_panic.rs");
    let outcome = analyze_sources(
        &[("crates/gridsim/src/fixture.rs", src.as_str())],
        &AnalyzeOptions {
            no_call_graph: true,
            ..Default::default()
        },
    );
    assert!(
        outcome
            .diagnostics
            .iter()
            .all(|d| d.rule != "hot-path-panic"),
        "{:?}",
        outcome.diagnostics
    );
}

// ---------------------------------------------------------------- D8

#[test]
fn d8_shared_interior_mut_fixture_violates_with_pinned_containment() {
    let diags = lint_fixture("d8_shared_interior_mut.rs", "crates/gridsim/src/fixture.rs");
    assert_eq!(
        pins(&diags, "shared-interior-mut"),
        vec![(
            13,
            "`RefCell` field inside `RateTable`, which is reachable from \
             Arc-shared root `WorldFixture` — shared-world state must be \
             deeply immutable during replay (containment: WorldFixture → \
             RateTable)"
                .to_string()
        )],
        "{diags:?}"
    );
    let d = diags
        .iter()
        .find(|d| d.rule == "shared-interior-mut")
        .unwrap();
    assert_eq!(d.chain, vec!["WorldFixture", "RateTable"]);
    assert_eq!(d.symbol, "RateTable");
}

#[test]
fn d8_allowed_fixture_is_clean() {
    let diags = lint_fixture("d8_allowed.rs", "crates/gridsim/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn d8_is_scoped_to_sim_facing_crates() {
    // The same shapes in a tooling crate shares nothing across replay
    // threads that the audit polices.
    let diags = lint_fixture("d8_shared_interior_mut.rs", "crates/bench/src/fixture.rs");
    assert!(
        diags.iter().all(|d| d.rule != "shared-interior-mut"),
        "{diags:?}"
    );
}

// ---------------------------------------------------------------- D9

#[test]
fn d9_barrier_blocking_fixture_violates_with_pinned_text() {
    let diags = lint_fixture("d9_barrier_blocking.rs", "crates/gridsim/src/fixture.rs");
    assert_eq!(
        pins(&diags, "barrier-blocking"),
        vec![
            (
                10,
                "`.lock()` inside barrier-phase fn `flush_round` — blocking in \
                 a RoundBarrier round can deadlock the lockstep windows; state \
                 the non-contention argument with \
                 `// audit:allow(barrier-blocking, reason=\"…\")`"
                    .to_string()
            ),
            (
                12,
                "`sleep()` inside barrier-phase fn `flush_round` — a sleeping \
                 worker stalls every shard at the next barrier; remove it or \
                 annotate with `// audit:allow(barrier-blocking, \
                 reason=\"…\")`"
                    .to_string()
            ),
            (
                17,
                "`.join()` inside barrier-phase fn `drain_round` — blocking in \
                 a RoundBarrier round can deadlock the lockstep windows; state \
                 the non-contention argument with \
                 `// audit:allow(barrier-blocking, reason=\"…\")`"
                    .to_string()
            ),
        ],
        "{diags:?}"
    );
    // The barrier's own `.wait()` calls (lines 9, 16) are exempt.
    assert!(
        diags.iter().all(|d| d.line != 9 && d.line != 16),
        "{diags:?}"
    );
}

#[test]
fn d9_allowed_fixture_is_clean() {
    let diags = lint_fixture("d9_allowed.rs", "crates/gridsim/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// -------------------------------------------------- cross-file taint

fn taint_chain_files() -> [(String, String); 2] {
    [
        (
            "crates/bench/src/score.rs".to_string(),
            read_fixture("taint_chain_score.rs"),
        ),
        (
            "crates/rms/src/lowest_fixture.rs".to_string(),
            read_fixture("taint_chain_policy.rs"),
        ),
    ]
}

#[test]
fn taint_chain_across_files_with_pinned_chain() {
    let files = taint_chain_files();
    let refs: Vec<(&str, &str)> = files
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    let outcome = analyze_sources(&refs, &AnalyzeOptions::default());
    assert_eq!(
        pins(&outcome.diagnostics, "taint-flow"),
        vec![(
            9,
            "hash-order iteration `loads.iter()` is reachable from sim-facing \
             entry `LowestFixture::on_remote_job` — call chain: \
             LowestFixture::on_remote_job → dispatch_remote → score_all"
                .to_string()
        )],
        "{:?}",
        outcome.diagnostics
    );
    let d = outcome
        .diagnostics
        .iter()
        .find(|d| d.rule == "taint-flow")
        .unwrap();
    // The finding lands at the *source*, in the file where the hash
    // order is born, not at the sink.
    assert_eq!(d.file, "crates/bench/src/score.rs");
    assert_eq!(d.symbol, "score_all");
    assert_eq!(
        d.chain,
        vec![
            "LowestFixture::on_remote_job",
            "dispatch_remote",
            "score_all"
        ]
    );
}

#[test]
fn taint_chain_is_silent_without_call_graph() {
    let files = taint_chain_files();
    let refs: Vec<(&str, &str)> = files
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    let outcome = analyze_sources(
        &refs,
        &AnalyzeOptions {
            no_call_graph: true,
            ..Default::default()
        },
    );
    assert!(
        outcome.diagnostics.iter().all(|d| d.rule != "taint-flow"),
        "{:?}",
        outcome.diagnostics
    );
}

#[test]
fn taint_chain_source_alone_is_clean() {
    // Without the sink file in view there is no sim-facing entry, so
    // the helper is (correctly) legal on its own.
    let diags = lint_fixture("taint_chain_score.rs", "crates/bench/src/score.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// --------------------------------------------------- output stability

#[test]
fn json_output_is_byte_stable_across_input_order() {
    let files = taint_chain_files();
    let fwd: Vec<(&str, &str)> = files
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    let rev: Vec<(&str, &str)> = fwd.iter().rev().copied().collect();
    let a = analyze_sources(&fwd, &AnalyzeOptions::default());
    let b = analyze_sources(&rev, &AnalyzeOptions::default());
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_sarif(), b.to_sarif());
}
