//! Multi-file taint fixture, sink half: a Policy impl whose dispatch
//! path reaches the hash-order helper in `taint_chain_score.rs` through
//! an intermediate free function.

struct LowestFixture {
    held: usize,
}

impl Policy for LowestFixture {
    fn on_remote_job(&mut self) {
        self.held += 1;
        dispatch_remote();
    }
}

fn dispatch_remote() -> f64 {
    score_all(&Default::default())
}
