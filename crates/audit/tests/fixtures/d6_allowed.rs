//! D6 negative fixture: the same folds as `d6_seq_float_fold.rs`, each
//! carrying its ordering argument as an annotation (plus the stacked D1
//! allows the hash container needs on its own account).

use std::collections::{BTreeMap, HashMap};

fn total_g_overhead() -> f64 {
    // audit:allow(hash-iter, reason="fixture: order-insensitive total, summed below")
    let loads: HashMap<u32, f64> = HashMap::new();
    // audit:allow(hash-iter, reason="fixture: order-insensitive total")
    // audit:allow(seq-float-fold, reason="fixture: values sum to an order-insensitive total")
    let hash_total: f64 = loads.values().sum();
    let ordered: BTreeMap<u32, f64> = BTreeMap::new();
    // audit:allow(seq-float-fold, reason="fixture: ascending key order is the stated contract")
    let btree_total = ordered.values().fold(0.0, |acc, v| acc + v);
    hash_total + btree_total
}
