//! D7 fixture: panic sites in a helper reachable from the replay hot
//! path (`SimTemplate::run*`).

struct SimTemplate {
    seed: u64,
}

impl SimTemplate {
    fn run_replay(&self) -> f64 {
        drain_round(3)
    }
}

fn drain_round(k: usize) -> f64 {
    let slots: Vec<f64> = Vec::with_capacity(k);
    if slots.is_empty() {
        panic!("empty round");
    }
    slots.first().copied().unwrap()
}
