//! D8 fixture: interior mutability buried one struct deep under an
//! Arc-shared root — the closure walk must find it through the field
//! type, not just on the root itself.

use std::cell::RefCell;
use std::sync::Arc;

struct WorldFixture {
    table: RateTable,
}

struct RateTable {
    scratch: RefCell<Vec<f64>>,
}

fn share(w: WorldFixture) -> Arc<WorldFixture> {
    Arc::new(w)
}
