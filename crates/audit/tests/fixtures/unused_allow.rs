// Fixture: annotation hygiene warnings — an allow with no matching use
// site, and an allow that suppresses but gives no reason.
use std::collections::HashMap;

// audit:allow(wall-clock, reason="nothing on the next line reads a clock")
pub fn plain() -> u32 {
    7
}

pub struct Lookup {
    // audit:allow(hash-iter)
    memo: HashMap<u64, u64>,
}
