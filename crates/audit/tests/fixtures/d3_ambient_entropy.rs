// Fixture: D3 ambient-entropy violations. Linted as if at crates/rms/src/.
use rand::{thread_rng, Rng, SeedableRng};

pub fn jitter() -> f64 {
    let mut rng = thread_rng();
    rng.gen::<f64>()
}

pub fn reseed() -> rand::rngs::SmallRng {
    rand::rngs::SmallRng::from_entropy()
}
