//! D6 fixture: sequential float folds ordered by a keyed container's
//! iteration. The hash root is nondeterministic outright; the BTree
//! root leans on an unstated "ascending key order" contract.

use std::collections::{BTreeMap, HashMap};

fn total_g_overhead() -> f64 {
    let loads: HashMap<u32, f64> = HashMap::new();
    let hash_total: f64 = loads.values().sum();
    let ordered: BTreeMap<u32, f64> = BTreeMap::new();
    let btree_total = ordered.values().fold(0.0, |acc, v| acc + v);
    hash_total + btree_total
}
