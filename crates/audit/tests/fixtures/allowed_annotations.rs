// Fixture: properly annotated opt-outs — must lint clean even in a
// sim-facing crate.
use std::collections::HashMap;
use std::time::Instant;

pub struct Cache {
    // audit:allow(hash-iter, reason="token-keyed lookups, never iterated")
    memo: HashMap<u64, f64>,
}

impl Cache {
    pub fn get(&self, k: u64) -> Option<f64> {
        self.memo.get(&k).copied()
    }
}

pub fn telemetry_ms() -> f64 {
    // audit:allow(wall-clock, reason="telemetry only, never feeds sim state")
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64() * 1e3
}

pub fn blessed_merge(base: &mut Shard, shards: &[Shard]) {
    // Iterating a shard slice in index order is exactly the discipline
    // D5 demands — the annotation records the argument.
    for s in shards {
        // audit:allow(shard-merge, reason="slots disjoint; ascending shard order")
        base.acct.absorb_shard(&s.acct);
    }
}
