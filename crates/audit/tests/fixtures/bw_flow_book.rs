// Fixture: the two ways a flow-contention book can lose determinism.
// Linted as if at crates/gridsim/src/. The real `flow.rs` keeps live
// flows in per-lane Vecs scanned in admission order; this fixture keys
// them by flow id in a HashMap (D1: iteration order feeds the residual
// rate) and reduces link loads with an unordered parallel float sum
// (D4: float addition is not associative, so shard timing changes the
// admitted rate).
use rayon::prelude::*;
use std::collections::HashMap;

pub struct FlowBook {
    live: HashMap<u64, f64>,
}

impl FlowBook {
    pub fn residual(&self, cap: f64) -> f64 {
        let mut used = 0.0;
        for (_, rate) in self.live.iter() {
            used += rate;
        }
        cap - used
    }

    pub fn link_load(loads: &[f64]) -> f64 {
        loads.par_iter().sum()
    }
}
