//! D9 fixture: blocking calls inside barrier-phase functions. The
//! barrier's own `wait()` is the synchronization point and exempt.

struct RoundBarrier {
    round: u64,
}

fn flush_round(barrier: &RoundBarrier, inbox: &std::sync::Mutex<Vec<u64>>) {
    barrier.wait();
    let mut q = inbox.lock().unwrap();
    q.clear();
    std::thread::sleep(std::time::Duration::from_millis(1));
}

fn drain_round(barrier: &RoundBarrier, handle: std::thread::JoinHandle<()>) {
    barrier.wait();
    handle.join().unwrap();
}
