//! Multi-file taint fixture, source half: a hash-order scoring helper
//! that is legal where it lives (a non-sim-facing crate, so D1 stands
//! down) but must not be reachable from a sim-facing sink.

use std::collections::HashMap;

pub fn score_all(loads: &HashMap<u32, f64>) -> f64 {
    let mut best = 0.0;
    for (_, &v) in loads.iter() {
        if v > best {
            best = v;
        }
    }
    best
}
