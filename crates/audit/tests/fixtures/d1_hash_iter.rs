// Fixture: D1 hash-iter violations. Linted as if at crates/gridsim/src/.
use std::collections::{HashMap, HashSet};

pub struct Sched {
    pending: HashMap<u64, u64>,
    seen: HashSet<u64>,
}

impl Sched {
    pub fn drain_all(&mut self) -> u64 {
        let mut acc = 0;
        for (_, v) in self.pending.iter() {
            acc += v;
        }
        for v in self.pending.values() {
            acc += v;
        }
        acc + self.seen.len() as u64
    }
}
