//! D7 negative fixture: the same reachable panic sites, each carrying
//! its invariant as an annotation.

struct SimTemplate {
    seed: u64,
}

impl SimTemplate {
    fn run_replay(&self) -> f64 {
        drain_round(3)
    }
}

fn drain_round(k: usize) -> f64 {
    let slots: Vec<f64> = Vec::with_capacity(k);
    if slots.is_empty() {
        // audit:allow(hot-path-panic, reason="fixture: k >= 1 is a constructor invariant")
        panic!("empty round");
    }
    // audit:allow(hot-path-panic, reason="fixture: non-empty checked on the line above")
    slots.first().copied().unwrap()
}
