// Fixture: D4 par-float-sum violations. Linted as if at crates/core/src/.
use rayon::prelude::*;

pub fn mean_cost(xs: &[f64]) -> f64 {
    let total: f64 = xs.par_iter().sum();
    total / xs.len() as f64
}
