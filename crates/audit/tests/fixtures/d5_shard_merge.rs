//! Deliberately violating fixture for D5 (`shard-merge`): per-shard
//! simulation state merged across threads in completion order, outside
//! the blessed barrier-ordered merge and without annotations.

fn gather_in_completion_order(
    handles: Vec<std::thread::JoinHandle<Shard>>,
    base: &mut Shard,
) {
    // Violation: join() results gathered straight into a collection —
    // the vector order is thread completion order on some executors.
    let done: Vec<Shard> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for s in &done {
        // Violation: a shard-state merge primitive called outside the
        // blessed helper, with no ordering argument recorded.
        base.acct.absorb_shard(&s.acct);
    }
}

fn refold(base: &mut SimCore, shards: &[SimCore]) {
    for s in shards {
        // Violation: same primitive, different call shape.
        merge_shard_core(base, s);
    }
}
