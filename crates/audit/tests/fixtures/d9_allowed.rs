//! D9 negative fixture: the same blocking sites, each stating its
//! non-contention argument.

struct RoundBarrier {
    round: u64,
}

fn flush_round(barrier: &RoundBarrier, inbox: &std::sync::Mutex<Vec<u64>>) {
    barrier.wait();
    // audit:allow(barrier-blocking, reason="fixture: inbox slot is uncontended in this phase")
    let mut q = inbox.lock().unwrap();
    q.clear();
    // audit:allow(barrier-blocking, reason="fixture: paced replay stub, no shard waits on us")
    std::thread::sleep(std::time::Duration::from_millis(1));
}

fn drain_round(barrier: &RoundBarrier, handle: std::thread::JoinHandle<()>) {
    barrier.wait();
    // audit:allow(barrier-blocking, reason="fixture: worker finished before the barrier tore down")
    handle.join().unwrap();
}
