//! D8 negative fixture: the same nested interior-mut field, annotated
//! with why it cannot race during replay.

use std::cell::RefCell;
use std::sync::Arc;

struct WorldFixture {
    table: RateTable,
}

struct RateTable {
    // audit:allow(shared-interior-mut, reason="fixture: scratch is only touched on the sequential tail")
    scratch: RefCell<Vec<f64>>,
}

fn share(w: WorldFixture) -> Arc<WorldFixture> {
    Arc::new(w)
}
