// Fixture: D2 wall-clock violations. Linted as if at crates/gridsim/src/.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u128 {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    drop(wall);
    t0.elapsed().as_nanos()
}
