//! Fixture tests: each determinism rule must fire on its bad fixture
//! with the exact rule ID, and the annotated fixture must lint clean.
//! Fixtures live under `tests/fixtures/` (excluded from the workspace
//! scan) and are linted *as if* they sat inside a sim-facing crate.

use gridscale_audit::{audit_source, Diagnostic, Severity};

fn lint_fixture(fixture: &str, as_path: &str) -> Vec<Diagnostic> {
    let path = format!("{}/tests/fixtures/{fixture}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {path}: {e}"));
    audit_source(as_path, &src)
}

fn rules_of(diags: &[Diagnostic], severity: Severity) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = diags
        .iter()
        .filter(|d| d.severity == severity)
        .map(|d| d.rule)
        .collect();
    rules.dedup();
    rules
}

#[test]
fn d1_hash_iter_fixture_violates() {
    let diags = lint_fixture("d1_hash_iter.rs", "crates/gridsim/src/fixture.rs");
    let rules = rules_of(&diags, Severity::Violation);
    assert_eq!(rules, vec!["hash-iter"], "{diags:?}");
    // Declaration lines AND both iteration sites are flagged.
    assert!(
        diags.iter().filter(|d| d.rule == "hash-iter").count() >= 4,
        "{diags:?}"
    );
}

#[test]
fn d1_is_scoped_to_sim_facing_crates() {
    // The same source outside the sim-facing set is fine: the CLI and
    // bench crates may hash freely.
    let diags = lint_fixture("d1_hash_iter.rs", "crates/bench/src/fixture.rs");
    assert!(diags.iter().all(|d| d.rule != "hash-iter"), "{diags:?}");
}

#[test]
fn d2_wall_clock_fixture_violates() {
    let diags = lint_fixture("d2_wall_clock.rs", "crates/gridsim/src/fixture.rs");
    let rules = rules_of(&diags, Severity::Violation);
    assert_eq!(rules, vec!["wall-clock"], "{diags:?}");
    // Instant::now and SystemTime are distinct findings.
    assert!(
        diags.iter().filter(|d| d.rule == "wall-clock").count() >= 2,
        "{diags:?}"
    );
}

#[test]
fn d2_is_exempt_in_bench_paths() {
    let diags = lint_fixture("d2_wall_clock.rs", "crates/bench/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
    let diags = lint_fixture("d2_wall_clock.rs", "crates/gridsim/benches/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn d3_ambient_entropy_fixture_violates() {
    let diags = lint_fixture("d3_ambient_entropy.rs", "crates/rms/src/fixture.rs");
    let rules = rules_of(&diags, Severity::Violation);
    assert_eq!(rules, vec!["ambient-entropy"], "{diags:?}");
    // thread_rng and from_entropy each fire.
    assert!(
        diags.iter().filter(|d| d.rule == "ambient-entropy").count() >= 2,
        "{diags:?}"
    );
}

#[test]
fn d3_fires_even_outside_sim_facing_crates() {
    // Ambient entropy is banned everywhere: a nondeterministic seed in
    // the CLI still poisons reproducibility of recorded runs.
    let diags = lint_fixture("d3_ambient_entropy.rs", "src/bin/fixture.rs");
    assert!(
        diags.iter().any(|d| d.rule == "ambient-entropy"),
        "{diags:?}"
    );
}

#[test]
fn d4_par_float_sum_fixture_violates() {
    let diags = lint_fixture("d4_par_float_sum.rs", "crates/core/src/fixture.rs");
    let rules = rules_of(&diags, Severity::Violation);
    assert_eq!(rules, vec!["par-float-sum"], "{diags:?}");
}

#[test]
fn d5_shard_merge_fixture_violates() {
    let diags = lint_fixture("d5_shard_merge.rs", "crates/gridsim/src/fixture.rs");
    let rules = rules_of(&diags, Severity::Violation);
    assert_eq!(rules, vec!["shard-merge"], "{diags:?}");
    // The join-gather chain and both merge-primitive calls are distinct
    // findings.
    assert!(
        diags.iter().filter(|d| d.rule == "shard-merge").count() >= 3,
        "{diags:?}"
    );
}

#[test]
fn d5_is_scoped_to_sim_facing_crates() {
    // Thread gathering outside the simulation state is not D5's
    // business (the CLI's sweep helpers, bench harnesses, …).
    let diags = lint_fixture("d5_shard_merge.rs", "crates/bench/src/fixture.rs");
    assert!(diags.iter().all(|d| d.rule != "shard-merge"), "{diags:?}");
}

#[test]
fn bandwidth_flow_book_fixture_violates_d1_and_d4() {
    // The contention module's two failure modes, caught at the path the
    // real flow book lives at: hash-ordered iteration feeding the
    // residual rate, and an unordered parallel reduction of link loads.
    let diags = lint_fixture("bw_flow_book.rs", "crates/gridsim/src/flow.rs");
    let rules = rules_of(&diags, Severity::Violation);
    assert_eq!(rules, vec!["hash-iter", "par-float-sum"], "{diags:?}");
}

#[test]
fn bandwidth_flow_book_d1_is_scoped_but_d4_is_not() {
    // Outside the sim-facing set the hash rule stands down; the float
    // reduction stays banned because it feeds numbers reports compare.
    let diags = lint_fixture("bw_flow_book.rs", "crates/bench/src/fixture.rs");
    assert!(diags.iter().all(|d| d.rule != "hash-iter"), "{diags:?}");
    assert!(diags.iter().any(|d| d.rule == "par-float-sum"), "{diags:?}");
}

#[test]
fn annotated_fixture_is_clean() {
    let diags = lint_fixture("allowed_annotations.rs", "crates/gridsim/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unused_allow_fixture_warns() {
    let diags = lint_fixture("unused_allow.rs", "crates/gridsim/src/fixture.rs");
    assert!(
        diags.iter().all(|d| d.severity == Severity::Warning),
        "{diags:?}"
    );
    let rules = rules_of(&diags, Severity::Warning);
    assert!(rules.contains(&"unused-allow"), "{diags:?}");
    assert!(rules.contains(&"missing-reason"), "{diags:?}");
}

#[test]
fn workspace_scan_skips_fixture_directory() {
    // Walking the audit crate itself must not trip over the deliberately
    // bad fixtures.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let outcome = gridscale_audit::audit_workspace(root).expect("scan audit crate");
    assert!(outcome.diagnostics.is_empty(), "{:?}", outcome.diagnostics);
    assert!(
        outcome.files_scanned >= 4,
        "lib, main, lexer, rules + tests"
    );
}
