//! # gridscale-core
//!
//! The paper's primary contribution: a **quantitative, direct scalability
//! metric for resource management systems** and the measurement procedure
//! around it (Mitra, Maheswaran, Ali — IPDPS 2005, §2–§3.2).
//!
//! * [`efficiency`] — the managed-system performance model: efficiency
//!   `E(k) = F/(F+G+H)`, the normalized `f, g, h` curves, the
//!   isoefficiency constants `c, c'` of Eq. (1), and the scalability
//!   condition `f(k) > c·g(k)` of Eq. (2).
//! * [`cases`] — the four experimental scaling strategies of Tables 2–5
//!   (network size, service rate, estimator count, `L_p`) with their
//!   scaling-variable application and tunable enabler spaces.
//! * [`scenario`] — base-configuration construction per RMS model and
//!   scale factor (CENTRAL keeps one scheduler; distributed RMSs grow with
//!   the RP, as in Table 2's "RMS increases proportionately with RP").
//! * [`mod@anneal`] — the simulated-annealing search the paper uses (§3.2,
//!   Step 3) to find the enabler setting minimizing `G(k)` subject to the
//!   isoefficiency band.
//! * [`measure`] — the four-step measurement procedure (Fig. 1) producing
//!   per-scale curves and slopes.
//! * [`sweep`] — deterministic parallel execution of `(model, k)` grids
//!   over scoped threads.
//! * [`stats`] — replication statistics: Student-t 95% confidence
//!   intervals on every measured verdict.

#![warn(missing_docs)]

pub mod anneal;
pub mod cases;
pub mod efficiency;
pub mod jogalekar;
pub mod measure;
pub mod scenario;
pub mod sensitivity;
pub mod stats;
pub mod sweep;

pub use anneal::{anneal, anneal_batch, AnnealConfig, AnnealResult, BatchAnnealConfig};
pub use cases::{CaseId, EnablerSpace, ScalingCase};
pub use efficiency::{IsoefficiencyModel, NormalizedPoint};
pub use jogalekar::{ProductivityModel, PsiPoint};
pub use measure::{
    measure_all, measure_all_with_bench, measure_rms, measure_rms_with_bench,
    probe_replication_speedup, resolve_e0, tune_point, CurvePoint, E0Mode, MeasureOptions,
    PointBench, RepProbe, ReplicationMode, ScalabilityCurve, ScalabilityVerdict, TuningBench,
    VerdictConfidence,
};
pub use scenario::{config_for, expected_resources, Preset};
pub use stats::{rep_stats, t_critical_975, RepStats};
pub use sweep::EnergyPool;
