//! The four experimental scaling strategies (paper Tables 2–5) and their
//! tunable enabler spaces.

use gridscale_gridsim::Enablers;
use serde::{Deserialize, Serialize};

/// Which scaling strategy an experiment follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaseId {
    /// Case 1 (Table 2): scale the RP by network size; RMS grows
    /// proportionately. Figures 2.
    NetworkSize,
    /// Case 2 (Table 3): scale the RP by resource service rate at fixed
    /// network size. Figure 3.
    ServiceRate,
    /// Case 3 (Table 4): scale the RMS by number of status estimators at
    /// fixed network size. Figures 4, 6, 7.
    Estimators,
    /// Case 4 (Table 5): scale the RMS by `L_p` at fixed network size.
    /// Figure 5.
    Lp,
    /// Case 5 (extension): scale the network by link bandwidth — capacity
    /// shrinks as `1/k` at fixed network size, and the measured transfer
    /// share of `H(k)` grows with contention. Requires the bandwidth-aware
    /// transmission model.
    Bandwidth,
}

impl CaseId {
    /// The paper's four cases in paper order.
    pub const ALL: [CaseId; 4] = [
        CaseId::NetworkSize,
        CaseId::ServiceRate,
        CaseId::Estimators,
        CaseId::Lp,
    ];

    /// The paper's four cases plus the bandwidth-scaling extension.
    pub const WITH_BANDWIDTH: [CaseId; 5] = [
        CaseId::NetworkSize,
        CaseId::ServiceRate,
        CaseId::Estimators,
        CaseId::Lp,
        CaseId::Bandwidth,
    ];

    /// The case number (1–4 per the paper; 5 is the extension).
    pub fn number(self) -> u32 {
        match self {
            CaseId::NetworkSize => 1,
            CaseId::ServiceRate => 2,
            CaseId::Estimators => 3,
            CaseId::Lp => 4,
            CaseId::Bandwidth => 5,
        }
    }

    /// Human-readable description matching the paper table captions.
    pub fn describe(self) -> &'static str {
        match self {
            CaseId::NetworkSize => "Scaling the RP by network size",
            CaseId::ServiceRate => "Scaling the RP by resource service rate",
            CaseId::Estimators => "Scaling the RMS by number of status estimators",
            CaseId::Lp => "Scaling the RMS by L_p",
            CaseId::Bandwidth => "Scaling the network by link bandwidth (1/k capacity)",
        }
    }

    /// The scaling case with metadata and enabler space.
    pub fn case(self) -> ScalingCase {
        ScalingCase::new(self)
    }
}

/// The discrete grid of enabler values the annealer may pick from.
///
/// Mirrors Tables 2–5: all cases tune the status-update interval and the
/// network link delay; Cases 1–3 also tune the neighborhood set size
/// (`L_p`), while Case 4 — where `L_p` is the *scaling variable* — tunes
/// the resource-volunteering interval instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnablerSpace {
    /// Allowed status-update intervals τ (ticks).
    pub update_interval: Vec<u64>,
    /// Allowed neighborhood sizes; empty = fixed (Case 4).
    pub neighborhood: Vec<usize>,
    /// Allowed link-delay multipliers.
    pub link_delay_factor: Vec<f64>,
    /// Allowed volunteering intervals (ticks); empty = fixed default.
    pub volunteer_interval: Vec<u64>,
}

impl EnablerSpace {
    /// A point in the space, as indices into each non-empty dimension.
    pub fn dims(&self) -> usize {
        4
    }

    /// Grid size along dimension `d` (1 when the dimension is fixed).
    pub fn len(&self, d: usize) -> usize {
        match d {
            0 => self.update_interval.len().max(1),
            1 => self.neighborhood.len().max(1),
            2 => self.link_delay_factor.len().max(1),
            3 => self.volunteer_interval.len().max(1),
            _ => panic!("enabler space has 4 dimensions"),
        }
    }

    /// Total number of grid points.
    pub fn cardinality(&self) -> usize {
        (0..self.dims()).map(|d| self.len(d)).product()
    }

    /// Materializes index vector `idx` into a concrete [`Enablers`],
    /// keeping `base`'s value along any fixed dimension.
    pub fn realize(&self, idx: &[usize; 4], base: &Enablers) -> Enablers {
        Enablers {
            update_interval: *self
                .update_interval
                .get(idx[0])
                .unwrap_or(&base.update_interval),
            neighborhood: *self.neighborhood.get(idx[1]).unwrap_or(&base.neighborhood),
            link_delay_factor: *self
                .link_delay_factor
                .get(idx[2])
                .unwrap_or(&base.link_delay_factor),
            volunteer_interval: *self
                .volunteer_interval
                .get(idx[3])
                .unwrap_or(&base.volunteer_interval),
        }
    }

    /// The index of the grid value closest to `base` in each dimension —
    /// the annealer's starting state.
    pub fn start_index(&self, base: &Enablers) -> [usize; 4] {
        fn nearest<T: Copy, F: Fn(T) -> f64>(grid: &[T], target: f64, f: F) -> usize {
            if grid.is_empty() {
                return 0;
            }
            grid.iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| {
                    (f(a) - target)
                        .abs()
                        .partial_cmp(&(f(b) - target).abs())
                        .unwrap()
                })
                .map(|(i, _)| i)
                .unwrap()
        }
        [
            nearest(&self.update_interval, base.update_interval as f64, |v| {
                v as f64
            }),
            nearest(&self.neighborhood, base.neighborhood as f64, |v| v as f64),
            nearest(&self.link_delay_factor, base.link_delay_factor, |v| v),
            nearest(
                &self.volunteer_interval,
                base.volunteer_interval as f64,
                |v| v as f64,
            ),
        ]
    }
}

/// One scaling strategy: identity plus its enabler space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingCase {
    /// Which case this is.
    pub id: CaseId,
    /// The tunable enabler grid.
    pub enabler_space: EnablerSpace,
}

impl ScalingCase {
    /// Builds the paper's enabler space for `id`.
    pub fn new(id: CaseId) -> Self {
        let update_interval = vec![50, 100, 200, 400, 800, 1600, 3200];
        let link_delay_factor = vec![0.5, 1.0, 2.0];
        let neighborhood = vec![1, 2, 3, 4, 6, 8];
        let volunteer_interval = vec![100, 200, 400, 800, 1600, 3200];
        let enabler_space = match id {
            // Tables 2–4: update interval, neighborhood size, link delay.
            CaseId::NetworkSize | CaseId::ServiceRate | CaseId::Estimators => EnablerSpace {
                update_interval,
                neighborhood,
                link_delay_factor,
                volunteer_interval: Vec::new(),
            },
            // Table 5: update interval, volunteering interval, link delay;
            // L_p is the scaling variable and not tunable.
            CaseId::Lp => EnablerSpace {
                update_interval,
                neighborhood: Vec::new(),
                link_delay_factor,
                volunteer_interval,
            },
            // Case 5: link capacity is the scaling variable; the tunables
            // mirror Tables 2–4 (the RMS can trade update traffic and
            // neighborhood reach against the shrinking bandwidth).
            CaseId::Bandwidth => EnablerSpace {
                update_interval,
                neighborhood,
                link_delay_factor,
                volunteer_interval: Vec::new(),
            },
        };
        ScalingCase { id, enabler_space }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_numbers_and_descriptions() {
        assert_eq!(CaseId::NetworkSize.number(), 1);
        assert_eq!(CaseId::Lp.number(), 4);
        assert_eq!(CaseId::Bandwidth.number(), 5);
        for c in CaseId::WITH_BANDWIDTH {
            assert!(!c.describe().is_empty());
        }
        // The paper matrix stays exactly the four published cases.
        assert_eq!(CaseId::ALL.len(), 4);
        assert!(!CaseId::ALL.contains(&CaseId::Bandwidth));
        assert_eq!(CaseId::WITH_BANDWIDTH[4], CaseId::Bandwidth);
    }

    #[test]
    fn case5_tunes_the_table2_dimensions() {
        let c = CaseId::Bandwidth.case();
        assert!(!c.enabler_space.update_interval.is_empty());
        assert!(!c.enabler_space.neighborhood.is_empty());
        assert!(c.enabler_space.volunteer_interval.is_empty());
    }

    #[test]
    fn case4_fixes_neighborhood_and_tunes_volunteering() {
        let c = CaseId::Lp.case();
        assert!(c.enabler_space.neighborhood.is_empty());
        assert!(!c.enabler_space.volunteer_interval.is_empty());
        let c1 = CaseId::NetworkSize.case();
        assert!(!c1.enabler_space.neighborhood.is_empty());
        assert!(c1.enabler_space.volunteer_interval.is_empty());
    }

    #[test]
    fn realize_respects_fixed_dimensions() {
        let c = CaseId::Lp.case();
        let base = Enablers {
            neighborhood: 5,
            ..Enablers::default()
        };
        let e = c.enabler_space.realize(&[0, 3, 0, 0], &base);
        assert_eq!(e.neighborhood, 5, "fixed dimension keeps the base value");
        assert_eq!(e.update_interval, 50);
        assert_eq!(e.volunteer_interval, 100);
    }

    #[test]
    fn cardinality_counts_grid_points() {
        let c = CaseId::NetworkSize.case();
        assert_eq!(c.enabler_space.cardinality(), 7 * 6 * 3);
        let c4 = CaseId::Lp.case();
        assert_eq!(c4.enabler_space.cardinality(), 7 * 3 * 6);
    }

    #[test]
    fn start_index_picks_nearest() {
        let c = CaseId::NetworkSize.case();
        let base = Enablers {
            update_interval: 500,
            neighborhood: 3,
            link_delay_factor: 1.0,
            volunteer_interval: 800,
        };
        let idx = c.enabler_space.start_index(&base);
        assert_eq!(c.enabler_space.update_interval[idx[0]], 400);
        assert_eq!(c.enabler_space.neighborhood[idx[1]], 3);
        assert_eq!(c.enabler_space.link_delay_factor[idx[2]], 1.0);
        // Fixed dimension defaults to index 0.
        assert_eq!(idx[3], 0);
    }

    #[test]
    fn realized_enablers_always_valid() {
        for id in CaseId::ALL {
            let c = id.case();
            let base = Enablers::default();
            for i0 in 0..c.enabler_space.len(0) {
                for i2 in 0..c.enabler_space.len(2) {
                    let e = c.enabler_space.realize(&[i0, 0, i2, 0], &base);
                    assert!(e.update_interval > 0);
                    assert!(e.link_delay_factor > 0.0);
                    assert!(e.volunteer_interval > 0);
                }
            }
        }
    }
}
