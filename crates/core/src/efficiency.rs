//! The managed-system performance model and the isoefficiency metric
//! (paper §2.2–2.3).
//!
//! At scale `k`, let `F(k)` be the useful work delivered by the managee
//! (RP), `G(k)` the overhead of the manager (RMS), and `H(k)` the RP's own
//! overhead. Overall efficiency:
//!
//! ```text
//! E(k) = F(k) / (F(k) + G(k) + H(k))
//! ```
//!
//! Writing `W = F(k0)`, `O_RMS = G(k0)`, `O_RP = H(k0)` and the
//! normalizations `f(k) = F(k)/W`, `g(k) = G(k)/O_RMS`, `h(k) = H(k)/O_RP`,
//! the isoefficiency requirement `E(k) = E(k0) = 1/α` reduces to the
//! paper's Eq. (1):
//!
//! ```text
//! f(k) = c·g(k) + c'·h(k),   c = O_RMS/((α−1)W),   c' = O_RP/((α−1)W)
//! ```
//!
//! and, since the RP always incurs *some* cost, the scalability condition
//! of Eq. (2): `f(k) > c·g(k)` — useful work must grow at least as fast as
//! (scaled) RMS overhead. **The scalability of the RMS at scale `k` is the
//! slope of the minimum-cost `G(k)`** (paper's Definition, §2.2).

use serde::{Deserialize, Serialize};

/// Raw `(F, G, H)` measurements normalized against the base scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalizedPoint {
    /// Scale factor `k`.
    pub k: f64,
    /// `f(k) = F(k)/F(k0)`.
    pub f: f64,
    /// `g(k) = G(k)/G(k0)`.
    pub g: f64,
    /// `h(k) = H(k)/H(k0)` (0 when `H(k0) = 0`).
    pub h: f64,
}

/// The isoefficiency model anchored at a base configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsoefficiencyModel {
    /// Target efficiency `E(k0) = 1/α`, in `(0, 1)`.
    pub e0: f64,
    /// Base useful work `W = F(k0)`.
    pub w: f64,
    /// Base RMS overhead `O_RMS = G(k0)`.
    pub o_rms: f64,
    /// Base RP overhead `O_RP = H(k0)`.
    pub o_rp: f64,
}

impl IsoefficiencyModel {
    /// Builds the model from base-scale measurements and the chosen target
    /// efficiency. Panics unless `0 < e0 < 1`, `w > 0`, and overheads are
    /// nonnegative.
    pub fn new(e0: f64, w: f64, o_rms: f64, o_rp: f64) -> Self {
        assert!(e0 > 0.0 && e0 < 1.0, "E0 must be in (0,1), got {e0}");
        assert!(w > 0.0, "base useful work must be positive");
        assert!(o_rms >= 0.0 && o_rp >= 0.0);
        IsoefficiencyModel { e0, w, o_rms, o_rp }
    }

    /// `α = 1/E0`.
    pub fn alpha(&self) -> f64 {
        1.0 / self.e0
    }

    /// The constant `c = O_RMS / ((α−1) W)` of Eq. (1).
    pub fn c(&self) -> f64 {
        self.o_rms / ((self.alpha() - 1.0) * self.w)
    }

    /// The constant `c' = O_RP / ((α−1) W)` of Eq. (1).
    pub fn c_prime(&self) -> f64 {
        self.o_rp / ((self.alpha() - 1.0) * self.w)
    }

    /// Efficiency from raw measurements: `E = F/(F+G+H)`; 0 if `F ≤ 0`.
    pub fn efficiency(f_raw: f64, g_raw: f64, h_raw: f64) -> f64 {
        if f_raw <= 0.0 {
            0.0
        } else {
            f_raw / (f_raw + g_raw + h_raw)
        }
    }

    /// Normalizes a raw `(F, G, H)` measurement against the base.
    pub fn normalize(&self, k: f64, f_raw: f64, g_raw: f64, h_raw: f64) -> NormalizedPoint {
        NormalizedPoint {
            k,
            f: f_raw / self.w,
            g: if self.o_rms > 0.0 {
                g_raw / self.o_rms
            } else {
                0.0
            },
            h: if self.o_rp > 0.0 {
                h_raw / self.o_rp
            } else {
                0.0
            },
        }
    }

    /// Residual of Eq. (1): `f(k) − c·g(k) − c'·h(k)`. Zero (within
    /// measurement noise) when the scaled system is exactly isoefficient
    /// with the base.
    pub fn eq1_residual(&self, p: &NormalizedPoint) -> f64 {
        p.f - self.c() * p.g - self.c_prime() * p.h
    }

    /// The scalability condition of Eq. (2): `f(k) > c·g(k)`.
    pub fn condition_holds(&self, p: &NormalizedPoint) -> bool {
        p.f > self.c() * p.g
    }

    /// The `g(k)` that would keep the system exactly isoefficient for a
    /// given `f(k)` and `h(k)` — the "budget" the RMS overhead must stay
    /// under.
    pub fn isoefficient_g(&self, f: f64, h: f64) -> f64 {
        (f - self.c_prime() * h) / self.c()
    }
}

/// Discrete slope series of a curve `y(k)`: `(y_i − y_{i−1}) / (k_i −
/// k_{i−1})` for consecutive points. This is the paper's scalability
/// measure applied to `G(k)` ("the scalability of the RMS at scale `k` is
/// measured by the slope of `G(k)`").
pub fn slopes(points: &[(f64, f64)]) -> Vec<f64> {
    points
        .windows(2)
        .map(|w| {
            let dk = w[1].0 - w[0].0;
            debug_assert!(dk != 0.0, "duplicate scale factors");
            (w[1].1 - w[0].1) / dk
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> IsoefficiencyModel {
        // E0 = 0.4 → α = 2.5; W = 1000, O_RMS = 1200, O_RP = 300.
        // Check: E(k0) = 1000/(1000+1200+300) = 0.4 exactly.
        IsoefficiencyModel::new(0.4, 1000.0, 1200.0, 300.0)
    }

    #[test]
    fn base_point_is_exactly_isoefficient() {
        let m = model();
        let p = m.normalize(1.0, 1000.0, 1200.0, 300.0);
        assert_eq!((p.f, p.g, p.h), (1.0, 1.0, 1.0));
        assert!(m.eq1_residual(&p).abs() < 1e-12);
        assert_eq!(IsoefficiencyModel::efficiency(1000.0, 1200.0, 300.0), 0.4);
    }

    #[test]
    fn constants_match_derivation() {
        let m = model();
        // α − 1 = 1.5; c = 1200/(1.5·1000) = 0.8; c' = 300/1500 = 0.2.
        assert!((m.alpha() - 2.5).abs() < 1e-12);
        assert!((m.c() - 0.8).abs() < 1e-12);
        assert!((m.c_prime() - 0.2).abs() < 1e-12);
        // Eq. (1) with these constants: f = 0.8 g + 0.2 h holds at base.
        assert!((0.8_f64 + 0.2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn condition_detects_unscalable_growth() {
        let m = model();
        // Work doubled but overhead tripled: 2 > 0.8·3 = 2.4 is false.
        let bad = m.normalize(2.0, 2000.0, 3600.0, 600.0);
        assert!(!m.condition_holds(&bad));
        // Overhead only doubled: 2 > 1.6 holds.
        let good = m.normalize(2.0, 2000.0, 2400.0, 600.0);
        assert!(m.condition_holds(&good));
    }

    #[test]
    fn isoefficient_budget_roundtrip() {
        let m = model();
        let g_budget = m.isoefficient_g(2.0, 2.0);
        // f = c·g + c'·h exactly at the budget.
        assert!((2.0 - (m.c() * g_budget + m.c_prime() * 2.0)).abs() < 1e-12);
    }

    #[test]
    fn efficiency_via_eq1_matches_direct() {
        let m = model();
        // Construct a scaled point exactly on the Eq.(1) plane and verify
        // the raw efficiency equals E0.
        let f = 3.0;
        let h = 2.0;
        let g = m.isoefficient_g(f, h);
        let e = IsoefficiencyModel::efficiency(f * m.w, g * m.o_rms, h * m.o_rp);
        assert!(
            (e - m.e0).abs() < 1e-12,
            "derivation must be consistent: {e}"
        );
    }

    #[test]
    fn zero_base_overheads_normalize_to_zero() {
        let m = IsoefficiencyModel::new(0.5, 10.0, 0.0, 0.0);
        let p = m.normalize(2.0, 20.0, 5.0, 5.0);
        assert_eq!(p.g, 0.0);
        assert_eq!(p.h, 0.0);
    }

    #[test]
    fn efficiency_guards() {
        assert_eq!(IsoefficiencyModel::efficiency(0.0, 10.0, 1.0), 0.0);
        assert_eq!(IsoefficiencyModel::efficiency(-5.0, 10.0, 1.0), 0.0);
        assert_eq!(IsoefficiencyModel::efficiency(10.0, 0.0, 0.0), 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_e0() {
        IsoefficiencyModel::new(1.5, 1.0, 1.0, 1.0);
    }

    #[test]
    fn slope_series() {
        let pts = [(1.0, 10.0), (2.0, 14.0), (4.0, 14.0), (5.0, 8.0)];
        let s = slopes(&pts);
        assert_eq!(s, vec![4.0, 0.0, -6.0]);
        assert!(slopes(&pts[..1]).is_empty());
    }
}
