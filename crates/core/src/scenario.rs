//! Base-scenario construction: one [`GridConfig`] per `(RMS model, scaling
//! case, scale factor)`.
//!
//! Encodes the experimental setup of §3.4 and Tables 2–5:
//!
//! * **Case 1** (Table 2) scales the network size — `sizeof[RMS] +
//!   sizeof[RP]` — with "RMS increases proportionately with RP" for the
//!   distributed models; CENTRAL keeps its single scheduler at all scales.
//! * **Case 2** (Table 3) scales the resource service rate at fixed
//!   network size (the paper uses 1000 nodes).
//! * **Case 3** (Table 4) scales the number of status estimators at fixed
//!   network size.
//! * **Case 4** (Table 5) scales `L_p` at fixed network size.
//!
//! "For all experiments the workload was scaled in the same proportion as
//! the scaling variable": arrival rates are derived from a target RP
//! utilization so that cases 1–2 hold utilization constant while cases 3–4
//! (fixed RP) see utilization grow with `k`.

use crate::cases::CaseId;
use gridscale_desim::SimTime;
use gridscale_gridsim::GridConfig;
use gridscale_rms::RmsKind;
use serde::{Deserialize, Serialize};

/// Experiment sizing preset.
///
/// `Paper` reproduces the paper's 1000-node fixed networks; `Quick` shrinks
/// everything ~3× for CI-speed runs with the same qualitative shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Preset {
    /// ~3× smaller networks and shorter horizons; minutes-scale sweeps.
    Quick,
    /// The paper's sizes (1000-node fixed networks, k up to 6).
    Paper,
}

impl Preset {
    /// Base network size for Case 1 (scaled by `k`).
    pub fn case1_base_nodes(self) -> usize {
        match self {
            Preset::Quick => 60,
            Preset::Paper => 170,
        }
    }

    /// Fixed network size for Cases 2–4 (the paper's "Network size is 1000
    /// nodes").
    pub fn fixed_nodes(self) -> usize {
        match self {
            Preset::Quick => 300,
            Preset::Paper => 1000,
        }
    }

    /// Arrival-generation window.
    pub fn duration(self) -> SimTime {
        match self {
            Preset::Quick => SimTime::from_ticks(30_000),
            Preset::Paper => SimTime::from_ticks(60_000),
        }
    }

    /// Post-arrival drain window.
    pub fn drain(self) -> SimTime {
        match self {
            Preset::Quick => SimTime::from_ticks(25_000),
            Preset::Paper => SimTime::from_ticks(40_000),
        }
    }

    /// Resources per cluster for distributed RMSs (one scheduler per that
    /// many resources).
    pub fn cluster_size(self) -> usize {
        16
    }

    /// Base estimator count for Case 3 (scaled by `k`).
    pub fn case3_base_estimators(self) -> usize {
        match self {
            Preset::Quick => 2,
            Preset::Paper => 4,
        }
    }

    /// Base `L_p` for Case 4 (scaled by `k`).
    pub fn case4_base_lp(self) -> usize {
        1
    }

    /// Target RP utilization where workload and capacity scale together
    /// (Cases 1–2 at every `k`; Cases 3–4 at `k = 1` per unit scale).
    pub fn utilization(self, case: CaseId) -> f64 {
        match case {
            CaseId::NetworkSize | CaseId::ServiceRate => 0.62,
            // Fixed RP: utilization grows ∝ k, reaching ~0.66 at k = 6.
            CaseId::Estimators | CaseId::Lp => 0.11,
            // Fixed RP *and* fixed workload: the scaling variable is the
            // shrinking link capacity, so utilization stays put while the
            // network share of H(k) grows.
            CaseId::Bandwidth => 0.45,
        }
    }
}

/// Expected number of resources a [`GridConfig`] will map, given its node
/// budget — used to derive arrival rates before the topology is built.
/// Mirrors [`gridscale_topology::GridMap::build`]'s rounding.
pub fn expected_resources(
    nodes: usize,
    schedulers: usize,
    estimators: usize,
    fraction: f64,
) -> usize {
    let remaining = nodes.saturating_sub(schedulers + estimators);
    ((remaining as f64) * fraction).ceil() as usize
}

/// Number of schedulers for a model managing `nodes` total nodes.
fn scheduler_count(kind: RmsKind, nodes: usize, preset: Preset) -> usize {
    if kind.is_centralized() {
        1
    } else {
        (nodes / preset.cluster_size()).max(2)
    }
}

/// Builds the full [`GridConfig`] for `(kind, case, k)` under `preset`.
///
/// `k` is the integer scale factor (the paper plots `k = 1..6`). The same
/// `seed` yields the same topology/workload/simulation stream at every
/// enabler setting, so annealing compares like with like.
pub fn config_for(kind: RmsKind, case: CaseId, k: u32, preset: Preset, seed: u64) -> GridConfig {
    assert!(k >= 1, "scale factors start at 1");
    let kf = k as f64;
    let mut cfg = GridConfig {
        seed,
        topology: gridscale_gridsim::TopologySpec::BarabasiAlbert { m: 2 },
        drain: preset.drain(),
        ..GridConfig::default()
    };
    cfg.workload.duration = preset.duration();

    // Scaling variables per case (Tables 2–5).
    let (nodes, service_rate, estimators, lp_scaled) = match case {
        CaseId::NetworkSize => (preset.case1_base_nodes() * k as usize, 1.0, 0, None),
        CaseId::ServiceRate => (preset.fixed_nodes(), kf, 0, None),
        CaseId::Estimators => (
            preset.fixed_nodes(),
            1.0,
            preset.case3_base_estimators() * k as usize,
            None,
        ),
        CaseId::Lp => (
            preset.fixed_nodes(),
            1.0,
            0,
            Some(preset.case4_base_lp() * k as usize),
        ),
        CaseId::Bandwidth => (preset.fixed_nodes(), 1.0, 0, None),
    };

    cfg.nodes = nodes;
    cfg.service_rate = service_rate;
    cfg.estimators = estimators;
    cfg.schedulers = scheduler_count(kind, nodes, preset);
    if let Some(lp) = lp_scaled {
        // In Case 4, L_p is the scaling variable, not an enabler.
        cfg.enablers.neighborhood = lp;
    }
    if case == CaseId::Bandwidth {
        // Case 5: link capacity is the scaling variable — every link
        // keeps its topology-assigned bandwidth divided by k.
        cfg.bandwidth.enabled = true;
        cfg.bandwidth.capacity_scale = 1.0 / kf;
    }

    // Workload ∝ the scaling variable: derive the arrival rate from the
    // scaled capacity (Cases 1–2) or scale it directly on the fixed RP
    // (Cases 3–4).
    let resources = expected_resources(nodes, cfg.schedulers, estimators, cfg.resource_fraction);
    let mean_demand = cfg.workload.exec_time.mean();
    let capacity = resources as f64 * service_rate / mean_demand;
    let rate = match case {
        CaseId::NetworkSize | CaseId::ServiceRate | CaseId::Bandwidth => {
            preset.utilization(case) * capacity
        }
        CaseId::Estimators | CaseId::Lp => preset.utilization(case) * capacity * kf,
    };
    cfg.workload.arrival_rate = rate;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case1_scales_network_and_rms_proportionally() {
        let c1 = config_for(RmsKind::Lowest, CaseId::NetworkSize, 1, Preset::Quick, 1);
        let c3 = config_for(RmsKind::Lowest, CaseId::NetworkSize, 3, Preset::Quick, 1);
        assert_eq!(c3.nodes, 3 * c1.nodes);
        assert!(
            c3.schedulers >= 2 * c1.schedulers,
            "RMS grows with RP: {} vs {}",
            c3.schedulers,
            c1.schedulers
        );
        // Workload ∝ k (via capacity).
        let ratio = c3.workload.arrival_rate / c1.workload.arrival_rate;
        assert!((2.5..3.5).contains(&ratio), "rate ratio {ratio}");
    }

    #[test]
    fn central_keeps_one_scheduler_at_all_scales() {
        for k in 1..=6 {
            let c = config_for(RmsKind::Central, CaseId::NetworkSize, k, Preset::Quick, 1);
            assert_eq!(c.schedulers, 1);
        }
    }

    #[test]
    fn case2_scales_service_rate_and_workload_only() {
        let c1 = config_for(RmsKind::Lowest, CaseId::ServiceRate, 1, Preset::Quick, 1);
        let c4 = config_for(RmsKind::Lowest, CaseId::ServiceRate, 4, Preset::Quick, 1);
        assert_eq!(c1.nodes, c4.nodes, "network fixed");
        assert_eq!(c1.schedulers, c4.schedulers);
        assert_eq!(c4.service_rate, 4.0);
        let ratio = c4.workload.arrival_rate / c1.workload.arrival_rate;
        assert!((3.9..4.1).contains(&ratio), "workload ∝ k: {ratio}");
    }

    #[test]
    fn case3_scales_estimators_on_fixed_rp() {
        let c1 = config_for(RmsKind::Auction, CaseId::Estimators, 1, Preset::Quick, 1);
        let c5 = config_for(RmsKind::Auction, CaseId::Estimators, 5, Preset::Quick, 1);
        assert_eq!(c1.nodes, c5.nodes);
        assert_eq!(c5.estimators, 5 * c1.estimators);
        assert_eq!(c1.service_rate, c5.service_rate);
        let ratio = c5.workload.arrival_rate / c1.workload.arrival_rate;
        assert!((4.5..5.5).contains(&ratio), "workload ∝ k: {ratio}");
    }

    #[test]
    fn case4_scales_lp_as_variable() {
        let c1 = config_for(RmsKind::Reserve, CaseId::Lp, 1, Preset::Quick, 1);
        let c6 = config_for(RmsKind::Reserve, CaseId::Lp, 6, Preset::Quick, 1);
        assert_eq!(c1.enablers.neighborhood, 1);
        assert_eq!(c6.enablers.neighborhood, 6);
        assert_eq!(c1.nodes, c6.nodes);
    }

    #[test]
    fn configs_validate_across_grid() {
        for kind in RmsKind::ALL {
            for case in CaseId::WITH_BANDWIDTH {
                for k in [1u32, 3, 6] {
                    let c = config_for(kind, case, k, Preset::Quick, 7);
                    assert_eq!(c.validate(), Ok(()), "{kind} {case:?} k={k}");
                }
            }
        }
    }

    #[test]
    fn case5_scales_capacity_down_at_fixed_everything_else() {
        let c1 = config_for(RmsKind::Lowest, CaseId::Bandwidth, 1, Preset::Quick, 1);
        let c4 = config_for(RmsKind::Lowest, CaseId::Bandwidth, 4, Preset::Quick, 1);
        assert!(c1.bandwidth.enabled && c4.bandwidth.enabled);
        assert_eq!(c1.bandwidth.capacity_scale, 1.0);
        assert_eq!(c4.bandwidth.capacity_scale, 0.25);
        assert_eq!(c1.nodes, c4.nodes, "network fixed");
        assert_eq!(c1.schedulers, c4.schedulers);
        assert_eq!(c1.workload.arrival_rate, c4.workload.arrival_rate);
        // The paper's four cases never turn the bandwidth model on.
        for case in CaseId::ALL {
            let c = config_for(RmsKind::Lowest, case, 3, Preset::Quick, 1);
            assert!(!c.bandwidth.enabled, "{case:?} must keep the legacy model");
        }
    }

    #[test]
    fn paper_preset_matches_paper_sizes() {
        let c = config_for(RmsKind::Lowest, CaseId::ServiceRate, 1, Preset::Paper, 1);
        assert_eq!(c.nodes, 1000, "paper: 'Network size is 1000 nodes'");
        let c6 = config_for(RmsKind::Lowest, CaseId::NetworkSize, 6, Preset::Paper, 1);
        assert_eq!(c6.nodes, 1020, "k=6 reaches ~1000 nodes");
    }

    #[test]
    fn utilization_stays_feasible_for_fixed_rp_cases() {
        // At k = 6 the fixed RP must still be below saturation.
        for case in [CaseId::Estimators, CaseId::Lp] {
            let c = config_for(RmsKind::Lowest, case, 6, Preset::Quick, 1);
            let res = expected_resources(c.nodes, c.schedulers, c.estimators, c.resource_fraction);
            let cap = res as f64 * c.service_rate / c.workload.exec_time.mean();
            let util = c.workload.arrival_rate / cap;
            assert!(util < 0.8, "{case:?}: k=6 utilization {util}");
        }
    }

    #[test]
    fn expected_resources_rounding() {
        assert_eq!(expected_resources(100, 5, 0, 0.85), 81); // ceil(95·0.85) = ceil(80.75)
        assert_eq!(expected_resources(10, 12, 0, 0.85), 0, "saturating");
    }
}
