//! The Jogalekar–Woodside scalability metric — the paper's main
//! quantitative-direct comparison point (its reference \[14\]).
//!
//! Jogalekar & Woodside (*Evaluating the Scalability of Distributed
//! Systems*, IEEE TPDS 11(6), 2000) measure the **whole system's**
//! scalability through its *productivity*
//!
//! ```text
//! P(k) = λ(k) · f(k) / C(k)
//! ```
//!
//! where `λ(k)` is delivered throughput, `f(k)` a value-per-job function
//! that decays with response time, and `C(k)` the running cost of the
//! configuration. The scalability from scale `k1` to `k2` is the
//! productivity ratio `ψ = P(k2)/P(k1)`; a system is scalable over a path
//! if `ψ` stays near (or above) 1.
//!
//! The paper argues this whole-system view cannot isolate *which
//! component* limits scalability — its own metric targets the RMS alone by
//! tracking minimum overhead at constant efficiency. Implementing both
//! makes that §4 comparison executable: see
//! `examples/compare_metrics.rs`.

use crate::measure::ScalabilityCurve;
use gridscale_gridsim::SimReport;
use serde::{Deserialize, Serialize};

/// Parameters of the productivity model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProductivityModel {
    /// Response-time target `T`; the per-job value is `1/(1 + resp/T)`
    /// (Jogalekar–Woodside use any decreasing value curve — this is their
    /// worked example's hyperbolic form).
    pub target_response: f64,
    /// Cost per network node per tick (machines + links dominate Grid
    /// running cost; any constant cancels in ψ ratios).
    pub cost_per_node: f64,
    /// ψ threshold under which the step is called unscalable (their paper
    /// suggests tolerating small degradations; 0.8 is customary).
    pub psi_threshold: f64,
}

impl Default for ProductivityModel {
    fn default() -> Self {
        ProductivityModel {
            target_response: 2_000.0,
            cost_per_node: 1.0,
            psi_threshold: 0.8,
        }
    }
}

impl ProductivityModel {
    /// Per-job value `f` for a mean response time.
    pub fn value(&self, mean_response: f64) -> f64 {
        1.0 / (1.0 + mean_response.max(0.0) / self.target_response)
    }

    /// Productivity `P = λ · f / C` of one measured report.
    pub fn productivity(&self, report: &SimReport) -> f64 {
        let lambda = report.throughput;
        let f = self.value(report.mean_response);
        let c = self.cost_per_node * report.nodes.max(1) as f64;
        lambda * f / c
    }

    /// Scalability `ψ(k1 → k2) = P(k2)/P(k1)`.
    pub fn psi(&self, base: &SimReport, scaled: &SimReport) -> f64 {
        let p1 = self.productivity(base);
        if p1 <= 0.0 {
            return 0.0;
        }
        self.productivity(scaled) / p1
    }

    /// Evaluates a measured curve: `(k, P(k), ψ(k0 → k))` per point.
    pub fn evaluate(&self, curve: &ScalabilityCurve) -> Vec<PsiPoint> {
        let Some(base) = curve.points.first() else {
            return Vec::new();
        };
        let p0 = self.productivity(&base.report).max(1e-300);
        curve
            .points
            .iter()
            .map(|p| {
                let prod = self.productivity(&p.report);
                PsiPoint {
                    k: p.k,
                    productivity: prod,
                    psi: prod / p0,
                }
            })
            .collect()
    }

    /// Largest `k` whose cumulative ψ stays at or above the threshold
    /// (`None` if the first scaled point already violates it).
    pub fn scalable_through(&self, curve: &ScalabilityCurve) -> Option<u32> {
        let pts = self.evaluate(curve);
        let mut through = None;
        for p in pts.iter().skip(1) {
            if p.psi >= self.psi_threshold {
                through = Some(p.k);
            } else {
                break;
            }
        }
        through
    }
}

/// One evaluated point of the Jogalekar–Woodside curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PsiPoint {
    /// Scale factor.
    pub k: u32,
    /// Productivity `P(k)`.
    pub productivity: f64,
    /// `ψ(k0 → k) = P(k)/P(k0)`.
    pub psi: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::CaseId;
    use crate::measure::CurvePoint;
    use gridscale_gridsim::Enablers;
    use gridscale_rms::RmsKind;

    fn report(throughput: f64, resp: f64, nodes: usize) -> SimReport {
        SimReport {
            throughput,
            mean_response: resp,
            nodes,
            ..SimReport::default()
        }
    }

    fn point(k: u32, r: SimReport) -> CurvePoint {
        CurvePoint {
            k,
            g: 1.0,
            f: 1.0,
            h: 0.0,
            efficiency: 0.4,
            g_ci: 0.0,
            f_ci: 0.0,
            h_ci: 0.0,
            efficiency_ci: 0.0,
            feasible: true,
            enablers: Enablers::default(),
            evaluations: 1,
            replications: 1,
            report: r,
        }
    }

    fn curve(points: Vec<CurvePoint>) -> ScalabilityCurve {
        ScalabilityCurve {
            kind: RmsKind::Central,
            case: CaseId::NetworkSize,
            e0: 0.4,
            points,
        }
    }

    #[test]
    fn value_decays_with_response() {
        let m = ProductivityModel::default();
        assert!(m.value(0.0) > m.value(1_000.0));
        assert!(m.value(1_000.0) > m.value(10_000.0));
        assert!((m.value(m.target_response) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn productivity_scales_as_expected() {
        let m = ProductivityModel::default();
        // Double throughput at double cost, same response ⇒ same P.
        let a = report(0.1, 1_000.0, 100);
        let b = report(0.2, 1_000.0, 200);
        assert!((m.productivity(&a) - m.productivity(&b)).abs() < 1e-12);
        // Slower responses at the same throughput/cost ⇒ lower P.
        let c = report(0.1, 8_000.0, 100);
        assert!(m.productivity(&c) < m.productivity(&a));
    }

    #[test]
    fn psi_of_identity_is_one() {
        let m = ProductivityModel::default();
        let a = report(0.1, 1_000.0, 100);
        assert!((m.psi(&a, &a.clone()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ideal_linear_scaling_keeps_psi_at_one() {
        let m = ProductivityModel::default();
        let c = curve(vec![
            point(1, report(0.1, 1_000.0, 100)),
            point(2, report(0.2, 1_000.0, 200)),
            point(4, report(0.4, 1_000.0, 400)),
        ]);
        let pts = m.evaluate(&c);
        assert!(pts.iter().all(|p| (p.psi - 1.0).abs() < 1e-9));
        assert_eq!(m.scalable_through(&c), Some(4));
    }

    #[test]
    fn saturation_collapses_psi() {
        let m = ProductivityModel::default();
        // Throughput stops following cost, response explodes — the CENTRAL
        // saturation signature.
        let c = curve(vec![
            point(1, report(0.10, 1_500.0, 100)),
            point(2, report(0.19, 1_900.0, 200)),
            point(4, report(0.20, 20_000.0, 400)),
        ]);
        let pts = m.evaluate(&c);
        assert!(pts[1].psi > 0.8, "k=2 still fine: {}", pts[1].psi);
        assert!(pts[2].psi < 0.3, "k=4 collapse: {}", pts[2].psi);
        assert_eq!(m.scalable_through(&c), Some(2));
    }

    #[test]
    fn zero_productivity_base_is_guarded() {
        let m = ProductivityModel::default();
        let dead = report(0.0, 1_000.0, 100);
        let live = report(0.1, 1_000.0, 100);
        assert_eq!(m.psi(&dead, &live), 0.0);
    }
}
