//! Replication statistics: mean, sample standard deviation, and
//! two-sided 95% Student-t confidence half-widths.
//!
//! Replicated measurement (ROADMAP item 5) reports every `G/F/H/E`
//! verdict with a confidence interval so near-zero Eq. (2) margins can
//! be told apart from annealing noise. The t critical values are a
//! hand-rolled table (no stats crate): exact entries for 1–30 degrees
//! of freedom, the standard coarser grid beyond, and the normal limit
//! `z₀.₉₇₅ = 1.960` past 120 — more than enough resolution when the
//! replication counts of interest are 4–64.
//!
//! Everything here is a sequential fold over an ordered slice, so the
//! statistics inherit the caller's determinism: the same replicate
//! values in the same order give bit-identical means and half-widths on
//! every thread count (D4).

/// Summary statistics of one replicated quantity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepStats {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n − 1` denominator); 0 when `n < 2`.
    pub stddev: f64,
    /// Half-width of the two-sided 95% Student-t confidence interval,
    /// `t₀.₉₇₅,ₙ₋₁ · s / √n`; 0 when `n < 2` (a single sample carries no
    /// dispersion estimate — degenerate by convention, see
    /// `ScalabilityVerdict::confidence`).
    pub ci_half: f64,
}

/// Two-sided 95% Student-t critical value (the 0.975 quantile) for `df`
/// degrees of freedom. `df == 0` (n = 1) returns 0: no interval exists.
pub fn t_critical_975(df: usize) -> f64 {
    // Exact to three decimals for df 1..=30; standard abridged grid
    // beyond (the value is monotonically decreasing, so rounding down to
    // the previous grid entry is conservative — wider intervals).
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => 0.0,
        1..=30 => TABLE[df - 1],
        31..=39 => 2.042,
        40..=59 => 2.021,
        60..=119 => 2.000,
        120..=999 => 1.980,
        _ => 1.960,
    }
}

/// Mean, sample stddev, and 95% CI half-width of `xs`, folded in slice
/// order. Empty input is a caller bug (every point has ≥ 1 replication).
pub fn rep_stats(xs: &[f64]) -> RepStats {
    assert!(!xs.is_empty(), "rep_stats needs at least one sample");
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    if n < 2 {
        return RepStats {
            n,
            mean,
            stddev: 0.0,
            ci_half: 0.0,
        };
    }
    let ss = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>();
    let stddev = (ss / (n - 1) as f64).sqrt();
    let ci_half = t_critical_975(n - 1) * stddev / (n as f64).sqrt();
    RepStats {
        n,
        mean,
        stddev,
        ci_half,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_is_monotone_decreasing_toward_the_normal_limit() {
        let mut prev = f64::INFINITY;
        for df in 1..=200 {
            let t = t_critical_975(df);
            assert!(t <= prev, "df={df}: {t} > {prev}");
            assert!(t >= 1.960, "df={df}: below the normal limit");
            prev = t;
        }
        assert_eq!(t_critical_975(1), 12.706);
        assert_eq!(t_critical_975(3), 3.182);
        assert_eq!(t_critical_975(10_000), 1.960);
        assert_eq!(t_critical_975(0), 0.0);
    }

    #[test]
    fn single_sample_is_degenerate() {
        let s = rep_stats(&[42.0]);
        assert_eq!((s.n, s.mean, s.stddev, s.ci_half), (1, 42.0, 0.0, 0.0));
    }

    #[test]
    fn hand_checked_four_sample_interval() {
        // xs = [2, 4, 4, 6]: mean 4, ss = 8, s = sqrt(8/3),
        // hw = 3.182 · s / 2.
        let s = rep_stats(&[2.0, 4.0, 4.0, 6.0]);
        assert_eq!(s.mean, 4.0);
        let stddev = (8.0f64 / 3.0).sqrt();
        assert_eq!(s.stddev, stddev);
        assert_eq!(s.ci_half, 3.182 * stddev / 2.0);
    }

    #[test]
    fn identical_samples_have_zero_width() {
        let s = rep_stats(&[5.5; 16]);
        assert_eq!(s.mean, 5.5);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci_half, 0.0);
    }

    #[test]
    fn fold_is_order_of_slice_not_of_threads() {
        // Same multiset, different order → different bits are allowed
        // (the fold is defined over the slice order); the caller fixes
        // the order (ascending replication), which is what the
        // thread-invariance tests pin end to end.
        let a = rep_stats(&[1.0, 2.0, 3.0]);
        let b = rep_stats(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }
}
