//! Simulated annealing over discrete parameter grids.
//!
//! The paper (§3.2, Step 3) tunes the scaling enablers with "a simulated
//! annealing search … to determine the set of scaling enablers such that
//! overhead `G(k)` is minimum at scale factor `k`" (citing van Laarhoven
//! \[2\], Ingber \[12\], Bilbro & Snyder \[5\]). This module implements the
//! classic Metropolis/geometric-cooling variant over an abstract discrete
//! state space — plus a *batched speculative* variant ([`anneal_batch`])
//! that evaluates several proposals concurrently per temperature round —
//! and `measure` instantiates them with enabler grids and a penalized
//! overhead objective.

use crate::sweep::EnergyPool;
use gridscale_desim::SimRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// Annealing hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealConfig {
    /// Total candidate evaluations (including the initial state).
    pub iterations: usize,
    /// Initial temperature as a fraction of the initial energy scale; the
    /// effective `T0` is `t0_fraction × max(|E(init)|, 1e-9)`.
    pub t0_fraction: f64,
    /// Geometric cooling factor per iteration, in `(0, 1)`.
    pub cooling: f64,
    /// RNG seed for the proposal chain.
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            iterations: 48,
            t0_fraction: 0.3,
            cooling: 0.9,
            seed: 0x5EED,
        }
    }
}

/// Hyper-parameters of the batched speculative annealer.
///
/// `batch = 1, threads = 1` is the degenerate case that walks the exact
/// same kind of sequential Metropolis chain as [`anneal`]; larger batches
/// speculate that upcoming proposals will be rejected (overwhelmingly the
/// common case once the chain cools) and evaluate them concurrently.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchAnnealConfig {
    /// The sequential-chain hyper-parameters (budget, cooling, seed).
    pub base: AnnealConfig,
    /// Speculative proposals per temperature round.
    pub batch: usize,
    /// Worker threads for concurrent energy evaluation.
    pub threads: usize,
}

impl Default for BatchAnnealConfig {
    fn default() -> Self {
        BatchAnnealConfig {
            base: AnnealConfig::default(),
            batch: 4,
            threads: 1,
        }
    }
}

/// Outcome of one annealing run.
#[derive(Debug, Clone)]
pub struct AnnealResult<S> {
    /// The lowest-energy state visited.
    pub best: S,
    /// Its energy.
    pub best_energy: f64,
    /// Number of *distinct* states evaluated (cache misses) — with an
    /// expensive simulator objective this is the real cost measure.
    pub evaluations: usize,
    /// Energy trajectory of accepted states, for convergence diagnostics.
    pub trajectory: Vec<f64>,
    /// Cumulative candidates consumed (including the initial state) at the
    /// moment each `trajectory` entry was accepted — so diagnostics see the
    /// true cost of each improvement, rejected proposals included.
    pub trajectory_evals: Vec<usize>,
    /// Proposals the Metropolis rule rejected.
    pub rejected: usize,
    /// Sequential evaluation rounds executed. [`anneal`] performs one round
    /// per candidate (`rounds == iterations`); [`anneal_batch`] evaluates up
    /// to `batch` candidates per round, so `rounds` — the wall-clock-
    /// critical quantity when one evaluation is a full simulation — shrinks
    /// by up to the batch factor.
    pub rounds: usize,
}

/// Minimizes `energy` over the state graph induced by `neighbor`, starting
/// from `init`.
///
/// Energies are memoized per state (states are compared by `Eq + Hash`),
/// so revisits during the walk are free — important when one evaluation is
/// a full Grid simulation. The walk itself is deterministic for a given
/// `(init, cfg.seed)`.
pub fn anneal<S, N, E>(
    init: S,
    mut neighbor: N,
    mut energy: E,
    cfg: &AnnealConfig,
) -> AnnealResult<S>
where
    S: Clone + Eq + Hash,
    N: FnMut(&S, &mut SimRng) -> S,
    E: FnMut(&S) -> f64,
{
    assert!(cfg.iterations >= 1);
    assert!(cfg.cooling > 0.0 && cfg.cooling < 1.0);
    let mut rng = SimRng::new(cfg.seed);
    // audit:allow(hash-iter, reason="energy memo keyed by generic Hash-only S; lookups only, never iterated")
    let mut cache: HashMap<S, f64> = HashMap::new();
    let mut misses = 0usize;

    // audit:allow(hash-iter, reason="same lookup-only memo threaded by &mut")
    let mut eval = |s: &S, cache: &mut HashMap<S, f64>, misses: &mut usize| -> f64 {
        if let Some(&e) = cache.get(s) {
            return e;
        }
        let e = energy(s);
        cache.insert(s.clone(), e);
        *misses += 1;
        e
    };

    let mut current = init;
    let mut current_e = eval(&current, &mut cache, &mut misses);
    let mut best = current.clone();
    let mut best_e = current_e;
    let mut trajectory = vec![current_e];
    let mut trajectory_evals = vec![1];
    let mut rejected = 0usize;
    let mut temp = cfg.t0_fraction * current_e.abs().max(1e-9);

    for i in 1..cfg.iterations {
        let cand = neighbor(&current, &mut rng);
        let cand_e = eval(&cand, &mut cache, &mut misses);
        let accept = cand_e <= current_e || {
            let p = ((current_e - cand_e) / temp.max(1e-12)).exp();
            rng.chance(p)
        };
        if accept {
            current = cand;
            current_e = cand_e;
            trajectory.push(current_e);
            trajectory_evals.push(i + 1);
            if current_e < best_e {
                best = current.clone();
                best_e = current_e;
            }
        } else {
            rejected += 1;
        }
        temp *= cfg.cooling;
    }

    AnnealResult {
        best,
        best_energy: best_e,
        evaluations: misses,
        trajectory,
        trajectory_evals,
        rejected,
        rounds: cfg.iterations,
    }
}

/// Batched speculative annealing: at each temperature round, propose up to
/// `cfg.batch` neighbor candidates of the current state (each from its own
/// deterministic RNG fork), evaluate the distinct un-memoized ones
/// **concurrently** on an [`EnergyPool`], then apply the Metropolis rule
/// sequentially over the batch in proposal order. The first accepted
/// candidate becomes the new current state and the rest of the round's
/// speculation is discarded (their energies stay memoized, so re-proposing
/// them later is free).
///
/// `inits` seeds the chain with one or more starting states — the cross-
/// scale warm-start hook: pass `[default_start, warm_start]` and the chain
/// begins from whichever is better, while `best` covers both. At least one
/// init is required.
///
/// Determinism contract: for fixed `(inits, cfg.base.seed, cfg.batch)` the
/// result is bit-identical regardless of `cfg.threads`, because proposals
/// and acceptance decisions are made on the sequential control thread and
/// `energy` must be a pure function. The budget `cfg.base.iterations`
/// bounds consumed candidates (speculative evaluations discarded by an
/// early acceptance are charged to the round that issued them).
pub fn anneal_batch<S, N, E>(
    inits: &[S],
    mut neighbor: N,
    energy: E,
    cfg: &BatchAnnealConfig,
) -> AnnealResult<S>
where
    S: Clone + Eq + Hash + Send + Sync,
    N: FnMut(&S, &mut SimRng) -> S,
    E: Fn(&S) -> f64 + Sync,
{
    assert!(!inits.is_empty(), "need at least one initial state");
    assert!(cfg.base.iterations >= 1);
    assert!(cfg.base.cooling > 0.0 && cfg.base.cooling < 1.0);
    assert!(cfg.batch >= 1);
    let batch = cfg.batch;
    let pool = EnergyPool::new(cfg.threads);
    let root = SimRng::new(cfg.base.seed);

    // audit:allow(hash-iter, reason="energy memo keyed by generic Hash-only S; lookups only, never iterated")
    let mut cache: HashMap<S, f64> = HashMap::new();
    let mut misses = 0usize;

    // Evaluates every state in `states` not yet memoized, concurrently,
    // and memoizes the results. Duplicate proposals within one round are
    // deduplicated before hitting the pool.
    // audit:allow(hash-iter, reason="same lookup-only memo threaded by &mut")
    let ensure_cached = |states: &[S], cache: &mut HashMap<S, f64>, misses: &mut usize| {
        let mut missing: Vec<S> = Vec::new();
        for s in states {
            if !cache.contains_key(s) && !missing.contains(s) {
                missing.push(s.clone());
            }
        }
        if missing.is_empty() {
            return;
        }
        let energies = pool.map(&missing, |s| energy(s));
        *misses += missing.len();
        for (s, e) in missing.into_iter().zip(energies) {
            cache.insert(s, e);
        }
    };

    // Round 0: evaluate all seeds concurrently; the chain starts from the
    // best of them (ties favor the earliest, i.e. the canonical start).
    ensure_cached(inits, &mut cache, &mut misses);
    let mut current = inits[0].clone();
    let mut current_e = cache[&current];
    for s in &inits[1..] {
        let e = cache[s];
        if e < current_e {
            current = s.clone();
            current_e = e;
        }
    }
    let mut best = current.clone();
    let mut best_e = current_e;
    let mut consumed = inits.len();
    let mut rounds = 1usize;
    let mut rejected = 0usize;
    let mut trajectory = vec![current_e];
    let mut trajectory_evals = vec![consumed];
    let mut temp = cfg.base.t0_fraction * current_e.abs().max(1e-9);
    // Global proposal-slot counter: slot `i` always forks RNG stream `i`
    // from the root, so the chain is a pure function of (inits, seed,
    // batch) no matter how rounds shake out.
    let mut slot: u64 = 0;

    while consumed < cfg.base.iterations {
        let b = batch.min(cfg.base.iterations - consumed);
        // Speculative proposal phase: all `b` candidates step from the
        // *same* current state (the speculation is that the earlier ones
        // get rejected).
        let mut cands: Vec<S> = Vec::with_capacity(b);
        let mut rngs: Vec<SimRng> = Vec::with_capacity(b);
        for j in 0..b {
            let mut r = root.fork(slot + j as u64);
            cands.push(neighbor(&current, &mut r));
            rngs.push(r);
        }
        ensure_cached(&cands, &mut cache, &mut misses);
        // Decision phase: sequential Metropolis scan in proposal order.
        // Candidate j sees the temperature it would have seen in a
        // sequential chain, `temp · cooling^j`.
        let mut t_j = temp;
        for (j, (cand, rng)) in cands.iter().zip(rngs.iter_mut()).enumerate() {
            let cand_e = cache[cand];
            let accept = cand_e <= current_e || {
                let p = ((current_e - cand_e) / t_j.max(1e-12)).exp();
                rng.chance(p)
            };
            if accept {
                current = cand.clone();
                current_e = cand_e;
                trajectory.push(current_e);
                trajectory_evals.push(consumed + j + 1);
                if current_e < best_e {
                    best = current.clone();
                    best_e = current_e;
                }
                break;
            }
            rejected += 1;
            t_j *= cfg.base.cooling;
        }
        // The whole round is charged to the budget and the cooling
        // schedule, whether or not the speculation tail was used.
        consumed += b;
        temp *= cfg.base.cooling.powi(b as i32);
        slot += b as u64;
        rounds += 1;
    }

    AnnealResult {
        best,
        best_energy: best_e,
        evaluations: misses,
        trajectory,
        trajectory_evals,
        rejected,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-D convex landscape: minimum at 37 on a 0..100 grid.
    fn quadratic(x: &i64) -> f64 {
        let d = (*x - 37) as f64;
        d * d
    }

    fn step(x: &i64, rng: &mut SimRng) -> i64 {
        let d = if rng.chance(0.5) { 1 } else { -1 };
        (x + d).clamp(0, 100)
    }

    #[test]
    fn finds_global_minimum_of_convex_landscape() {
        let cfg = AnnealConfig {
            iterations: 400,
            ..AnnealConfig::default()
        };
        let r = anneal(90i64, step, quadratic, &cfg);
        assert_eq!(r.best, 37, "energy {}", r.best_energy);
        assert_eq!(r.best_energy, 0.0);
    }

    #[test]
    fn escapes_local_minimum() {
        // Double well: local min at 10 (E=5), global at 80 (E=0), with a
        // barrier of +8 between them.
        let well = |x: &i64| -> f64 {
            let x = *x as f64;
            let local = 5.0 + (x - 10.0).abs() / 7.0;
            let global = (x - 80.0).abs() / 2.0;
            let mut e = local.min(global);
            if (30.0..60.0).contains(&x) {
                e += 8.0; // the barrier between the wells
            }
            e
        };
        // Strided proposals let the chain hop over the barrier region.
        let stride = |x: &i64, rng: &mut SimRng| -> i64 {
            let d = rng.int_range(1, 10) as i64;
            let d = if rng.chance(0.5) { d } else { -d };
            (x + d).clamp(0, 100)
        };
        let cfg = AnnealConfig {
            iterations: 2000,
            t0_fraction: 4.0,
            cooling: 0.998,
            seed: 11,
        };
        let r = anneal(10i64, stride, well, &cfg);
        assert!(
            r.best >= 70,
            "stuck at {} (E={}) instead of crossing the barrier",
            r.best,
            r.best_energy
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = AnnealConfig::default();
        let a = anneal(90i64, step, quadratic, &cfg);
        let b = anneal(90i64, step, quadratic, &cfg);
        assert_eq!(a.best, b.best);
        assert_eq!(a.trajectory, b.trajectory);
        assert_eq!(a.trajectory_evals, b.trajectory_evals);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.rejected, b.rejected);
    }

    #[test]
    fn memoization_bounds_evaluations() {
        let mut calls = 0usize;
        let cfg = AnnealConfig {
            iterations: 500,
            ..AnnealConfig::default()
        };
        let r = anneal(
            50i64,
            step,
            |x: &i64| {
                calls += 1;
                quadratic(x)
            },
            &cfg,
        );
        assert_eq!(calls, r.evaluations, "objective called once per state");
        assert!(
            r.evaluations <= 101,
            "at most one evaluation per grid point, got {}",
            r.evaluations
        );
    }

    #[test]
    fn trajectory_starts_at_initial_energy() {
        let r = anneal(90i64, step, quadratic, &AnnealConfig::default());
        assert_eq!(r.trajectory[0], quadratic(&90));
        assert!(r.best_energy <= r.trajectory[0]);
    }

    #[test]
    fn single_iteration_returns_init() {
        let cfg = AnnealConfig {
            iterations: 1,
            ..AnnealConfig::default()
        };
        let r = anneal(42i64, step, quadratic, &cfg);
        assert_eq!(r.best, 42);
        assert_eq!(r.evaluations, 1);
        assert_eq!(r.rounds, 1);
        assert_eq!(r.rejected, 0);
    }

    #[test]
    fn rejected_plus_accepted_accounts_for_every_candidate() {
        let cfg = AnnealConfig {
            iterations: 300,
            ..AnnealConfig::default()
        };
        let r = anneal(90i64, step, quadratic, &cfg);
        // Every non-initial candidate is either accepted (one trajectory
        // entry each) or rejected.
        assert_eq!(
            (r.trajectory.len() - 1) + r.rejected,
            cfg.iterations - 1,
            "candidate accounting"
        );
        assert_eq!(r.trajectory.len(), r.trajectory_evals.len());
        assert!(
            r.trajectory_evals.windows(2).all(|w| w[0] < w[1]),
            "evaluation counts at accepted steps strictly increase"
        );
        assert!(*r.trajectory_evals.last().unwrap() <= cfg.iterations);
    }

    // ---- batched speculative annealer ----

    fn batch_cfg(batch: usize, threads: usize, iterations: usize, seed: u64) -> BatchAnnealConfig {
        BatchAnnealConfig {
            base: AnnealConfig {
                iterations,
                seed,
                ..AnnealConfig::default()
            },
            batch,
            threads,
        }
    }

    #[test]
    fn batched_finds_global_minimum_of_convex_landscape() {
        let cfg = batch_cfg(4, 2, 400, 0x5EED);
        let r = anneal_batch(&[90i64], step, quadratic, &cfg);
        assert_eq!(r.best, 37, "energy {}", r.best_energy);
        assert_eq!(r.best_energy, 0.0);
    }

    #[test]
    fn batched_is_thread_invariant_bit_for_bit() {
        for batch in [1usize, 2, 4, 7] {
            let a = anneal_batch(&[90i64], step, quadratic, &batch_cfg(batch, 1, 200, 7));
            let b = anneal_batch(&[90i64], step, quadratic, &batch_cfg(batch, 8, 200, 7));
            assert_eq!(a.best, b.best, "batch={batch}");
            assert_eq!(a.best_energy, b.best_energy);
            assert_eq!(a.trajectory, b.trajectory);
            assert_eq!(a.trajectory_evals, b.trajectory_evals);
            assert_eq!(a.evaluations, b.evaluations);
            assert_eq!(a.rejected, b.rejected);
            assert_eq!(a.rounds, b.rounds);
        }
    }

    #[test]
    fn batched_rerun_is_bit_identical() {
        let cfg = batch_cfg(4, 4, 160, 99);
        let a = anneal_batch(&[80i64], step, quadratic, &cfg);
        let b = anneal_batch(&[80i64], step, quadratic, &cfg);
        assert_eq!(a.best, b.best);
        assert_eq!(a.trajectory, b.trajectory);
        assert_eq!(a.trajectory_evals, b.trajectory_evals);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn batching_shrinks_sequential_rounds() {
        let seq = anneal_batch(&[90i64], step, quadratic, &batch_cfg(1, 1, 100, 3));
        let par = anneal_batch(&[90i64], step, quadratic, &batch_cfg(4, 4, 100, 3));
        assert_eq!(seq.rounds, 100, "batch=1 rounds once per candidate");
        assert!(
            par.rounds <= 1 + 100usize.div_ceil(4),
            "batch=4 must compress rounds, got {}",
            par.rounds
        );
        assert!(par.rounds < seq.rounds);
    }

    #[test]
    fn multiple_inits_start_from_the_best_seed() {
        // 90 is far from the optimum, 38 is adjacent: the chain must start
        // at 38 and `best` must never exceed its energy.
        let cfg = batch_cfg(2, 1, 12, 5);
        let r = anneal_batch(&[90i64, 38], step, quadratic, &cfg);
        assert!(r.best_energy <= quadratic(&38));
        assert_eq!(r.trajectory[0], quadratic(&38), "chain starts at best seed");
        assert_eq!(r.trajectory_evals[0], 2, "both seeds charged to budget");
    }

    #[test]
    fn warm_start_never_worse_than_cold_within_same_budget() {
        // The wave-schedule invariant `measure` relies on: seeding the
        // chain with the cold run's best (plus the canonical start) can
        // never end with a higher best energy.
        for seed in 0..25u64 {
            for &init in &[0i64, 55, 100] {
                let cold = anneal_batch(&[init], step, quadratic, &batch_cfg(4, 2, 16, seed));
                let warm = anneal_batch(
                    &[init, cold.best],
                    step,
                    quadratic,
                    &batch_cfg(4, 2, 16, seed),
                );
                assert!(
                    warm.best_energy <= cold.best_energy,
                    "seed {seed} init {init}: warm {} > cold {}",
                    warm.best_energy,
                    cold.best_energy
                );
            }
        }
    }

    #[test]
    fn batched_budget_accounting() {
        let cfg = batch_cfg(4, 2, 18, 21);
        let r = anneal_batch(&[90i64], step, quadratic, &cfg);
        // 1 init + ceil(17/4) = 5 speculation rounds + the seed round.
        assert_eq!(r.rounds, 1 + 17usize.div_ceil(4));
        assert!(*r.trajectory_evals.last().unwrap() <= 18);
        assert!(r.evaluations <= 18, "evaluations bounded by the budget");
    }
}
