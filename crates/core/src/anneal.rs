//! Simulated annealing over discrete parameter grids.
//!
//! The paper (§3.2, Step 3) tunes the scaling enablers with "a simulated
//! annealing search … to determine the set of scaling enablers such that
//! overhead `G(k)` is minimum at scale factor `k`" (citing van Laarhoven
//! \[2\], Ingber \[12\], Bilbro & Snyder \[5\]). This module implements the
//! classic Metropolis/geometric-cooling variant over an abstract discrete
//! state space; `measure` instantiates it with enabler grids and a
//! penalized overhead objective.

use gridscale_desim::SimRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// Annealing hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealConfig {
    /// Total candidate evaluations (including the initial state).
    pub iterations: usize,
    /// Initial temperature as a fraction of the initial energy scale; the
    /// effective `T0` is `t0_fraction × max(|E(init)|, 1e-9)`.
    pub t0_fraction: f64,
    /// Geometric cooling factor per iteration, in `(0, 1)`.
    pub cooling: f64,
    /// RNG seed for the proposal chain.
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            iterations: 48,
            t0_fraction: 0.3,
            cooling: 0.9,
            seed: 0x5EED,
        }
    }
}

/// Outcome of one annealing run.
#[derive(Debug, Clone)]
pub struct AnnealResult<S> {
    /// The lowest-energy state visited.
    pub best: S,
    /// Its energy.
    pub best_energy: f64,
    /// Number of *distinct* states evaluated (cache misses) — with an
    /// expensive simulator objective this is the real cost measure.
    pub evaluations: usize,
    /// Energy trajectory of accepted states, for convergence diagnostics.
    pub trajectory: Vec<f64>,
}

/// Minimizes `energy` over the state graph induced by `neighbor`, starting
/// from `init`.
///
/// Energies are memoized per state (states are compared by `Eq + Hash`),
/// so revisits during the walk are free — important when one evaluation is
/// a full Grid simulation. The walk itself is deterministic for a given
/// `(init, cfg.seed)`.
pub fn anneal<S, N, E>(init: S, mut neighbor: N, mut energy: E, cfg: &AnnealConfig) -> AnnealResult<S>
where
    S: Clone + Eq + Hash,
    N: FnMut(&S, &mut SimRng) -> S,
    E: FnMut(&S) -> f64,
{
    assert!(cfg.iterations >= 1);
    assert!(cfg.cooling > 0.0 && cfg.cooling < 1.0);
    let mut rng = SimRng::new(cfg.seed);
    let mut cache: HashMap<S, f64> = HashMap::new();
    let mut misses = 0usize;

    let mut eval = |s: &S, cache: &mut HashMap<S, f64>, misses: &mut usize| -> f64 {
        if let Some(&e) = cache.get(s) {
            return e;
        }
        let e = energy(s);
        cache.insert(s.clone(), e);
        *misses += 1;
        e
    };

    let mut current = init;
    let mut current_e = eval(&current, &mut cache, &mut misses);
    let mut best = current.clone();
    let mut best_e = current_e;
    let mut trajectory = vec![current_e];
    let mut temp = cfg.t0_fraction * current_e.abs().max(1e-9);

    for _ in 1..cfg.iterations {
        let cand = neighbor(&current, &mut rng);
        let cand_e = eval(&cand, &mut cache, &mut misses);
        let accept = cand_e <= current_e || {
            let p = ((current_e - cand_e) / temp.max(1e-12)).exp();
            rng.chance(p)
        };
        if accept {
            current = cand;
            current_e = cand_e;
            trajectory.push(current_e);
            if current_e < best_e {
                best = current.clone();
                best_e = current_e;
            }
        }
        temp *= cfg.cooling;
    }

    AnnealResult {
        best,
        best_energy: best_e,
        evaluations: misses,
        trajectory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-D convex landscape: minimum at 37 on a 0..100 grid.
    fn quadratic(x: &i64) -> f64 {
        let d = (*x - 37) as f64;
        d * d
    }

    fn step(x: &i64, rng: &mut SimRng) -> i64 {
        let d = if rng.chance(0.5) { 1 } else { -1 };
        (x + d).clamp(0, 100)
    }

    #[test]
    fn finds_global_minimum_of_convex_landscape() {
        let cfg = AnnealConfig {
            iterations: 400,
            ..AnnealConfig::default()
        };
        let r = anneal(90i64, step, quadratic, &cfg);
        assert_eq!(r.best, 37, "energy {}", r.best_energy);
        assert_eq!(r.best_energy, 0.0);
    }

    #[test]
    fn escapes_local_minimum() {
        // Double well: local min at 10 (E=5), global at 80 (E=0), with a
        // barrier of +8 between them.
        let well = |x: &i64| -> f64 {
            let x = *x as f64;
            let local = 5.0 + (x - 10.0).abs() / 7.0;
            let global = (x - 80.0).abs() / 2.0;
            let mut e = local.min(global);
            if (30.0..60.0).contains(&x) {
                e += 8.0; // the barrier between the wells
            }
            e
        };
        // Strided proposals let the chain hop over the barrier region.
        let stride = |x: &i64, rng: &mut SimRng| -> i64 {
            let d = rng.int_range(1, 10) as i64;
            let d = if rng.chance(0.5) { d } else { -d };
            (x + d).clamp(0, 100)
        };
        let cfg = AnnealConfig {
            iterations: 2000,
            t0_fraction: 4.0,
            cooling: 0.998,
            seed: 11,
        };
        let r = anneal(10i64, stride, well, &cfg);
        assert!(
            r.best >= 70,
            "stuck at {} (E={}) instead of crossing the barrier",
            r.best,
            r.best_energy
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = AnnealConfig::default();
        let a = anneal(90i64, step, quadratic, &cfg);
        let b = anneal(90i64, step, quadratic, &cfg);
        assert_eq!(a.best, b.best);
        assert_eq!(a.trajectory, b.trajectory);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn memoization_bounds_evaluations() {
        let mut calls = 0usize;
        let cfg = AnnealConfig {
            iterations: 500,
            ..AnnealConfig::default()
        };
        let r = anneal(
            50i64,
            step,
            |x: &i64| {
                calls += 1;
                quadratic(x)
            },
            &cfg,
        );
        assert_eq!(calls, r.evaluations, "objective called once per state");
        assert!(
            r.evaluations <= 101,
            "at most one evaluation per grid point, got {}",
            r.evaluations
        );
    }

    #[test]
    fn trajectory_starts_at_initial_energy() {
        let r = anneal(90i64, step, quadratic, &AnnealConfig::default());
        assert_eq!(r.trajectory[0], quadratic(&90));
        assert!(r.best_energy <= r.trajectory[0]);
    }

    #[test]
    fn single_iteration_returns_init() {
        let cfg = AnnealConfig {
            iterations: 1,
            ..AnnealConfig::default()
        };
        let r = anneal(42i64, step, quadratic, &cfg);
        assert_eq!(r.best, 42);
        assert_eq!(r.evaluations, 1);
    }
}
