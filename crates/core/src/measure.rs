//! The four-step scalability measurement procedure (paper §3.2, Fig. 1).
//!
//! 1. **Choose** a feasible target efficiency `E0` to hold constant.
//! 2. **Scale** the RMS or the RP along the case's scaling variables.
//! 3. **Tune** the scaling enablers with simulated annealing so the
//!    overall efficiency stays at `E0` while `G(k)` is minimized.
//! 4. **Compute** the scalability of the RMS from the slope of `G(k)`.
//!
//! Step 3 — where every energy evaluation is a full Grid simulation — is
//! the hot path of the whole repository. It is parallelized on two levels:
//! batched speculative annealing ([`crate::anneal::anneal_batch`]) inside
//! each point, and a *wave schedule* across points: every `(model, case)`
//! tunes its scale factors in ascending-`k` order so each anneal can warm-
//! start from the best enabler setting of the nearest smaller `k`, while
//! the models of a wave run concurrently.

use crate::anneal::{anneal_batch, AnnealConfig, BatchAnnealConfig};
use crate::cases::CaseId;
use crate::efficiency::{slopes, IsoefficiencyModel, NormalizedPoint};
use crate::scenario::{config_for, Preset};
use crate::sweep::{default_threads, parallel_map};
use gridscale_desim::{SimRng, SimTime};
use gridscale_gridsim::{Enablers, SimReport, SimTemplate};
use gridscale_rms::RmsKind;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// How the target efficiency `E0` of Step 1 is chosen.
///
/// The paper's derivation defines isoefficiency as `E(k) = E(k0)` — hold
/// the *base system's own* efficiency while scaling — and reports that its
/// experiments kept `E(k0) ∈ [0.38, 0.42]` (a property of its particular
/// overhead cost accounting). [`E0Mode::AutoBase`] follows the definition
/// directly: each `(model, case)` measures its base configuration at
/// default enablers and holds that value. [`E0Mode::Fixed`] reproduces the
/// fixed-band variant with a configurable target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum E0Mode {
    /// Use [`MeasureOptions::e0`] for every model.
    Fixed,
    /// `E0 = E(k0)` measured per model at default enablers (the paper's
    /// definition; the default).
    AutoBase,
}

fn default_batch() -> usize {
    4
}

fn default_warm_start() -> bool {
    true
}

fn default_shards() -> usize {
    1
}

/// Options controlling one measurement run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasureOptions {
    /// How `E0` is chosen (Step 1).
    pub e0_mode: E0Mode,
    /// Target efficiency when `e0_mode` is [`E0Mode::Fixed`] (paper band
    /// center: 0.40).
    pub e0: f64,
    /// Half-width of the isoefficiency band around `E0`.
    pub tolerance: f64,
    /// Scale factors to measure (the paper plots `k = 1..6`).
    pub ks: Vec<u32>,
    /// Experiment sizing preset.
    pub preset: Preset,
    /// Annealing hyper-parameters (Step 3).
    pub anneal: AnnealConfig,
    /// Speculative proposals evaluated concurrently per annealing round
    /// (`1` = the classic sequential Metropolis chain).
    #[serde(default = "default_batch")]
    pub batch: usize,
    /// Seed each point's anneal from the best enabler setting of the
    /// nearest smaller `k` (cross-scale warm start). The warm seed rides
    /// alongside the canonical start, so it can only improve the search.
    #[serde(default = "default_warm_start")]
    pub warm_start: bool,
    /// Master seed; every `(model, case, k)` point derives its own stream.
    pub seed: u64,
    /// Worker threads for the sweep (`0` = auto).
    pub threads: usize,
    /// Event-space partitions for every simulation replay (`1` = the
    /// sequential executor, `0` = auto: pick the widest-lookahead plan
    /// from the topology and the host core count). Sharded replay is
    /// bit-identical to the sequential one, so this is purely a
    /// wall-clock knob for large grids: each replay runs its shards on
    /// up to `shards` worker threads with conservative barrier
    /// synchronization.
    #[serde(default = "default_shards")]
    pub shards: usize,
    /// Optional override of the arrival window (smoke tests).
    pub duration_override: Option<SimTime>,
    /// Optional override of the drain window (smoke tests).
    pub drain_override: Option<SimTime>,
    /// Independent replications of the final (tuned) measurement; the
    /// reported `F/G/H/E` are means over replicates with distinct
    /// topology/workload seeds. Annealing itself always runs on the first
    /// replicate. Must be ≥ 1.
    pub replications: usize,
    /// Overrides the overhead cost model (sensitivity analysis); `None`
    /// uses the calibrated defaults.
    pub cost_override: Option<gridscale_gridsim::OverheadCosts>,
    /// Overrides the transmission model for every point (`--bw`): with a
    /// [`gridscale_gridsim::BandwidthConfig`] whose `enabled` is set, data
    /// movement contends for link capacity and the measured transfer busy
    /// time lands in `H(k)` — re-deriving Case 4's `H` from measurement
    /// instead of the job-control constant. `None` keeps each case's own
    /// default (legacy for Cases 1–4, capacity `1/k` for Case 5).
    #[serde(default)]
    pub bandwidth: Option<gridscale_gridsim::BandwidthConfig>,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        MeasureOptions {
            e0_mode: E0Mode::AutoBase,
            e0: 0.40,
            tolerance: 0.02,
            ks: (1..=6).collect(),
            preset: Preset::Quick,
            anneal: AnnealConfig::default(),
            batch: default_batch(),
            warm_start: default_warm_start(),
            seed: 0x15_0EFF,
            threads: 0,
            shards: default_shards(),
            duration_override: None,
            drain_override: None,
            replications: 1,
            cost_override: None,
            bandwidth: None,
        }
    }
}

/// One measured point of a scalability curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Scale factor.
    pub k: u32,
    /// Minimum-cost RMS overhead `G(k)` found by the tuner.
    pub g: f64,
    /// Useful work `F(k)` at that setting.
    pub f: f64,
    /// RP overhead `H(k)`.
    pub h: f64,
    /// Achieved efficiency.
    pub efficiency: f64,
    /// Whether the efficiency landed inside the isoefficiency band.
    pub feasible: bool,
    /// The enabler setting the annealer chose.
    pub enablers: Enablers,
    /// Distinct enabler settings the annealer simulated.
    pub evaluations: usize,
    /// Number of replications averaged into `g/f/h/efficiency`.
    pub replications: usize,
    /// The full report of the first replicate at the chosen setting.
    pub report: SimReport,
}

/// Tuning-cost telemetry for one `(model, case, k)` point — the raw
/// material of `BENCH_tuning.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PointBench {
    /// The RMS model tuned.
    pub kind: RmsKind,
    /// The scaling case.
    pub case: CaseId,
    /// Scale factor.
    pub k: u32,
    /// Wall-clock time of the whole point (template build + search +
    /// replications), milliseconds.
    pub wall_ms: f64,
    /// Distinct enabler settings simulated by the search.
    pub evaluations: usize,
    /// Sequential evaluation rounds the search needed (each round runs up
    /// to [`MeasureOptions::batch`] simulations concurrently).
    pub rounds: usize,
    /// The candidate budget the search was given
    /// ([`AnnealConfig::iterations`]).
    pub iterations_budget: usize,
    /// Whether this point was warm-started from a smaller `k`.
    pub warm_started: bool,
    /// Best (penalized) energy found.
    pub best_energy: f64,
}

/// Tuning telemetry for a whole measurement run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TuningBench {
    /// One entry per tuned `(model, case, k)` point, in tuning order
    /// (ascending-`k` waves, models in input order within each wave).
    pub points: Vec<PointBench>,
}

impl TuningBench {
    /// Total wall-clock milliseconds across all points (sum of per-point
    /// times, i.e. CPU-ish cost — concurrent points overlap in real time).
    pub fn total_wall_ms(&self) -> f64 {
        self.points.iter().map(|p| p.wall_ms).sum()
    }

    /// Total distinct simulations run by the tuner.
    pub fn total_evaluations(&self) -> usize {
        self.points.iter().map(|p| p.evaluations).sum()
    }
}

/// Scalability verdict per the paper's Eq. (2) condition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalabilityVerdict {
    /// Eq. (2) check `f(k) > c·g(k)` at each measured `k > k0`.
    pub condition: Vec<(u32, bool)>,
    /// The margin `f(k) − c·g(k)` behind each check, in normalized units
    /// (one unit = the base system's useful work). Values near zero mean
    /// the boolean is within measurement noise.
    pub margins: Vec<(u32, f64)>,
    /// Largest `k` such that the condition holds at every scale `≤ k`
    /// (`None` if it fails immediately after base).
    pub scalable_through: Option<u32>,
}

/// The measured `G(k)` curve for one `(model, case)` pair, with the
/// derived isoefficiency quantities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalabilityCurve {
    /// The RMS model measured.
    pub kind: RmsKind,
    /// The scaling strategy followed.
    pub case: CaseId,
    /// Target efficiency used.
    pub e0: f64,
    /// Points in ascending `k`.
    pub points: Vec<CurvePoint>,
}

impl ScalabilityCurve {
    /// `(k, G(k))` pairs.
    pub fn g_curve(&self) -> Vec<(f64, f64)> {
        self.points.iter().map(|p| (p.k as f64, p.g)).collect()
    }

    /// Discrete slopes of `G(k)` — the paper's scalability measure.
    pub fn g_slopes(&self) -> Vec<f64> {
        slopes(&self.g_curve())
    }

    /// Normalized `f/g/h` against the first (base) point.
    pub fn normalized(&self) -> Vec<NormalizedPoint> {
        let Some(_base) = self.points.first() else {
            return Vec::new();
        };
        let model = self.model();
        self.points
            .iter()
            .map(|p| model.normalize(p.k as f64, p.f, p.g, p.h))
            .collect()
    }

    /// The isoefficiency model anchored at this curve's base point.
    pub fn model(&self) -> IsoefficiencyModel {
        let base = self.points.first().expect("curve has a base point");
        IsoefficiencyModel::new(self.e0, base.f.max(1e-9), base.g.max(1e-9), base.h)
    }

    /// Eq. (2) verdict over the curve.
    pub fn verdict(&self) -> ScalabilityVerdict {
        let model = self.model();
        let norm = self.normalized();
        let condition: Vec<(u32, bool)> = norm
            .iter()
            .skip(1)
            .map(|p| (p.k as u32, model.condition_holds(p)))
            .collect();
        let margins: Vec<(u32, f64)> = norm
            .iter()
            .skip(1)
            .map(|p| (p.k as u32, p.f - model.c() * p.g))
            .collect();
        let mut through = None;
        for &(k, ok) in &condition {
            if ok {
                through = Some(k);
            } else {
                break;
            }
        }
        ScalabilityVerdict {
            condition,
            margins,
            scalable_through: through,
        }
    }
}

/// Derives a per-point seed from the master seed and the point identity.
fn point_seed(master: u64, kind: RmsKind, case: CaseId, k: u32) -> u64 {
    let tag = (kind as u64) << 40 | (case.number() as u64) << 32 | k as u64;
    SimRng::new(master).fork(tag).seed()
}

/// Builds the (override-applied) configuration for one point.
fn point_config(
    kind: RmsKind,
    case: CaseId,
    k: u32,
    opts: &MeasureOptions,
) -> gridscale_gridsim::GridConfig {
    let seed = point_seed(opts.seed, kind, case, k);
    let mut cfg = config_for(kind, case, k, opts.preset, seed);
    if let Some(d) = opts.duration_override {
        cfg.workload.duration = d;
    }
    if let Some(d) = opts.drain_override {
        cfg.drain = d;
    }
    if let Some(costs) = opts.cost_override {
        cfg.costs = costs;
    }
    if let Some(bw) = opts.bandwidth {
        cfg.bandwidth = bw;
    }
    cfg
}

/// One replay of `template` under `enablers`, routed through the
/// executor [`MeasureOptions::shards`] selects. The sharded executor is
/// fingerprint-identical to the sequential one, so the choice can never
/// change a measurement — only its wall-clock cost.
fn replay(
    template: &SimTemplate,
    enablers: Enablers,
    kind: RmsKind,
    opts: &MeasureOptions,
) -> SimReport {
    if opts.shards == 0 {
        template
            .run_sharded_auto(enablers, || kind.build_static())
            .0
    } else if opts.shards > 1 {
        template
            .run_sharded(enablers, || kind.build_static(), opts.shards, opts.shards)
            .0
    } else {
        let mut policy = kind.build_static();
        template.run(enablers, &mut policy)
    }
}

/// Step 1: resolve the target efficiency `E0` for `(kind, case)`.
///
/// In [`E0Mode::AutoBase`] this measures the base configuration (smallest
/// `k` in `opts.ks`) at default enablers — the deployment-time operating
/// point whose efficiency the scaled system must maintain.
pub fn resolve_e0(kind: RmsKind, case: CaseId, opts: &MeasureOptions) -> f64 {
    match opts.e0_mode {
        E0Mode::Fixed => opts.e0,
        E0Mode::AutoBase => {
            let k0 = *opts.ks.iter().min().expect("ks nonempty");
            let cfg = point_config(kind, case, k0, opts);
            let template = SimTemplate::new(&cfg);
            let r = replay(&template, cfg.enablers, kind, opts);
            r.efficiency.clamp(0.05, 0.95)
        }
    }
}

/// The full outcome of tuning one point: the measured curve point, the
/// best enabler index (the warm seed for the next-larger `k`), and the
/// tuning-cost telemetry.
struct TunedPoint {
    point: CurvePoint,
    best_idx: [usize; 4],
    bench: PointBench,
}

/// Tunes one `(model, case, k)` point: Step 3 of the procedure.
///
/// Batched speculative annealing walks the case's enabler grid; the energy
/// of a setting is its measured `G(k)`, inflated multiplicatively when the
/// measured efficiency leaves the `E0 ± tolerance` band — so feasible
/// settings always dominate infeasible ones of similar overhead, while
/// infeasible ones still rank by violation (needed when the band is
/// unreachable, e.g. a saturated CENTRAL at large `k`).
///
/// Every simulated setting's full report is memoized, and the winning
/// setting's report is taken from that memo — the tuner never simulates
/// the same `(point, enablers)` twice, including the final measurement.
fn tune_point_inner(
    kind: RmsKind,
    case: CaseId,
    k: u32,
    e0: f64,
    warm: Option<[usize; 4]>,
    threads: usize,
    opts: &MeasureOptions,
) -> TunedPoint {
    // audit:allow(wall-clock, reason="wall_ms telemetry only; never feeds sim state")
    let started = Instant::now();
    let seed = point_seed(opts.seed, kind, case, k);
    let cfg = point_config(kind, case, k, opts);
    let template = SimTemplate::new(&cfg);
    let space = case.case().enabler_space;
    let base_enablers = cfg.enablers;

    // Every evaluation's full report is kept so the winner's measurement
    // is a lookup, not a re-simulation.
    let reports: Mutex<BTreeMap<[usize; 4], SimReport>> = Mutex::new(BTreeMap::new());
    let energy = |idx: &[usize; 4]| -> f64 {
        let enablers = space.realize(idx, &base_enablers);
        // Enum dispatch: monomorphizes the event loop for the annealer's
        // hottest path (thousands of replays per tuned point).
        let report = replay(&template, enablers, kind, opts);
        let violation = ((report.efficiency - e0).abs() - opts.tolerance).max(0.0);
        let e = report.g_overhead.max(1e-9) * (1.0 + 25.0 * violation / opts.tolerance);
        reports.lock().insert(*idx, report);
        e
    };

    let neighbor = |idx: &[usize; 4], rng: &mut SimRng| -> [usize; 4] {
        let mut out = *idx;
        // Step ±1 along one tunable dimension.
        let tunable: Vec<usize> = (0..4).filter(|&d| space.len(d) > 1).collect();
        if tunable.is_empty() {
            return out;
        }
        let d = tunable[rng.index(tunable.len())];
        let len = space.len(d);
        let cur = out[d];
        out[d] = if cur == 0 {
            1
        } else if cur + 1 >= len {
            cur - 1
        } else if rng.chance(0.5) {
            cur + 1
        } else {
            cur - 1
        };
        out
    };

    let mut acfg = opts.anneal;
    acfg.seed = seed ^ 0xA11EA1;
    // The canonical start always seeds the chain; a warm start from the
    // nearest smaller k rides alongside so it can only help.
    let mut inits = vec![space.start_index(&base_enablers)];
    if let Some(w) = warm {
        if !inits.contains(&w) {
            inits.push(w);
        }
    }
    let bcfg = BatchAnnealConfig {
        base: acfg,
        batch: opts.batch.max(1),
        threads: threads.max(1),
    };
    let result = anneal_batch(&inits, neighbor, energy, &bcfg);

    // The winning setting's report comes straight from the evaluation
    // memo; only extra replications (distinct seeds) simulate again.
    assert!(opts.replications >= 1, "need at least one replication");
    let enablers = space.realize(&result.best, &base_enablers);
    let report = reports
        .into_inner()
        .remove(&result.best)
        .expect("the best state was evaluated during the search");
    let (mut g_sum, mut f_sum, mut h_sum) = (report.g_overhead, report.f_work, report.h_overhead);
    for i in 1..opts.replications {
        let mut rep_cfg = cfg.clone();
        rep_cfg.seed = SimRng::new(seed).fork(1000 + i as u64).seed();
        let rep_template = SimTemplate::new(&rep_cfg);
        let r = replay(&rep_template, enablers, kind, opts);
        g_sum += r.g_overhead;
        f_sum += r.f_work;
        h_sum += r.h_overhead;
    }
    let n = opts.replications as f64;
    let (g, f, h) = (g_sum / n, f_sum / n, h_sum / n);
    let efficiency = crate::efficiency::IsoefficiencyModel::efficiency(f, g, h);
    let feasible = (efficiency - e0).abs() <= opts.tolerance;
    let bench = PointBench {
        kind,
        case,
        k,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        evaluations: result.evaluations,
        rounds: result.rounds,
        iterations_budget: opts.anneal.iterations,
        warm_started: warm.is_some(),
        best_energy: result.best_energy,
    };
    TunedPoint {
        point: CurvePoint {
            k,
            g,
            f,
            h,
            efficiency,
            feasible,
            enablers,
            evaluations: result.evaluations,
            replications: opts.replications,
            report,
        },
        best_idx: result.best,
        bench,
    }
}

/// Tunes one `(model, case, k)` point in isolation (no warm start) — the
/// single-point entry kept for ad-hoc probes and benchmarks; sweeps go
/// through [`measure_rms`]/[`measure_all`], which add the cross-scale
/// warm-start wave schedule.
pub fn tune_point(
    kind: RmsKind,
    case: CaseId,
    k: u32,
    e0: f64,
    opts: &MeasureOptions,
) -> CurvePoint {
    let threads = if opts.threads == 0 {
        default_threads(opts.batch.max(1))
    } else {
        opts.threads
    };
    tune_point_inner(kind, case, k, e0, None, threads, opts).point
}

/// Measures the full scalability curve of one RMS model along one case —
/// the complete four-step procedure.
pub fn measure_rms(kind: RmsKind, case: CaseId, opts: &MeasureOptions) -> ScalabilityCurve {
    measure_rms_with_bench(kind, case, opts).0
}

/// [`measure_rms`] plus the per-point tuning telemetry.
pub fn measure_rms_with_bench(
    kind: RmsKind,
    case: CaseId,
    opts: &MeasureOptions,
) -> (ScalabilityCurve, TuningBench) {
    let (mut curves, bench) = measure_all_with_bench(&[kind], case, opts);
    (curves.pop().expect("one model measured"), bench)
}

/// Measures several models along one case.
pub fn measure_all(
    kinds: &[RmsKind],
    case: CaseId,
    opts: &MeasureOptions,
) -> Vec<ScalabilityCurve> {
    measure_all_with_bench(kinds, case, opts).0
}

/// Measures several models along one case on the two-level schedule:
/// ascending-`k` *waves* × models. Within a wave every model's point is
/// tuned concurrently, and inside each point the batched annealer runs its
/// speculative evaluations concurrently; across waves, each point warm-
/// starts from the best enabler setting the same model found at the
/// nearest smaller `k` (when [`MeasureOptions::warm_start`] is set).
///
/// Results are bit-identical for any `threads` setting at a fixed seed:
/// waves are a sequential dependency chain, model order within a wave is
/// the input order, and the annealer itself is thread-invariant.
pub fn measure_all_with_bench(
    kinds: &[RmsKind],
    case: CaseId,
    opts: &MeasureOptions,
) -> (Vec<ScalabilityCurve>, TuningBench) {
    assert!(!opts.ks.is_empty(), "need at least one scale factor");
    let threads = if opts.threads == 0 {
        default_threads(kinds.len().max(1) * opts.batch.max(1))
    } else {
        opts.threads
    };
    // Split the worker budget across the two levels: models within a wave
    // on the outside, speculative annealing batches on the inside.
    let outer = threads.min(kinds.len().max(1)).max(1);
    let inner = (threads / outer).max(1);

    // Step 1 per model (parallel): resolve each model's target efficiency.
    let e0s = parallel_map(kinds, threads.max(1), |&kind| resolve_e0(kind, case, opts));

    // Ascending-k waves so warm seeds always come from a smaller scale.
    let mut ks = opts.ks.clone();
    ks.sort_unstable();

    let mut curves: Vec<ScalabilityCurve> = kinds
        .iter()
        .zip(&e0s)
        .map(|(&kind, &e0)| ScalabilityCurve {
            kind,
            case,
            e0,
            points: Vec::with_capacity(ks.len()),
        })
        .collect();
    let mut warm: Vec<Option<[usize; 4]>> = vec![None; kinds.len()];
    let mut bench = TuningBench::default();

    let model_ids: Vec<usize> = (0..kinds.len()).collect();
    for &k in &ks {
        let tuned = parallel_map(&model_ids, outer, |&mi| {
            tune_point_inner(kinds[mi], case, k, e0s[mi], warm[mi], inner, opts)
        });
        // Single pass, moving each point into its model's curve — grouping
        // is O(points), no re-scans, no clones.
        for (mi, t) in tuned.into_iter().enumerate() {
            if opts.warm_start {
                warm[mi] = Some(t.best_idx);
            }
            bench.points.push(t.bench);
            curves[mi].points.push(t.point);
        }
    }
    (curves, bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-sized options: tiny horizons, two scales, few SA iterations.
    fn smoke_opts() -> MeasureOptions {
        MeasureOptions {
            ks: vec![1, 2],
            anneal: AnnealConfig {
                iterations: 5,
                ..AnnealConfig::default()
            },
            duration_override: Some(SimTime::from_ticks(8_000)),
            drain_override: Some(SimTime::from_ticks(10_000)),
            threads: 2,
            ..MeasureOptions::default()
        }
    }

    #[test]
    fn measure_produces_sorted_feasibility_annotated_points() {
        let curve = measure_rms(RmsKind::Lowest, CaseId::NetworkSize, &smoke_opts());
        assert_eq!(curve.points.len(), 2);
        assert_eq!(curve.points[0].k, 1);
        assert_eq!(curve.points[1].k, 2);
        for p in &curve.points {
            assert!(p.g > 0.0, "k={}: G must be positive", p.k);
            assert!(p.f > 0.0, "k={}: F must be positive", p.k);
            assert!(p.evaluations >= 1);
            assert!(p.report.completed > 0);
        }
    }

    #[test]
    fn measurement_is_deterministic() {
        let opts = smoke_opts();
        let a = measure_rms(RmsKind::Central, CaseId::ServiceRate, &opts);
        let b = measure_rms(RmsKind::Central, CaseId::ServiceRate, &opts);
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.g, pb.g);
            assert_eq!(pa.enablers, pb.enablers);
            assert_eq!(pa.efficiency, pb.efficiency);
        }
    }

    #[test]
    fn thread_count_does_not_change_curves() {
        let mut seq = smoke_opts();
        seq.threads = 1;
        let mut par = smoke_opts();
        par.threads = 8;
        let a = measure_rms(RmsKind::Lowest, CaseId::NetworkSize, &seq);
        let b = measure_rms(RmsKind::Lowest, CaseId::NetworkSize, &par);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "threads=1 and threads=8 must agree bit-for-bit"
        );
    }

    #[test]
    fn shard_count_does_not_change_curves() {
        // The sharded executor is bit-identical to the sequential one, so
        // a measurement's shards knob must be invisible in its results.
        let mut seq = smoke_opts();
        seq.threads = 1;
        seq.shards = 1;
        let mut sharded = smoke_opts();
        sharded.threads = 1;
        sharded.shards = 3;
        let a = measure_rms(RmsKind::Lowest, CaseId::NetworkSize, &seq);
        let b = measure_rms(RmsKind::Lowest, CaseId::NetworkSize, &sharded);
        assert_eq!(a.e0.to_bits(), b.e0.to_bits());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.g.to_bits(), pb.g.to_bits(), "k={}", pa.k);
            assert_eq!(pa.enablers, pb.enablers, "k={}", pa.k);
            assert_eq!(pa.efficiency.to_bits(), pb.efficiency.to_bits());
            assert_eq!(
                pa.report.event_fingerprint, pb.report.event_fingerprint,
                "k={}",
                pa.k
            );
        }
    }

    #[test]
    fn curve_derivations_work() {
        let curve = measure_rms(RmsKind::Lowest, CaseId::NetworkSize, &smoke_opts());
        let slopes = curve.g_slopes();
        assert_eq!(slopes.len(), 1);
        let norm = curve.normalized();
        assert_eq!(norm[0].f, 1.0);
        assert_eq!(norm[0].g, 1.0);
        let verdict = curve.verdict();
        assert_eq!(verdict.condition.len(), 1);
    }

    #[test]
    fn measure_all_groups_by_kind() {
        let curves = measure_all(
            &[RmsKind::Central, RmsKind::Lowest],
            CaseId::NetworkSize,
            &smoke_opts(),
        );
        assert_eq!(curves.len(), 2);
        assert_eq!(curves[0].kind, RmsKind::Central);
        assert_eq!(curves[1].kind, RmsKind::Lowest);
        assert!(curves.iter().all(|c| c.points.len() == 2));
    }

    #[test]
    fn bench_telemetry_tracks_every_point() {
        let opts = smoke_opts();
        let (curves, bench) = measure_all_with_bench(
            &[RmsKind::Central, RmsKind::Lowest],
            CaseId::NetworkSize,
            &opts,
        );
        assert_eq!(bench.points.len(), 2 * opts.ks.len());
        for pb in &bench.points {
            assert!(pb.wall_ms >= 0.0);
            assert!(pb.evaluations >= 1);
            assert_eq!(pb.iterations_budget, opts.anneal.iterations);
            assert!(
                pb.rounds < pb.iterations_budget,
                "batch={} must compress rounds below the budget ({} !< {})",
                opts.batch,
                pb.rounds,
                pb.iterations_budget
            );
        }
        // Waves: k=1 points are cold, k=2 points are warm-started.
        assert!(bench
            .points
            .iter()
            .filter(|p| p.k == 1)
            .all(|p| !p.warm_started));
        assert!(bench
            .points
            .iter()
            .filter(|p| p.k == 2)
            .all(|p| p.warm_started));
        assert!(curves.iter().all(|c| c.points.len() == 2));
        // Telemetry serializes (the CLI writes it to BENCH_tuning.json).
        let s = serde_json::to_string(&bench).unwrap();
        let back: TuningBench = serde_json::from_str(&s).unwrap();
        assert_eq!(back.points.len(), bench.points.len());
        assert_eq!(back.total_evaluations(), bench.total_evaluations());
    }

    #[test]
    fn point_seeds_differ_across_identity() {
        let a = point_seed(1, RmsKind::Central, CaseId::NetworkSize, 1);
        let b = point_seed(1, RmsKind::Central, CaseId::NetworkSize, 2);
        let c = point_seed(1, RmsKind::Lowest, CaseId::NetworkSize, 1);
        let d = point_seed(1, RmsKind::Central, CaseId::ServiceRate, 1);
        assert!(a != b && a != c && a != d && b != c);
    }

    #[test]
    fn serde_roundtrip_of_curve() {
        let curve = measure_rms(RmsKind::Central, CaseId::NetworkSize, &smoke_opts());
        let s = serde_json::to_string(&curve).unwrap();
        let back: ScalabilityCurve = serde_json::from_str(&s).unwrap();
        assert_eq!(back.points.len(), curve.points.len());
        assert_eq!(back.points[0].g, curve.points[0].g);
    }

    #[test]
    fn options_deserialize_without_new_fields() {
        // Pre-wave-schedule option files (no batch/warm_start keys) still
        // load, with the new knobs at their defaults.
        let mut v = serde_json::to_value(MeasureOptions::default()).unwrap();
        let obj = v.as_object_mut().unwrap();
        obj.remove("batch");
        obj.remove("warm_start");
        obj.remove("shards");
        obj.remove("bandwidth");
        let opts: MeasureOptions = serde_json::from_value(v).unwrap();
        assert_eq!(opts.batch, default_batch());
        assert!(opts.warm_start);
        assert_eq!(opts.shards, default_shards());
        assert!(opts.bandwidth.is_none());
    }

    #[test]
    fn bandwidth_override_reaches_every_point_config() {
        let mut opts = smoke_opts();
        opts.bandwidth = Some(gridscale_gridsim::BandwidthConfig {
            enabled: true,
            capacity_scale: 0.1,
            k_paths: 2,
        });
        for case in CaseId::WITH_BANDWIDTH {
            let cfg = point_config(RmsKind::Lowest, case, 2, &opts);
            assert!(cfg.bandwidth.enabled, "{case:?}");
            assert_eq!(cfg.bandwidth.capacity_scale, 0.1, "{case:?}");
        }
        // Without the override, Case 5 keeps its own 1/k default and the
        // paper cases keep the legacy model.
        opts.bandwidth = None;
        assert!(
            !point_config(RmsKind::Lowest, CaseId::Lp, 2, &opts)
                .bandwidth
                .enabled
        );
        let c5 = point_config(RmsKind::Lowest, CaseId::Bandwidth, 2, &opts);
        assert!(c5.bandwidth.enabled);
        assert_eq!(c5.bandwidth.capacity_scale, 0.5);
    }
}

#[cfg(test)]
mod verdict_tests {
    use super::*;
    use gridscale_gridsim::{Enablers, SimReport};

    fn point(k: u32, g: f64, f: f64) -> CurvePoint {
        CurvePoint {
            k,
            g,
            f,
            h: 0.0,
            efficiency: 0.4,
            feasible: true,
            enablers: Enablers::default(),
            evaluations: 1,
            replications: 1,
            report: SimReport::default(),
        }
    }

    fn curve(points: Vec<CurvePoint>) -> ScalabilityCurve {
        ScalabilityCurve {
            kind: RmsKind::Lowest,
            case: CaseId::NetworkSize,
            e0: 0.4,
            points,
        }
    }

    #[test]
    fn perfectly_linear_growth_is_scalable() {
        // g(k) = f(k) = k: condition f > c·g with c = g0/((α−1)f0)…
        // with E0 = 0.4 and base (f=10, g=15): c = 15/(1.5·10) = 1.
        // f(k) > g(k) fails at equality; make f slightly faster.
        let c = curve(vec![
            point(1, 15.0, 10.0),
            point(2, 28.0, 21.0),
            point(3, 40.0, 32.0),
        ]);
        let v = c.verdict();
        assert_eq!(v.scalable_through, Some(3));
        assert!(v.condition.iter().all(|(_, ok)| *ok));
    }

    #[test]
    fn overhead_explosion_fails_from_first_violation() {
        let c = curve(vec![
            point(1, 15.0, 10.0),
            point(2, 28.0, 21.0), // fine
            point(3, 90.0, 30.0), // g ×6 vs f ×3: fails (6 > 3)
            point(4, 60.0, 45.0), // passes again (g 4 < f 4.5), but the prefix broke
        ]);
        let v = c.verdict();
        assert_eq!(v.scalable_through, Some(2));
        assert_eq!(
            v.condition.iter().map(|(_, ok)| *ok).collect::<Vec<_>>(),
            vec![true, false, true]
        );
    }

    #[test]
    fn immediate_failure_reports_none() {
        let c = curve(vec![point(1, 15.0, 10.0), point(2, 60.0, 12.0)]);
        assert_eq!(c.verdict().scalable_through, None);
    }

    #[test]
    fn g_curve_and_slopes_align() {
        let c = curve(vec![
            point(1, 10.0, 1.0),
            point(3, 30.0, 3.0),
            point(6, 30.0, 6.0),
        ]);
        assert_eq!(c.g_curve(), vec![(1.0, 10.0), (3.0, 30.0), (6.0, 30.0)]);
        assert_eq!(c.g_slopes(), vec![10.0, 0.0]);
    }

    #[test]
    fn normalized_base_is_unity() {
        let c = curve(vec![point(1, 15.0, 10.0), point(2, 30.0, 20.0)]);
        let n = c.normalized();
        assert_eq!((n[0].f, n[0].g), (1.0, 1.0));
        assert_eq!((n[1].f, n[1].g), (2.0, 2.0));
    }
}
