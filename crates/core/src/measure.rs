//! The four-step scalability measurement procedure (paper §3.2, Fig. 1).
//!
//! 1. **Choose** a feasible target efficiency `E0` to hold constant.
//! 2. **Scale** the RMS or the RP along the case's scaling variables.
//! 3. **Tune** the scaling enablers with simulated annealing so the
//!    overall efficiency stays at `E0` while `G(k)` is minimized.
//! 4. **Compute** the scalability of the RMS from the slope of `G(k)`.
//!
//! Step 3 — where every energy evaluation is a full Grid simulation — is
//! the hot path of the whole repository. It is parallelized on two levels:
//! batched speculative annealing ([`crate::anneal::anneal_batch`]) inside
//! each point, and a *wave schedule* across points: every `(model, case)`
//! tunes its scale factors in ascending-`k` order so each anneal can warm-
//! start from the best enabler setting of the nearest smaller `k`, while
//! the models of a wave run concurrently.

use crate::anneal::{anneal_batch, AnnealConfig, BatchAnnealConfig};
use crate::cases::CaseId;
use crate::efficiency::{slopes, IsoefficiencyModel, NormalizedPoint};
use crate::scenario::{config_for, Preset};
use crate::stats::rep_stats;
use crate::sweep::{default_threads, parallel_map};
use gridscale_desim::{SimRng, SimTime};
use gridscale_gridsim::{Enablers, SimReport, SimTemplate};
use gridscale_rms::RmsKind;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex as StdMutex, OnceLock};
use std::time::Instant;

/// How the target efficiency `E0` of Step 1 is chosen.
///
/// The paper's derivation defines isoefficiency as `E(k) = E(k0)` — hold
/// the *base system's own* efficiency while scaling — and reports that its
/// experiments kept `E(k0) ∈ [0.38, 0.42]` (a property of its particular
/// overhead cost accounting). [`E0Mode::AutoBase`] follows the definition
/// directly: each `(model, case)` measures its base configuration at
/// default enablers and holds that value. [`E0Mode::Fixed`] reproduces the
/// fixed-band variant with a configurable target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum E0Mode {
    /// Use [`MeasureOptions::e0`] for every model.
    Fixed,
    /// `E0 = E(k0)` measured per model at default enablers (the paper's
    /// definition; the default).
    AutoBase,
}

/// How the extra replications of a tuned point derive their worlds.
///
/// Replication exists to put error bars on the annealed measurement:
/// rerun the winning enabler setting under perturbed randomness and
/// report mean ± CI instead of a single draw. The two modes differ in
/// *which* RNG streams the perturbation reaches:
///
/// * [`ReplicationMode::FreshWorld`] re-roots **every** stream — each
///   replication builds its own topology, trace, and layout from a
///   forked seed (`SimTemplate::fresh_replica`; the historical behavior
///   and the back-compat default). Replication cost includes a full
///   world rebuild per replicate.
/// * [`ReplicationMode::SharedWorld`] re-roots only the **per-run
///   simulation streams** (arrival lane draws, update/flush staggers,
///   policy randomness — RNG stream 3) and replays the one `Arc`-shared
///   world through the pooled zero-clone template
///   (`SimTemplate::run_replicate`), so a replication costs one replay,
///   not a rebuild — and measures sampling noise at *fixed* topology
///   and workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReplicationMode {
    /// Each replication rebuilds its world from a forked seed (default).
    #[default]
    FreshWorld,
    /// All replications replay one shared world; only the simulation-side
    /// RNG streams fork per replication.
    SharedWorld,
}

fn default_batch() -> usize {
    4
}

fn default_warm_start() -> bool {
    true
}

fn default_shards() -> usize {
    1
}

/// Options controlling one measurement run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasureOptions {
    /// How `E0` is chosen (Step 1).
    pub e0_mode: E0Mode,
    /// Target efficiency when `e0_mode` is [`E0Mode::Fixed`] (paper band
    /// center: 0.40).
    pub e0: f64,
    /// Half-width of the isoefficiency band around `E0`.
    pub tolerance: f64,
    /// Scale factors to measure (the paper plots `k = 1..6`).
    pub ks: Vec<u32>,
    /// Experiment sizing preset.
    pub preset: Preset,
    /// Annealing hyper-parameters (Step 3).
    pub anneal: AnnealConfig,
    /// Speculative proposals evaluated concurrently per annealing round
    /// (`1` = the classic sequential Metropolis chain).
    #[serde(default = "default_batch")]
    pub batch: usize,
    /// Seed each point's anneal from the best enabler setting of the
    /// nearest smaller `k` (cross-scale warm start). The warm seed rides
    /// alongside the canonical start, so it can only improve the search.
    #[serde(default = "default_warm_start")]
    pub warm_start: bool,
    /// Master seed; every `(model, case, k)` point derives its own stream.
    pub seed: u64,
    /// Worker threads for the sweep (`0` = auto).
    pub threads: usize,
    /// Event-space partitions for every simulation replay (`1` = the
    /// sequential executor, `0` = auto: pick the widest-lookahead plan
    /// from the topology and the host core count). Sharded replay is
    /// bit-identical to the sequential one, so this is purely a
    /// wall-clock knob for large grids: each replay runs its shards on
    /// up to `shards` worker threads with conservative barrier
    /// synchronization.
    #[serde(default = "default_shards")]
    pub shards: usize,
    /// Optional override of the arrival window (smoke tests).
    pub duration_override: Option<SimTime>,
    /// Optional override of the drain window (smoke tests).
    pub drain_override: Option<SimTime>,
    /// Independent replications of the final (tuned) measurement; the
    /// reported `F/G/H/E` are means over replicates with distinct
    /// topology/workload seeds. Annealing itself always runs on the first
    /// replicate. Must be ≥ 1.
    pub replications: usize,
    /// Whether extra replications rebuild their worlds from forked seeds
    /// or replay the shared world with forked simulation streams (see
    /// [`ReplicationMode`]).
    #[serde(default)]
    pub replication_mode: ReplicationMode,
    /// Overrides the overhead cost model (sensitivity analysis); `None`
    /// uses the calibrated defaults.
    pub cost_override: Option<gridscale_gridsim::OverheadCosts>,
    /// Overrides the transmission model for every point (`--bw`): with a
    /// [`gridscale_gridsim::BandwidthConfig`] whose `enabled` is set, data
    /// movement contends for link capacity and the measured transfer busy
    /// time lands in `H(k)` — re-deriving Case 4's `H` from measurement
    /// instead of the job-control constant. `None` keeps each case's own
    /// default (legacy for Cases 1–4, capacity `1/k` for Case 5).
    #[serde(default)]
    pub bandwidth: Option<gridscale_gridsim::BandwidthConfig>,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        MeasureOptions {
            e0_mode: E0Mode::AutoBase,
            e0: 0.40,
            tolerance: 0.02,
            ks: (1..=6).collect(),
            preset: Preset::Quick,
            anneal: AnnealConfig::default(),
            batch: default_batch(),
            warm_start: default_warm_start(),
            seed: 0x15_0EFF,
            threads: 0,
            shards: default_shards(),
            duration_override: None,
            drain_override: None,
            replications: 1,
            replication_mode: ReplicationMode::default(),
            cost_override: None,
            bandwidth: None,
        }
    }
}

/// One measured point of a scalability curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Scale factor.
    pub k: u32,
    /// Minimum-cost RMS overhead `G(k)` found by the tuner.
    pub g: f64,
    /// Useful work `F(k)` at that setting.
    pub f: f64,
    /// RP overhead `H(k)`.
    pub h: f64,
    /// Achieved efficiency.
    pub efficiency: f64,
    /// Whether the efficiency landed inside the isoefficiency band.
    pub feasible: bool,
    /// The enabler setting the annealer chose.
    pub enablers: Enablers,
    /// Distinct enabler settings the annealer simulated.
    pub evaluations: usize,
    /// Number of replications averaged into `g/f/h/efficiency`.
    pub replications: usize,
    /// 95% Student-t confidence half-width of `g` over the replications
    /// (0 when `replications == 1` — one sample has no dispersion
    /// estimate).
    #[serde(default)]
    pub g_ci: f64,
    /// 95% confidence half-width of `f` (same convention as `g_ci`).
    #[serde(default)]
    pub f_ci: f64,
    /// 95% confidence half-width of `h` (same convention as `g_ci`).
    #[serde(default)]
    pub h_ci: f64,
    /// 95% confidence half-width of the per-replication efficiency
    /// samples (`efficiency` itself stays the efficiency of the mean
    /// `f/g/h`, not the mean of per-replication efficiencies).
    #[serde(default)]
    pub efficiency_ci: f64,
    /// The full report of the first replicate at the chosen setting.
    pub report: SimReport,
}

/// Tuning-cost telemetry for one `(model, case, k)` point — the raw
/// material of `BENCH_tuning.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PointBench {
    /// The RMS model tuned.
    pub kind: RmsKind,
    /// The scaling case.
    pub case: CaseId,
    /// Scale factor.
    pub k: u32,
    /// Wall-clock time of the whole point (template build + search +
    /// replications), milliseconds.
    pub wall_ms: f64,
    /// Distinct enabler settings simulated by the search.
    pub evaluations: usize,
    /// Sequential evaluation rounds the search needed (each round runs up
    /// to [`MeasureOptions::batch`] simulations concurrently).
    pub rounds: usize,
    /// The candidate budget the search was given
    /// ([`AnnealConfig::iterations`]).
    pub iterations_budget: usize,
    /// Whether this point was warm-started from a smaller `k`.
    pub warm_started: bool,
    /// Best (penalized) energy found.
    pub best_energy: f64,
    /// Wall-clock milliseconds spent on replications beyond the first
    /// (0 when `replications == 1`). Included in `wall_ms` when the
    /// point runs standalone; under the wave scheduler replications are
    /// separate work units, so this is their summed unit time.
    #[serde(default)]
    pub rep_wall_ms: f64,
    /// Worlds built for this point: 1 for the tuning template plus one
    /// per `FreshWorld` replication. `SharedWorld` replications replay
    /// the tuning template, keeping this at 1.
    #[serde(default = "default_templates_built")]
    pub templates_built: u64,
}

fn default_templates_built() -> u64 {
    1
}

/// Tuning telemetry for a whole measurement run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TuningBench {
    /// One entry per tuned `(model, case, k)` point, in tuning order
    /// (ascending-`k` waves, models in input order within each wave).
    pub points: Vec<PointBench>,
    /// Replication-speedup probe, when the run requested one
    /// (`measure --rep-probe`): the same tuned point replicated by the
    /// sequential fresh-world loop and by the pooled shared-world
    /// parallel fan-out.
    #[serde(default)]
    pub replication: Option<RepProbe>,
}

/// Result of [`probe_replication_speedup`]: one point's replications
/// timed twice — the historical sequential loop that rebuilds a world
/// per replicate ([`ReplicationMode::FreshWorld`], 1 thread) against the
/// pooled zero-clone fan-out ([`ReplicationMode::SharedWorld`], fanned
/// over threads).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepProbe {
    /// The RMS model probed.
    pub kind: RmsKind,
    /// The scaling case.
    pub case: CaseId,
    /// Scale factor of the probed point.
    pub k: u32,
    /// Replications per arm.
    pub replications: usize,
    /// Threads the shared-world arm fanned over.
    pub threads: usize,
    /// Wall-clock ms of the sequential fresh-world loop (rebuild + replay
    /// per replicate).
    pub fresh_sequential_ms: f64,
    /// Wall-clock ms of the shared-world fan-out (pooled replays only).
    pub shared_parallel_ms: f64,
    /// `fresh_sequential_ms / shared_parallel_ms`.
    pub speedup: f64,
    /// Worlds built by the fresh arm (= replications; each replicate
    /// rebuilds).
    pub fresh_templates_built: u64,
    /// Worlds built by the shared arm (always 1 — the probe template).
    pub shared_templates_built: u64,
    /// Mean `G` over the fresh arm's replications.
    pub g_mean_fresh: f64,
    /// Mean `G` over the shared arm's replications.
    pub g_mean_shared: f64,
    /// 95% CI half-width of `G` over the shared arm's replications.
    pub g_ci_shared: f64,
}

impl TuningBench {
    /// Total wall-clock milliseconds across all points (sum of per-point
    /// times, i.e. CPU-ish cost — concurrent points overlap in real time).
    pub fn total_wall_ms(&self) -> f64 {
        self.points.iter().map(|p| p.wall_ms).sum()
    }

    /// Total distinct simulations run by the tuner.
    pub fn total_evaluations(&self) -> usize {
        self.points.iter().map(|p| p.evaluations).sum()
    }
}

/// How much a verdict's boolean should be trusted, given the measured
/// replication spread at that scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VerdictConfidence {
    /// The 95% CI of the margin `f(k) − c·g(k)` is clear of zero: the
    /// Eq. (2) boolean would survive resampling. Single-replication
    /// measurements land here degenerately (their CI half-width is 0 —
    /// no spread estimate, not evidence of robustness).
    Robust,
    /// The margin's CI straddles the `f(k) > c·g(k)` boundary: the
    /// boolean is within replication noise and could flip.
    Fragile,
}

/// Scalability verdict per the paper's Eq. (2) condition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalabilityVerdict {
    /// Eq. (2) check `f(k) > c·g(k)` at each measured `k > k0`.
    pub condition: Vec<(u32, bool)>,
    /// The margin `f(k) − c·g(k)` behind each check, in normalized units
    /// (one unit = the base system's useful work). Values near zero mean
    /// the boolean is within measurement noise.
    pub margins: Vec<(u32, f64)>,
    /// 95% confidence half-width of each margin, in the same normalized
    /// units, from the replication CIs of the point (conservative
    /// first-order propagation `f_ci/W + c·g_ci/O_RMS`, treating the
    /// base point as the fixed anchor the curve is normalized against).
    /// All zeros when `replications == 1`.
    #[serde(default)]
    pub margin_cis: Vec<(u32, f64)>,
    /// Per-check confidence: [`VerdictConfidence::Fragile`] whenever
    /// `|margin| ≤ margin_ci` (the CI straddles the Eq. (2) boundary).
    #[serde(default)]
    pub confidence: Vec<(u32, VerdictConfidence)>,
    /// Largest `k` such that the condition holds at every scale `≤ k`
    /// (`None` if it fails immediately after base).
    pub scalable_through: Option<u32>,
}

impl ScalabilityVerdict {
    /// Number of checks whose boolean is robust under the measured
    /// replication spread (see [`VerdictConfidence`]).
    pub fn robust_count(&self) -> usize {
        self.confidence
            .iter()
            .filter(|(_, c)| *c == VerdictConfidence::Robust)
            .count()
    }
}

/// The measured `G(k)` curve for one `(model, case)` pair, with the
/// derived isoefficiency quantities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalabilityCurve {
    /// The RMS model measured.
    pub kind: RmsKind,
    /// The scaling strategy followed.
    pub case: CaseId,
    /// Target efficiency used.
    pub e0: f64,
    /// Points in ascending `k`.
    pub points: Vec<CurvePoint>,
}

impl ScalabilityCurve {
    /// `(k, G(k))` pairs.
    pub fn g_curve(&self) -> Vec<(f64, f64)> {
        self.points.iter().map(|p| (p.k as f64, p.g)).collect()
    }

    /// Discrete slopes of `G(k)` — the paper's scalability measure.
    pub fn g_slopes(&self) -> Vec<f64> {
        slopes(&self.g_curve())
    }

    /// Normalized `f/g/h` against the first (base) point.
    pub fn normalized(&self) -> Vec<NormalizedPoint> {
        let Some(_base) = self.points.first() else {
            return Vec::new();
        };
        let model = self.model();
        self.points
            .iter()
            .map(|p| model.normalize(p.k as f64, p.f, p.g, p.h))
            .collect()
    }

    /// The isoefficiency model anchored at this curve's base point.
    pub fn model(&self) -> IsoefficiencyModel {
        let base = self.points.first().expect("curve has a base point");
        IsoefficiencyModel::new(self.e0, base.f.max(1e-9), base.g.max(1e-9), base.h)
    }

    /// Eq. (2) verdict over the curve.
    pub fn verdict(&self) -> ScalabilityVerdict {
        let model = self.model();
        let norm = self.normalized();
        let condition: Vec<(u32, bool)> = norm
            .iter()
            .skip(1)
            .map(|p| (p.k as u32, model.condition_holds(p)))
            .collect();
        let margins: Vec<(u32, f64)> = norm
            .iter()
            .skip(1)
            .map(|p| (p.k as u32, p.f - model.c() * p.g))
            .collect();
        // Margin uncertainty in the same normalized units: conservative
        // first-order propagation of the replication CIs through
        // `f/W − c·g/O_RMS` (half-widths add; the base point is the
        // fixed normalization anchor). Zero at replications == 1.
        let margin_cis: Vec<(u32, f64)> = self
            .points
            .iter()
            .skip(1)
            .map(|p| {
                let g_norm_ci = if model.o_rms > 0.0 {
                    p.g_ci / model.o_rms
                } else {
                    0.0
                };
                (p.k, p.f_ci / model.w + model.c() * g_norm_ci)
            })
            .collect();
        let confidence: Vec<(u32, VerdictConfidence)> = margins
            .iter()
            .zip(&margin_cis)
            .map(|(&(k, m), &(_, hw))| {
                let c = if m.abs() > hw {
                    VerdictConfidence::Robust
                } else {
                    VerdictConfidence::Fragile
                };
                (k, c)
            })
            .collect();
        let mut through = None;
        for &(k, ok) in &condition {
            if ok {
                through = Some(k);
            } else {
                break;
            }
        }
        ScalabilityVerdict {
            condition,
            margins,
            margin_cis,
            confidence,
            scalable_through: through,
        }
    }
}

/// Derives a per-point seed from the master seed and the point identity.
fn point_seed(master: u64, kind: RmsKind, case: CaseId, k: u32) -> u64 {
    let tag = (kind as u64) << 40 | (case.number() as u64) << 32 | k as u64;
    SimRng::new(master).fork(tag).seed()
}

/// Builds the (override-applied) configuration for one point.
fn point_config(
    kind: RmsKind,
    case: CaseId,
    k: u32,
    opts: &MeasureOptions,
) -> gridscale_gridsim::GridConfig {
    let seed = point_seed(opts.seed, kind, case, k);
    let mut cfg = config_for(kind, case, k, opts.preset, seed);
    if let Some(d) = opts.duration_override {
        cfg.workload.duration = d;
    }
    if let Some(d) = opts.drain_override {
        cfg.drain = d;
    }
    if let Some(costs) = opts.cost_override {
        cfg.costs = costs;
    }
    if let Some(bw) = opts.bandwidth {
        cfg.bandwidth = bw;
    }
    cfg
}

/// One replay of `template` under `enablers`, routed through the
/// executor [`MeasureOptions::shards`] selects. The sharded executor is
/// fingerprint-identical to the sequential one, so the choice can never
/// change a measurement — only its wall-clock cost.
fn replay(
    template: &SimTemplate,
    enablers: Enablers,
    kind: RmsKind,
    opts: &MeasureOptions,
) -> SimReport {
    if opts.shards == 0 {
        template
            .run_sharded_auto(enablers, || kind.build_static())
            .0
    } else if opts.shards > 1 {
        template
            .run_sharded(enablers, || kind.build_static(), opts.shards, opts.shards)
            .0
    } else {
        let mut policy = kind.build_static();
        template.run(enablers, &mut policy)
    }
}

/// Replication `rep` of `template`'s simulation on the shared world
/// (rep 0 is the plain [`replay`]), routed through the same
/// shard-selected executor: `SharedWorld` replications honor
/// [`MeasureOptions::shards`] exactly like every other measured
/// simulation, and the sharded replicate is fingerprint-identical to the
/// sequential one.
fn replay_rep(
    template: &SimTemplate,
    enablers: Enablers,
    kind: RmsKind,
    opts: &MeasureOptions,
    rep: u64,
) -> SimReport {
    if opts.shards == 0 {
        template
            .run_sharded_auto_replicate(enablers, || kind.build_static(), rep)
            .0
    } else if opts.shards > 1 {
        template
            .run_sharded_replicate(
                enablers,
                || kind.build_static(),
                opts.shards,
                opts.shards,
                rep,
            )
            .0
    } else {
        let mut policy = kind.build_static();
        template.run_replicate(enablers, &mut policy, rep)
    }
}

/// Step 1: resolve the target efficiency `E0` for `(kind, case)`.
///
/// In [`E0Mode::AutoBase`] this measures the base configuration (smallest
/// `k` in `opts.ks`) at default enablers — the deployment-time operating
/// point whose efficiency the scaled system must maintain.
pub fn resolve_e0(kind: RmsKind, case: CaseId, opts: &MeasureOptions) -> f64 {
    match opts.e0_mode {
        E0Mode::Fixed => opts.e0,
        E0Mode::AutoBase => {
            let k0 = *opts.ks.iter().min().expect("ks nonempty");
            let cfg = point_config(kind, case, k0, opts);
            let template = SimTemplate::new(&cfg);
            let r = replay(&template, cfg.enablers, kind, opts);
            r.efficiency.clamp(0.05, 0.95)
        }
    }
}

/// The full outcome of tuning one point: the measured curve point, the
/// best enabler index (the warm seed for the next-larger `k`), and the
/// tuning-cost telemetry.
struct TunedPoint {
    point: CurvePoint,
    best_idx: [usize; 4],
    bench: PointBench,
}

/// The annealed half of one tuned point: the search outcome plus
/// everything a replication work unit needs to replay the winning
/// setting — the (shared-world) template, the point seed, and the best
/// enablers. Replications are scheduled *after* this exists, so they can
/// overlap other models' annealing in the same wave.
struct AnnealedPoint {
    seed: u64,
    template: SimTemplate,
    enablers: Enablers,
    report: SimReport,
    best_idx: [usize; 4],
    evaluations: usize,
    rounds: usize,
    best_energy: f64,
    warm_started: bool,
    wall_ms: f64,
}

/// One extra replication's raw outcome (replication index ≥ 1; index 0 is
/// the annealer's own memoized measurement).
struct RepOutcome {
    g: f64,
    f: f64,
    h: f64,
    wall_ms: f64,
    built_template: bool,
}

/// Step 3a: anneal one `(model, case, k)` point — the search half of
/// tuning, producing an [`AnnealedPoint`] whose replications can then run
/// as independent work units.
///
/// Batched speculative annealing walks the case's enabler grid; the energy
/// of a setting is its measured `G(k)`, inflated multiplicatively when the
/// measured efficiency leaves the `E0 ± tolerance` band — so feasible
/// settings always dominate infeasible ones of similar overhead, while
/// infeasible ones still rank by violation (needed when the band is
/// unreachable, e.g. a saturated CENTRAL at large `k`).
///
/// Every simulated setting's full report is memoized, and the winning
/// setting's report is taken from that memo — the tuner never simulates
/// the same `(point, enablers)` twice, including the final measurement.
fn anneal_point(
    kind: RmsKind,
    case: CaseId,
    k: u32,
    e0: f64,
    warm: Option<[usize; 4]>,
    threads: usize,
    opts: &MeasureOptions,
) -> AnnealedPoint {
    // audit:allow(wall-clock, reason="wall_ms telemetry only; never feeds sim state")
    let started = Instant::now();
    let seed = point_seed(opts.seed, kind, case, k);
    let cfg = point_config(kind, case, k, opts);
    let template = SimTemplate::new(&cfg);
    let space = case.case().enabler_space;
    let base_enablers = cfg.enablers;

    // Every evaluation's full report is kept so the winner's measurement
    // is a lookup, not a re-simulation.
    let reports: Mutex<BTreeMap<[usize; 4], SimReport>> = Mutex::new(BTreeMap::new());
    let energy = |idx: &[usize; 4]| -> f64 {
        let enablers = space.realize(idx, &base_enablers);
        // Enum dispatch: monomorphizes the event loop for the annealer's
        // hottest path (thousands of replays per tuned point).
        let report = replay(&template, enablers, kind, opts);
        let violation = ((report.efficiency - e0).abs() - opts.tolerance).max(0.0);
        let e = report.g_overhead.max(1e-9) * (1.0 + 25.0 * violation / opts.tolerance);
        reports.lock().insert(*idx, report);
        e
    };

    let neighbor = |idx: &[usize; 4], rng: &mut SimRng| -> [usize; 4] {
        let mut out = *idx;
        // Step ±1 along one tunable dimension.
        let tunable: Vec<usize> = (0..4).filter(|&d| space.len(d) > 1).collect();
        if tunable.is_empty() {
            return out;
        }
        let d = tunable[rng.index(tunable.len())];
        let len = space.len(d);
        let cur = out[d];
        out[d] = if cur == 0 {
            1
        } else if cur + 1 >= len {
            cur - 1
        } else if rng.chance(0.5) {
            cur + 1
        } else {
            cur - 1
        };
        out
    };

    let mut acfg = opts.anneal;
    acfg.seed = seed ^ 0xA11EA1;
    // The canonical start always seeds the chain; a warm start from the
    // nearest smaller k rides alongside so it can only help.
    let mut inits = vec![space.start_index(&base_enablers)];
    if let Some(w) = warm {
        if !inits.contains(&w) {
            inits.push(w);
        }
    }
    let bcfg = BatchAnnealConfig {
        base: acfg,
        batch: opts.batch.max(1),
        threads: threads.max(1),
    };
    let result = anneal_batch(&inits, neighbor, energy, &bcfg);

    // The winning setting's report comes straight from the evaluation
    // memo; only extra replications (distinct RNG streams) simulate again.
    assert!(opts.replications >= 1, "need at least one replication");
    let enablers = space.realize(&result.best, &base_enablers);
    let report = reports
        .into_inner()
        .remove(&result.best)
        .expect("the best state was evaluated during the search");
    AnnealedPoint {
        seed,
        template,
        enablers,
        report,
        best_idx: result.best,
        evaluations: result.evaluations,
        rounds: result.rounds,
        best_energy: result.best_energy,
        warm_started: warm.is_some(),
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// Step 3b: run replication `rep` (1-based; 0 is the annealer's own
/// measurement) of an annealed point's winning setting.
///
/// * [`ReplicationMode::FreshWorld`] re-roots a *new* template on the
///   historical per-replication seed `fork(1000 + rep)` — every stream
///   (topology, trace, simulation) differs, and the values match the
///   pre-replication-mode sequential loop byte for byte.
/// * [`ReplicationMode::SharedWorld`] replays the *same* `Arc`'d world
///   and pooled hot state with only the simulation-side streams forked by
///   `rep` — zero clones, zero rebuilds; sampling dispatch noise at a
///   fixed topology and trace.
fn run_replication(
    ap: &AnnealedPoint,
    kind: RmsKind,
    opts: &MeasureOptions,
    rep: usize,
) -> RepOutcome {
    // audit:allow(wall-clock, reason="rep_wall_ms telemetry only; never feeds sim state")
    let started = Instant::now();
    let (r, built_template) = match opts.replication_mode {
        ReplicationMode::FreshWorld => {
            let rep_seed = SimRng::new(ap.seed).fork(1000 + rep as u64).seed();
            let rep_template = ap.template.fresh_replica(rep_seed);
            (replay(&rep_template, ap.enablers, kind, opts), true)
        }
        ReplicationMode::SharedWorld => (
            replay_rep(&ap.template, ap.enablers, kind, opts, rep as u64),
            false,
        ),
    };
    RepOutcome {
        g: r.g_overhead,
        f: r.f_work,
        h: r.h_overhead,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        built_template,
    }
}

/// Step 3c: fold an annealed point and its replications (ascending
/// replication order — the order is part of the deterministic contract)
/// into the measured [`CurvePoint`] and its telemetry.
///
/// Means are folded exactly as the historical sequential loop did
/// (`0.0 + x == x` in IEEE 754, so summing from zero over
/// `[report, rep1, rep2, …]` is bit-identical to the old
/// `report + rep1 + …` accumulation), which is what keeps existing
/// `replications: 1` and `FreshWorld` results byte-stable.
fn finish_point(
    kind: RmsKind,
    case: CaseId,
    k: u32,
    e0: f64,
    ap: AnnealedPoint,
    reps: Vec<RepOutcome>,
    opts: &MeasureOptions,
) -> TunedPoint {
    assert_eq!(
        reps.len(),
        opts.replications - 1,
        "one outcome per extra replication"
    );
    let gs: Vec<f64> = std::iter::once(ap.report.g_overhead)
        .chain(reps.iter().map(|r| r.g))
        .collect();
    let fs: Vec<f64> = std::iter::once(ap.report.f_work)
        .chain(reps.iter().map(|r| r.f))
        .collect();
    let hs: Vec<f64> = std::iter::once(ap.report.h_overhead)
        .chain(reps.iter().map(|r| r.h))
        .collect();
    let (gstat, fstat, hstat) = (rep_stats(&gs), rep_stats(&fs), rep_stats(&hs));
    let (g, f, h) = (gstat.mean, fstat.mean, hstat.mean);
    // The headline efficiency stays the efficiency *of the means* (what
    // the isoefficiency fit consumes); its CI comes from the per-
    // replication efficiencies, which is the dispersion a reader wants.
    let efficiency = crate::efficiency::IsoefficiencyModel::efficiency(f, g, h);
    let eff_samples: Vec<f64> = gs
        .iter()
        .zip(&fs)
        .zip(&hs)
        .map(|((&gi, &fi), &hi)| crate::efficiency::IsoefficiencyModel::efficiency(fi, gi, hi))
        .collect();
    let estat = rep_stats(&eff_samples);
    let feasible = (efficiency - e0).abs() <= opts.tolerance;
    let rep_wall_ms: f64 = reps.iter().map(|r| r.wall_ms).sum();
    let templates_built = 1 + reps.iter().filter(|r| r.built_template).count() as u64;
    let bench = PointBench {
        kind,
        case,
        k,
        wall_ms: ap.wall_ms + rep_wall_ms,
        rep_wall_ms,
        templates_built,
        evaluations: ap.evaluations,
        rounds: ap.rounds,
        iterations_budget: opts.anneal.iterations,
        warm_started: ap.warm_started,
        best_energy: ap.best_energy,
    };
    TunedPoint {
        point: CurvePoint {
            k,
            g,
            f,
            h,
            efficiency,
            g_ci: gstat.ci_half,
            f_ci: fstat.ci_half,
            h_ci: hstat.ci_half,
            efficiency_ci: estat.ci_half,
            feasible,
            enablers: ap.enablers,
            evaluations: ap.evaluations,
            replications: opts.replications,
            report: ap.report,
        },
        best_idx: ap.best_idx,
        bench,
    }
}

/// Tunes one `(model, case, k)` point start to finish: anneal, then the
/// extra replications in ascending order, then the fold. The sequential
/// composition of the three stages — [`measure_all_with_bench`] schedules
/// the same stages as overlapping work units instead.
fn tune_point_inner(
    kind: RmsKind,
    case: CaseId,
    k: u32,
    e0: f64,
    warm: Option<[usize; 4]>,
    threads: usize,
    opts: &MeasureOptions,
) -> TunedPoint {
    let ap = anneal_point(kind, case, k, e0, warm, threads, opts);
    let reps: Vec<RepOutcome> = (1..opts.replications)
        .map(|r| run_replication(&ap, kind, opts, r))
        .collect();
    finish_point(kind, case, k, e0, ap, reps, opts)
}

/// One ascending-`k` wave: every model's point at scale `k`, with
/// replications as first-class work units.
///
/// With one outer worker this is the plain sequential
/// [`tune_point_inner`] loop (same functions, same order — bit-identical
/// by construction). With more, the wave runs as a shared work queue of
/// two unit kinds — `Anneal(model)` and `Rep(model, r)` — so one model's
/// replication fan-out overlaps other models' annealing instead of
/// waiting behind a per-stage barrier: a finished anneal immediately
/// enqueues that model's replication units and workers drain the queue
/// until every unit of the wave is done. Results are folded *after* the
/// scope in ascending `(model, replication)` order, so the schedule (and
/// hence the thread count) is invisible in the output bits (D4).
#[allow(clippy::too_many_arguments)] // one slot per wave input, mirrors tune_point_inner
fn tune_wave(
    kinds: &[RmsKind],
    case: CaseId,
    k: u32,
    e0s: &[f64],
    warm: &[Option<[usize; 4]>],
    outer: usize,
    inner: usize,
    opts: &MeasureOptions,
) -> Vec<TunedPoint> {
    let m = kinds.len();
    if outer <= 1 {
        return (0..m)
            .map(|mi| tune_point_inner(kinds[mi], case, k, e0s[mi], warm[mi], inner, opts))
            .collect();
    }

    enum Unit {
        Anneal(usize),
        Rep(usize, usize),
    }
    struct WaveState {
        queue: VecDeque<Unit>,
        done: usize,
    }
    let total = m * opts.replications;
    let state = StdMutex::new(WaveState {
        queue: (0..m).map(Unit::Anneal).collect(),
        done: 0,
    });
    let ready = Condvar::new();
    // Write-once / write-slot result stores, indexed by (model,
    // replication) — never by worker — so the fold below is schedule-free.
    let annealed: Vec<OnceLock<AnnealedPoint>> = (0..m).map(|_| OnceLock::new()).collect();
    let rep_slots: Vec<Vec<StdMutex<Option<RepOutcome>>>> = (0..m)
        .map(|_| {
            (1..opts.replications)
                .map(|_| StdMutex::new(None))
                .collect()
        })
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..outer {
            scope.spawn(|| loop {
                let unit = {
                    let mut st = state.lock().expect("wave mutex");
                    loop {
                        if let Some(u) = st.queue.pop_front() {
                            break u;
                        }
                        if st.done >= total {
                            return;
                        }
                        // Empty queue but units still in flight: an
                        // in-flight anneal may enqueue replications.
                        st = ready.wait(st).expect("wave condvar");
                    }
                };
                match unit {
                    Unit::Anneal(mi) => {
                        let ap = anneal_point(kinds[mi], case, k, e0s[mi], warm[mi], inner, opts);
                        assert!(annealed[mi].set(ap).is_ok(), "each model annealed once");
                        let mut st = state.lock().expect("wave mutex");
                        st.queue
                            .extend((1..opts.replications).map(|r| Unit::Rep(mi, r)));
                        st.done += 1;
                        ready.notify_all();
                    }
                    Unit::Rep(mi, r) => {
                        let ap = annealed[mi].get().expect("rep enqueued after its anneal");
                        let out = run_replication(ap, kinds[mi], opts, r);
                        *rep_slots[mi][r - 1].lock().expect("rep slot") = Some(out);
                        let mut st = state.lock().expect("wave mutex");
                        st.done += 1;
                        if st.done >= total {
                            ready.notify_all();
                        }
                    }
                }
            });
        }
    });

    // Deterministic fold: ascending model, then ascending replication.
    annealed
        .into_iter()
        .enumerate()
        .map(|(mi, slot)| {
            let ap = slot.into_inner().expect("every model annealed");
            let reps: Vec<RepOutcome> = rep_slots[mi]
                .iter()
                .map(|s| {
                    s.lock()
                        .expect("rep slot")
                        .take()
                        .expect("every replication ran")
                })
                .collect();
            finish_point(kinds[mi], case, k, e0s[mi], ap, reps, opts)
        })
        .collect()
}

/// Tunes one `(model, case, k)` point in isolation (no warm start) — the
/// single-point entry kept for ad-hoc probes and benchmarks; sweeps go
/// through [`measure_rms`]/[`measure_all`], which add the cross-scale
/// warm-start wave schedule.
pub fn tune_point(
    kind: RmsKind,
    case: CaseId,
    k: u32,
    e0: f64,
    opts: &MeasureOptions,
) -> CurvePoint {
    let threads = if opts.threads == 0 {
        default_threads(opts.batch.max(1))
    } else {
        opts.threads
    };
    tune_point_inner(kind, case, k, e0, None, threads, opts).point
}

/// Measures the full scalability curve of one RMS model along one case —
/// the complete four-step procedure.
pub fn measure_rms(kind: RmsKind, case: CaseId, opts: &MeasureOptions) -> ScalabilityCurve {
    measure_rms_with_bench(kind, case, opts).0
}

/// [`measure_rms`] plus the per-point tuning telemetry.
pub fn measure_rms_with_bench(
    kind: RmsKind,
    case: CaseId,
    opts: &MeasureOptions,
) -> (ScalabilityCurve, TuningBench) {
    let (mut curves, bench) = measure_all_with_bench(&[kind], case, opts);
    (curves.pop().expect("one model measured"), bench)
}

/// Measures several models along one case.
pub fn measure_all(
    kinds: &[RmsKind],
    case: CaseId,
    opts: &MeasureOptions,
) -> Vec<ScalabilityCurve> {
    measure_all_with_bench(kinds, case, opts).0
}

/// Measures several models along one case on the two-level schedule:
/// ascending-`k` *waves* × models. Within a wave every model's point is
/// tuned concurrently — and with `replications > 1` each replication is
/// its own work unit, so one model's replication fan-out overlaps other
/// models' annealing ([`tune_wave`]) — while inside each point the
/// batched annealer runs its speculative evaluations concurrently; across
/// waves, each point warm-starts from the best enabler setting the same
/// model found at the nearest smaller `k` (when
/// [`MeasureOptions::warm_start`] is set).
///
/// Results are bit-identical for any `threads` setting at a fixed seed:
/// waves are a sequential dependency chain, the wave scheduler folds its
/// units in ascending `(model, replication)` order regardless of which
/// worker ran them, and the annealer itself is thread-invariant.
pub fn measure_all_with_bench(
    kinds: &[RmsKind],
    case: CaseId,
    opts: &MeasureOptions,
) -> (Vec<ScalabilityCurve>, TuningBench) {
    assert!(!opts.ks.is_empty(), "need at least one scale factor");
    let threads = if opts.threads == 0 {
        default_threads(kinds.len().max(1) * opts.batch.max(1))
    } else {
        opts.threads
    };
    // Split the worker budget across the two levels: wave work units
    // (model anneals *and* their replications) on the outside, speculative
    // annealing batches on the inside. With replications the wave has
    // `models × replications` units, so extra workers go to the outer
    // queue where they can drain replication fan-out.
    let units = kinds.len().max(1) * opts.replications.max(1);
    let outer = threads.min(units).max(1);
    let inner = (threads / outer).max(1);

    // Step 1 per model (parallel): resolve each model's target efficiency.
    let e0s = parallel_map(kinds, threads.max(1), |&kind| resolve_e0(kind, case, opts));

    // Ascending-k waves so warm seeds always come from a smaller scale.
    let mut ks = opts.ks.clone();
    ks.sort_unstable();

    let mut curves: Vec<ScalabilityCurve> = kinds
        .iter()
        .zip(&e0s)
        .map(|(&kind, &e0)| ScalabilityCurve {
            kind,
            case,
            e0,
            points: Vec::with_capacity(ks.len()),
        })
        .collect();
    let mut warm: Vec<Option<[usize; 4]>> = vec![None; kinds.len()];
    let mut bench = TuningBench::default();

    for &k in &ks {
        let tuned = tune_wave(kinds, case, k, &e0s, &warm, outer, inner, opts);
        // Single pass, moving each point into its model's curve — grouping
        // is O(points), no re-scans, no clones.
        for (mi, t) in tuned.into_iter().enumerate() {
            if opts.warm_start {
                warm[mi] = Some(t.best_idx);
            }
            bench.points.push(t.bench);
            curves[mi].points.push(t.point);
        }
    }
    (curves, bench)
}

/// Times one point's replication fan-out both ways — the
/// [`RepProbe`] behind `BENCH_tuning.json`'s `replication` block.
///
/// The *fresh-sequential* arm is the historical behavior: every extra
/// replication re-roots a new template (topology + trace rebuilt from
/// the forked seed) and replays on one thread. The *shared-parallel* arm
/// replays the one `Arc`'d world with per-replication simulation streams,
/// fanned over `threads` workers. Both arms replay the point's default
/// enabler setting, so the probe isolates replication cost from
/// annealing cost.
pub fn probe_replication_speedup(
    kind: RmsKind,
    case: CaseId,
    k: u32,
    replications: usize,
    threads: usize,
    opts: &MeasureOptions,
) -> RepProbe {
    assert!(replications >= 1, "need at least one replication");
    let seed = point_seed(opts.seed, kind, case, k);
    let cfg = point_config(kind, case, k, opts);
    let template = SimTemplate::new(&cfg);
    let enablers = cfg.enablers;

    // audit:allow(wall-clock, reason="benchmark arm timing only; never feeds sim state")
    let started = Instant::now();
    let mut g_fresh = Vec::with_capacity(replications);
    g_fresh.push(replay(&template, enablers, kind, opts).g_overhead);
    for i in 1..replications {
        let rep_seed = SimRng::new(seed).fork(1000 + i as u64).seed();
        let rep_template = template.fresh_replica(rep_seed);
        g_fresh.push(replay(&rep_template, enablers, kind, opts).g_overhead);
    }
    let fresh_sequential_ms = started.elapsed().as_secs_f64() * 1e3;

    let reps: Vec<usize> = (0..replications).collect();
    // audit:allow(wall-clock, reason="benchmark arm timing only; never feeds sim state")
    let started = Instant::now();
    let g_shared = parallel_map(&reps, threads.max(1), |&r| {
        if r == 0 {
            replay(&template, enablers, kind, opts).g_overhead
        } else {
            replay_rep(&template, enablers, kind, opts, r as u64).g_overhead
        }
    });
    let shared_parallel_ms = started.elapsed().as_secs_f64() * 1e3;

    let fresh_stats = rep_stats(&g_fresh);
    let shared_stats = rep_stats(&g_shared);
    RepProbe {
        kind,
        case,
        k,
        replications,
        threads,
        fresh_sequential_ms,
        shared_parallel_ms,
        speedup: fresh_sequential_ms / shared_parallel_ms.max(1e-9),
        fresh_templates_built: replications as u64,
        shared_templates_built: 1,
        g_mean_fresh: fresh_stats.mean,
        g_mean_shared: shared_stats.mean,
        g_ci_shared: shared_stats.ci_half,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-sized options: tiny horizons, two scales, few SA iterations.
    fn smoke_opts() -> MeasureOptions {
        MeasureOptions {
            ks: vec![1, 2],
            anneal: AnnealConfig {
                iterations: 5,
                ..AnnealConfig::default()
            },
            duration_override: Some(SimTime::from_ticks(8_000)),
            drain_override: Some(SimTime::from_ticks(10_000)),
            threads: 2,
            ..MeasureOptions::default()
        }
    }

    #[test]
    fn measure_produces_sorted_feasibility_annotated_points() {
        let curve = measure_rms(RmsKind::Lowest, CaseId::NetworkSize, &smoke_opts());
        assert_eq!(curve.points.len(), 2);
        assert_eq!(curve.points[0].k, 1);
        assert_eq!(curve.points[1].k, 2);
        for p in &curve.points {
            assert!(p.g > 0.0, "k={}: G must be positive", p.k);
            assert!(p.f > 0.0, "k={}: F must be positive", p.k);
            assert!(p.evaluations >= 1);
            assert!(p.report.completed > 0);
        }
    }

    #[test]
    fn measurement_is_deterministic() {
        let opts = smoke_opts();
        let a = measure_rms(RmsKind::Central, CaseId::ServiceRate, &opts);
        let b = measure_rms(RmsKind::Central, CaseId::ServiceRate, &opts);
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.g, pb.g);
            assert_eq!(pa.enablers, pb.enablers);
            assert_eq!(pa.efficiency, pb.efficiency);
        }
    }

    #[test]
    fn thread_count_does_not_change_curves() {
        let mut seq = smoke_opts();
        seq.threads = 1;
        let mut par = smoke_opts();
        par.threads = 8;
        let a = measure_rms(RmsKind::Lowest, CaseId::NetworkSize, &seq);
        let b = measure_rms(RmsKind::Lowest, CaseId::NetworkSize, &par);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "threads=1 and threads=8 must agree bit-for-bit"
        );
    }

    #[test]
    fn shard_count_does_not_change_curves() {
        // The sharded executor is bit-identical to the sequential one, so
        // a measurement's shards knob must be invisible in its results.
        let mut seq = smoke_opts();
        seq.threads = 1;
        seq.shards = 1;
        let mut sharded = smoke_opts();
        sharded.threads = 1;
        sharded.shards = 3;
        let a = measure_rms(RmsKind::Lowest, CaseId::NetworkSize, &seq);
        let b = measure_rms(RmsKind::Lowest, CaseId::NetworkSize, &sharded);
        assert_eq!(a.e0.to_bits(), b.e0.to_bits());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.g.to_bits(), pb.g.to_bits(), "k={}", pa.k);
            assert_eq!(pa.enablers, pb.enablers, "k={}", pa.k);
            assert_eq!(pa.efficiency.to_bits(), pb.efficiency.to_bits());
            assert_eq!(
                pa.report.event_fingerprint, pb.report.event_fingerprint,
                "k={}",
                pa.k
            );
        }
    }

    #[test]
    fn curve_derivations_work() {
        let curve = measure_rms(RmsKind::Lowest, CaseId::NetworkSize, &smoke_opts());
        let slopes = curve.g_slopes();
        assert_eq!(slopes.len(), 1);
        let norm = curve.normalized();
        assert_eq!(norm[0].f, 1.0);
        assert_eq!(norm[0].g, 1.0);
        let verdict = curve.verdict();
        assert_eq!(verdict.condition.len(), 1);
    }

    #[test]
    fn measure_all_groups_by_kind() {
        let curves = measure_all(
            &[RmsKind::Central, RmsKind::Lowest],
            CaseId::NetworkSize,
            &smoke_opts(),
        );
        assert_eq!(curves.len(), 2);
        assert_eq!(curves[0].kind, RmsKind::Central);
        assert_eq!(curves[1].kind, RmsKind::Lowest);
        assert!(curves.iter().all(|c| c.points.len() == 2));
    }

    #[test]
    fn bench_telemetry_tracks_every_point() {
        let opts = smoke_opts();
        let (curves, bench) = measure_all_with_bench(
            &[RmsKind::Central, RmsKind::Lowest],
            CaseId::NetworkSize,
            &opts,
        );
        assert_eq!(bench.points.len(), 2 * opts.ks.len());
        for pb in &bench.points {
            assert!(pb.wall_ms >= 0.0);
            assert!(pb.evaluations >= 1);
            assert_eq!(pb.iterations_budget, opts.anneal.iterations);
            assert!(
                pb.rounds < pb.iterations_budget,
                "batch={} must compress rounds below the budget ({} !< {})",
                opts.batch,
                pb.rounds,
                pb.iterations_budget
            );
        }
        // Waves: k=1 points are cold, k=2 points are warm-started.
        assert!(bench
            .points
            .iter()
            .filter(|p| p.k == 1)
            .all(|p| !p.warm_started));
        assert!(bench
            .points
            .iter()
            .filter(|p| p.k == 2)
            .all(|p| p.warm_started));
        assert!(curves.iter().all(|c| c.points.len() == 2));
        // Telemetry serializes (the CLI writes it to BENCH_tuning.json).
        let s = serde_json::to_string(&bench).unwrap();
        let back: TuningBench = serde_json::from_str(&s).unwrap();
        assert_eq!(back.points.len(), bench.points.len());
        assert_eq!(back.total_evaluations(), bench.total_evaluations());
    }

    #[test]
    fn point_seeds_differ_across_identity() {
        let a = point_seed(1, RmsKind::Central, CaseId::NetworkSize, 1);
        let b = point_seed(1, RmsKind::Central, CaseId::NetworkSize, 2);
        let c = point_seed(1, RmsKind::Lowest, CaseId::NetworkSize, 1);
        let d = point_seed(1, RmsKind::Central, CaseId::ServiceRate, 1);
        assert!(a != b && a != c && a != d && b != c);
    }

    #[test]
    fn serde_roundtrip_of_curve() {
        let curve = measure_rms(RmsKind::Central, CaseId::NetworkSize, &smoke_opts());
        let s = serde_json::to_string(&curve).unwrap();
        let back: ScalabilityCurve = serde_json::from_str(&s).unwrap();
        assert_eq!(back.points.len(), curve.points.len());
        assert_eq!(back.points[0].g, curve.points[0].g);
    }

    #[test]
    fn options_deserialize_without_new_fields() {
        // Pre-wave-schedule option files (no batch/warm_start keys) still
        // load, with the new knobs at their defaults.
        let mut v = serde_json::to_value(MeasureOptions::default()).unwrap();
        let obj = v.as_object_mut().unwrap();
        obj.remove("batch");
        obj.remove("warm_start");
        obj.remove("shards");
        obj.remove("bandwidth");
        let opts: MeasureOptions = serde_json::from_value(v).unwrap();
        assert_eq!(opts.batch, default_batch());
        assert!(opts.warm_start);
        assert_eq!(opts.shards, default_shards());
        assert!(opts.bandwidth.is_none());
    }

    #[test]
    fn bandwidth_override_reaches_every_point_config() {
        let mut opts = smoke_opts();
        opts.bandwidth = Some(gridscale_gridsim::BandwidthConfig {
            enabled: true,
            capacity_scale: 0.1,
            k_paths: 2,
        });
        for case in CaseId::WITH_BANDWIDTH {
            let cfg = point_config(RmsKind::Lowest, case, 2, &opts);
            assert!(cfg.bandwidth.enabled, "{case:?}");
            assert_eq!(cfg.bandwidth.capacity_scale, 0.1, "{case:?}");
        }
        // Without the override, Case 5 keeps its own 1/k default and the
        // paper cases keep the legacy model.
        opts.bandwidth = None;
        assert!(
            !point_config(RmsKind::Lowest, CaseId::Lp, 2, &opts)
                .bandwidth
                .enabled
        );
        let c5 = point_config(RmsKind::Lowest, CaseId::Bandwidth, 2, &opts);
        assert!(c5.bandwidth.enabled);
        assert_eq!(c5.bandwidth.capacity_scale, 0.5);
    }

    #[test]
    fn fresh_world_replications_match_the_historical_rebuild_loop() {
        // The pre-wave sequential loop cloned the whole GridConfig,
        // overwrote its seed with fork(1000 + i), and rebuilt a template
        // from scratch; `fresh_replica` must be its exact equivalent
        // minus the clone.
        let opts = smoke_opts();
        let (kind, case, k) = (RmsKind::Lowest, CaseId::NetworkSize, 2);
        let cfg = point_config(kind, case, k, &opts);
        let template = SimTemplate::new(&cfg);
        let rep_seed = SimRng::new(point_seed(opts.seed, kind, case, k))
            .fork(1001)
            .seed();
        let via_replica = template.fresh_replica(rep_seed);
        let mut rep_cfg = cfg.clone();
        rep_cfg.seed = rep_seed;
        let via_clone = SimTemplate::new(&rep_cfg);
        let ra = replay(&via_replica, cfg.enablers, kind, &opts);
        let rb = replay(&via_clone, cfg.enablers, kind, &opts);
        assert_eq!(ra.event_fingerprint, rb.event_fingerprint);
        assert_eq!(ra.g_overhead.to_bits(), rb.g_overhead.to_bits());
        assert_eq!(ra.efficiency.to_bits(), rb.efficiency.to_bits());
    }

    #[test]
    fn shared_world_replications_differ_in_streams_but_reproduce() {
        let mut opts = smoke_opts();
        opts.replication_mode = ReplicationMode::SharedWorld;
        let cfg = point_config(RmsKind::Lowest, CaseId::NetworkSize, 2, &opts);
        let template = SimTemplate::new(&cfg);
        let r0 = replay(&template, cfg.enablers, RmsKind::Lowest, &opts);
        let r1 = replay_rep(&template, cfg.enablers, RmsKind::Lowest, &opts, 1);
        let r2 = replay_rep(&template, cfg.enablers, RmsKind::Lowest, &opts, 2);
        // Distinct simulation streams → distinct event histories…
        assert_ne!(r0.event_fingerprint, r1.event_fingerprint);
        assert_ne!(r1.event_fingerprint, r2.event_fingerprint);
        // …but each replication index is itself deterministic.
        let r1b = replay_rep(&template, cfg.enablers, RmsKind::Lowest, &opts, 1);
        assert_eq!(r1.event_fingerprint, r1b.event_fingerprint);
        assert_eq!(r1.g_overhead.to_bits(), r1b.g_overhead.to_bits());
    }

    #[test]
    fn sharded_replications_match_sequential_replications() {
        // Satellite of the shard executor's bit-identity guarantee:
        // routing a replication replay through shards must not change
        // its event history.
        let mut seq = smoke_opts();
        seq.shards = 1;
        seq.replication_mode = ReplicationMode::SharedWorld;
        let mut sharded = seq.clone();
        sharded.shards = 3;
        let kind = RmsKind::Lowest;
        let cfg = point_config(kind, CaseId::NetworkSize, 2, &seq);
        let template = SimTemplate::new(&cfg);
        for rep in 1..4u64 {
            let a = replay_rep(&template, cfg.enablers, kind, &seq, rep);
            let b = replay_rep(&template, cfg.enablers, kind, &sharded, rep);
            assert_eq!(a.event_fingerprint, b.event_fingerprint, "rep {rep}");
            assert_eq!(a.g_overhead.to_bits(), b.g_overhead.to_bits(), "rep {rep}");
        }
    }

    #[test]
    fn wave_scheduler_is_thread_invariant_with_replications() {
        let mut base = smoke_opts();
        base.replications = 3;
        base.replication_mode = ReplicationMode::SharedWorld;
        let mut seq = base.clone();
        seq.threads = 1;
        let mut par = base;
        par.threads = 8;
        let kinds = [RmsKind::Central, RmsKind::Lowest];
        let a = measure_all(&kinds, CaseId::NetworkSize, &seq);
        let b = measure_all(&kinds, CaseId::NetworkSize, &par);
        for (ca, cb) in a.iter().zip(&b) {
            for (pa, pb) in ca.points.iter().zip(&cb.points) {
                assert_eq!(pa.g.to_bits(), pb.g.to_bits(), "k={}", pa.k);
                assert_eq!(pa.g_ci.to_bits(), pb.g_ci.to_bits(), "k={}", pa.k);
                assert_eq!(pa.f_ci.to_bits(), pb.f_ci.to_bits(), "k={}", pa.k);
                assert_eq!(
                    pa.efficiency_ci.to_bits(),
                    pb.efficiency_ci.to_bits(),
                    "k={}",
                    pa.k
                );
                assert_eq!(pa.enablers, pb.enablers, "k={}", pa.k);
                assert_eq!(pa.report.event_fingerprint, pb.report.event_fingerprint);
            }
        }
    }

    #[test]
    fn verdicts_carry_cis_and_confidence() {
        let mut opts = smoke_opts();
        opts.replications = 3;
        opts.replication_mode = ReplicationMode::SharedWorld;
        let curve = measure_rms(RmsKind::Lowest, CaseId::NetworkSize, &opts);
        for p in &curve.points {
            assert_eq!(p.replications, 3);
            assert!(p.g_ci >= 0.0 && p.f_ci >= 0.0 && p.h_ci >= 0.0);
            assert!(p.efficiency_ci >= 0.0);
        }
        let v = curve.verdict();
        assert_eq!(v.margin_cis.len(), v.condition.len());
        assert_eq!(v.confidence.len(), v.condition.len());
        assert!(v.robust_count() <= v.confidence.len());
    }

    #[test]
    fn single_replication_cis_are_zero() {
        let curve = measure_rms(RmsKind::Lowest, CaseId::NetworkSize, &smoke_opts());
        for p in &curve.points {
            assert_eq!(p.g_ci, 0.0);
            assert_eq!(p.f_ci, 0.0);
            assert_eq!(p.h_ci, 0.0);
            assert_eq!(p.efficiency_ci, 0.0);
        }
        let v = curve.verdict();
        assert!(v.margin_cis.iter().all(|&(_, hw)| hw == 0.0));
        assert_eq!(v.robust_count(), v.confidence.len());
    }

    #[test]
    fn bench_counts_templates_and_rep_time_by_mode() {
        let mut fresh = smoke_opts();
        fresh.replications = 3;
        let (_, bf) = measure_all_with_bench(&[RmsKind::Lowest], CaseId::NetworkSize, &fresh);
        assert!(bf.points.iter().all(|p| p.templates_built == 3));
        let mut shared = fresh.clone();
        shared.replication_mode = ReplicationMode::SharedWorld;
        let (_, bs) = measure_all_with_bench(&[RmsKind::Lowest], CaseId::NetworkSize, &shared);
        assert!(bs.points.iter().all(|p| p.templates_built == 1));
        assert!(bs.points.iter().all(|p| p.rep_wall_ms >= 0.0));
        assert!(bs.points.iter().all(|p| p.wall_ms >= p.rep_wall_ms));
    }

    #[test]
    fn replication_probe_reports_costs_and_stats() {
        let opts = smoke_opts();
        let probe = probe_replication_speedup(RmsKind::Lowest, CaseId::NetworkSize, 2, 4, 2, &opts);
        assert_eq!(probe.replications, 4);
        assert_eq!(probe.threads, 2);
        assert_eq!(probe.fresh_templates_built, 4);
        assert_eq!(probe.shared_templates_built, 1);
        assert!(probe.g_mean_fresh > 0.0);
        assert!(probe.g_mean_shared > 0.0);
        assert!(probe.g_ci_shared >= 0.0);
        assert!(probe.speedup > 0.0);
        assert!(probe.fresh_sequential_ms >= 0.0 && probe.shared_parallel_ms >= 0.0);
    }
}

#[cfg(test)]
mod verdict_tests {
    use super::*;
    use gridscale_gridsim::{Enablers, SimReport};

    fn point(k: u32, g: f64, f: f64) -> CurvePoint {
        CurvePoint {
            k,
            g,
            f,
            h: 0.0,
            efficiency: 0.4,
            g_ci: 0.0,
            f_ci: 0.0,
            h_ci: 0.0,
            efficiency_ci: 0.0,
            feasible: true,
            enablers: Enablers::default(),
            evaluations: 1,
            replications: 1,
            report: SimReport::default(),
        }
    }

    fn curve(points: Vec<CurvePoint>) -> ScalabilityCurve {
        ScalabilityCurve {
            kind: RmsKind::Lowest,
            case: CaseId::NetworkSize,
            e0: 0.4,
            points,
        }
    }

    #[test]
    fn perfectly_linear_growth_is_scalable() {
        // g(k) = f(k) = k: condition f > c·g with c = g0/((α−1)f0)…
        // with E0 = 0.4 and base (f=10, g=15): c = 15/(1.5·10) = 1.
        // f(k) > g(k) fails at equality; make f slightly faster.
        let c = curve(vec![
            point(1, 15.0, 10.0),
            point(2, 28.0, 21.0),
            point(3, 40.0, 32.0),
        ]);
        let v = c.verdict();
        assert_eq!(v.scalable_through, Some(3));
        assert!(v.condition.iter().all(|(_, ok)| *ok));
    }

    #[test]
    fn overhead_explosion_fails_from_first_violation() {
        let c = curve(vec![
            point(1, 15.0, 10.0),
            point(2, 28.0, 21.0), // fine
            point(3, 90.0, 30.0), // g ×6 vs f ×3: fails (6 > 3)
            point(4, 60.0, 45.0), // passes again (g 4 < f 4.5), but the prefix broke
        ]);
        let v = c.verdict();
        assert_eq!(v.scalable_through, Some(2));
        assert_eq!(
            v.condition.iter().map(|(_, ok)| *ok).collect::<Vec<_>>(),
            vec![true, false, true]
        );
    }

    #[test]
    fn immediate_failure_reports_none() {
        let c = curve(vec![point(1, 15.0, 10.0), point(2, 60.0, 12.0)]);
        assert_eq!(c.verdict().scalable_through, None);
    }

    #[test]
    fn g_curve_and_slopes_align() {
        let c = curve(vec![
            point(1, 10.0, 1.0),
            point(3, 30.0, 3.0),
            point(6, 30.0, 6.0),
        ]);
        assert_eq!(c.g_curve(), vec![(1.0, 10.0), (3.0, 30.0), (6.0, 30.0)]);
        assert_eq!(c.g_slopes(), vec![10.0, 0.0]);
    }

    #[test]
    fn normalized_base_is_unity() {
        let c = curve(vec![point(1, 15.0, 10.0), point(2, 30.0, 20.0)]);
        let n = c.normalized();
        assert_eq!((n[0].f, n[0].g), (1.0, 1.0));
        assert_eq!((n[1].f, n[1].g), (2.0, 2.0));
    }
}
