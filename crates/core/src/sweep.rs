//! Deterministic parallel execution of experiment grids.
//!
//! Scalability sweeps are embarrassingly parallel over `(model, k)` points
//! and each point owns its entire simulator state, so a scoped-thread
//! work-stealing map is all that is needed: no shared mutable simulation
//! state, results written into pre-indexed slots.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item, using up to `threads` worker threads, and
/// returns the results **in input order** (unlike channel-based gathering,
/// output order does not depend on scheduling).
///
/// `threads == 1` degenerates to a plain sequential map, which is handy
/// for debugging nondeterminism suspicions.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(threads >= 1, "need at least one worker");
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if threads == 1 || n == 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let workers = threads.min(n);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock() = Some(r);
            });
        }
    })
    .expect("worker thread panicked");

    slots
        .into_iter()
        .map(|m| m.into_inner().expect("every slot filled"))
        .collect()
}

/// A fixed-width evaluation pool for expensive, pure objective functions.
///
/// This is the concurrency handle the batched annealer holds: it pins the
/// worker count once so every evaluation round uses the same width, and it
/// guarantees input-order results (via [`parallel_map`]) so the caller's
/// decision logic is independent of scheduling — the foundation of the
/// `threads=1 ≡ threads=N` determinism contract.
#[derive(Debug, Clone, Copy)]
pub struct EnergyPool {
    threads: usize,
}

impl EnergyPool {
    /// Creates a pool with `threads` workers (`0` is clamped to 1).
    pub fn new(threads: usize) -> Self {
        EnergyPool {
            threads: threads.max(1),
        }
    }

    /// The worker width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluates `f` over `items` concurrently, returning results in input
    /// order.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        parallel_map(items, self.threads, f)
    }
}

/// A sensible worker count for sweeps: the machine's available parallelism
/// capped at `cap`.
pub fn default_threads(cap: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(cap.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * x);
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..37).collect();
        let seq = parallel_map(&items, 1, |&x| x.wrapping_mul(0x9E3779B9) >> 7);
        let par = parallel_map(&items, 6, |&x| x.wrapping_mul(0x9E3779B9) >> 7);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[42u32], 4, |&x| x + 1), vec![43]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1u32, 2, 3];
        assert_eq!(parallel_map(&items, 64, |&x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn all_workers_participate_eventually() {
        // Smoke test that the atomic work counter hands out every index
        // exactly once even under contention.
        let items: Vec<usize> = (0..500).collect();
        let out = parallel_map(&items, 16, |&x| x);
        assert_eq!(out, items);
    }

    #[test]
    fn energy_pool_maps_in_order_and_clamps_width() {
        let pool = EnergyPool::new(0);
        assert_eq!(pool.threads(), 1);
        let wide = EnergyPool::new(8);
        let items: Vec<i64> = (0..40).collect();
        assert_eq!(
            wide.map(&items, |&x| x * 3),
            items.iter().map(|x| x * 3).collect::<Vec<_>>()
        );
    }

    #[test]
    fn default_threads_capped() {
        assert!(default_threads(4) <= 4);
        assert!(default_threads(1) == 1);
        assert!(default_threads(usize::MAX) >= 1);
    }
}
