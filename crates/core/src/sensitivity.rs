//! Sensitivity of scalability verdicts to the overhead cost model.
//!
//! The paper does not publish its per-operation cost constants, so ours
//! are re-derived (DESIGN.md §2.1). This module answers the obvious
//! referee question — *do the conclusions survive if those constants are
//! wrong by 2×?* — by re-running a (reduced) measurement with each cost
//! parameter perturbed and comparing the Eq. (2) verdicts.

use crate::cases::CaseId;
use crate::measure::{measure_rms, MeasureOptions};
use crate::sweep::parallel_map;
use gridscale_gridsim::OverheadCosts;
use gridscale_rms::RmsKind;
use serde::{Deserialize, Serialize};

/// The perturbable parameters of [`OverheadCosts`].
pub const PARAMETERS: [&str; 8] = [
    "recv_job",
    "decision_base",
    "decision_per_candidate",
    "update",
    "batch_fixed",
    "policy_msg",
    "dispatch",
    "timer_check",
];

/// Returns `base` with one named parameter multiplied by `factor`.
/// Panics on an unknown parameter name.
pub fn perturb(base: &OverheadCosts, parameter: &str, factor: f64) -> OverheadCosts {
    let mut c = *base;
    match parameter {
        "recv_job" => c.recv_job *= factor,
        "decision_base" => c.decision_base *= factor,
        "decision_per_candidate" => c.decision_per_candidate *= factor,
        "update" => c.update *= factor,
        "batch_fixed" => c.batch_fixed *= factor,
        "batch_per_item" => c.batch_per_item *= factor,
        "policy_msg" => c.policy_msg *= factor,
        "dispatch" => c.dispatch *= factor,
        "timer_check" => c.timer_check *= factor,
        "rp_job_control" => c.rp_job_control *= factor,
        other => panic!("unknown cost parameter '{other}'"),
    }
    c
}

/// One sensitivity observation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensitivityRow {
    /// Perturbed parameter (`"baseline"` for the unperturbed run).
    pub parameter: String,
    /// Multiplier applied.
    pub factor: f64,
    /// Eq. (2) `scalable_through` under the perturbation.
    pub scalable_through: Option<u32>,
    /// Worst (most negative) Eq. (2) margin across scales.
    pub worst_margin: f64,
    /// `G(k_max)/G(k_0)` growth under the perturbation.
    pub g_growth: f64,
}

/// Runs the sensitivity sweep: baseline plus every `(parameter, factor)`
/// combination, in parallel. Each run is a full (typically reduced-size)
/// measurement of `(kind, case)`.
pub fn cost_sensitivity(
    kind: RmsKind,
    case: CaseId,
    base_opts: &MeasureOptions,
    factors: &[f64],
) -> Vec<SensitivityRow> {
    let mut jobs: Vec<(String, f64, MeasureOptions)> =
        vec![("baseline".to_string(), 1.0, base_opts.clone())];
    let base_costs = base_opts.cost_override.unwrap_or_default();
    for &p in PARAMETERS.iter() {
        for &f in factors {
            let mut opts = base_opts.clone();
            opts.cost_override = Some(perturb(&base_costs, p, f));
            jobs.push((p.to_string(), f, opts));
        }
    }
    // Each job already parallelizes over k internally; run rows serially
    // per worker to bound memory.
    parallel_map(&jobs, base_opts.threads.max(1), |(name, factor, opts)| {
        let curve = measure_rms(kind, case, opts);
        let v = curve.verdict();
        let worst = v
            .margins
            .iter()
            .map(|&(_, m)| m)
            .fold(f64::INFINITY, f64::min);
        let g0 = curve.points.first().map(|p| p.g).unwrap_or(1.0);
        let gn = curve.points.last().map(|p| p.g).unwrap_or(1.0);
        SensitivityRow {
            parameter: name.clone(),
            factor: *factor,
            scalable_through: v.scalable_through,
            worst_margin: if worst.is_finite() { worst } else { 0.0 },
            g_growth: gn / g0.max(1e-12),
        }
    })
}

/// Fraction of perturbed rows whose `scalable_through` verdict equals the
/// baseline's — a one-number robustness summary.
pub fn verdict_stability(rows: &[SensitivityRow]) -> f64 {
    let Some(base) = rows.iter().find(|r| r.parameter == "baseline") else {
        return 0.0;
    };
    let perturbed: Vec<&SensitivityRow> =
        rows.iter().filter(|r| r.parameter != "baseline").collect();
    if perturbed.is_empty() {
        return 1.0;
    }
    perturbed
        .iter()
        .filter(|r| r.scalable_through == base.scalable_through)
        .count() as f64
        / perturbed.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anneal::AnnealConfig;
    use gridscale_desim::SimTime;

    #[test]
    fn perturb_touches_exactly_one_field() {
        let base = OverheadCosts::default();
        let p = perturb(&base, "update", 2.0);
        assert_eq!(p.update, base.update * 2.0);
        assert_eq!(p.recv_job, base.recv_job);
        assert_eq!(p.policy_msg, base.policy_msg);
        for name in PARAMETERS {
            let _ = perturb(&base, name, 0.5); // all names resolve
        }
    }

    #[test]
    #[should_panic]
    fn unknown_parameter_panics() {
        perturb(&OverheadCosts::default(), "nonsense", 2.0);
    }

    #[test]
    fn sensitivity_sweep_runs_and_summarizes() {
        let opts = MeasureOptions {
            ks: vec![1, 2],
            anneal: AnnealConfig {
                iterations: 3,
                ..AnnealConfig::default()
            },
            duration_override: Some(SimTime::from_ticks(6_000)),
            drain_override: Some(SimTime::from_ticks(6_000)),
            threads: 2,
            ..MeasureOptions::default()
        };
        let rows = cost_sensitivity(RmsKind::Central, CaseId::NetworkSize, &opts, &[2.0]);
        // baseline + 8 parameters × 1 factor.
        assert_eq!(rows.len(), 1 + PARAMETERS.len());
        assert!(rows.iter().any(|r| r.parameter == "baseline"));
        for r in &rows {
            assert!(r.g_growth > 0.0, "{}: growth {}", r.parameter, r.g_growth);
        }
        let stability = verdict_stability(&rows);
        assert!((0.0..=1.0).contains(&stability));
    }

    #[test]
    fn stability_of_empty_and_missing_baseline() {
        assert_eq!(verdict_stability(&[]), 0.0);
        let only_base = vec![SensitivityRow {
            parameter: "baseline".into(),
            factor: 1.0,
            scalable_through: Some(2),
            worst_margin: 0.1,
            g_growth: 2.0,
        }];
        assert_eq!(verdict_stability(&only_base), 1.0);
    }
}
