//! # gridscale-gridsim
//!
//! The managed-Grid simulation model of the paper's §3.1, built on
//! [`gridscale_desim`]:
//!
//! * a **resource pool (RP)** — the *managee*: homogeneous resources with
//!   finite service rate executing a synthetic workload FIFO;
//! * a **resource management system (RMS)** — the *manager*: per-cluster
//!   schedulers (and, for Case 3, status *estimators*) modelled as
//!   single-server FIFO queues whose busy time **is** the RMS overhead
//!   `G(k)`;
//! * **status dissemination** — resources push periodic load updates
//!   (interval τ, with change-suppression as in the paper: "an update might
//!   be suppressed"), optionally via estimators that batch-forward;
//! * **message transport** — every message is routed over the topology and
//!   delayed by propagation (scaled by the link-delay enabler) plus
//!   transmission, with an optional middleware queueing stage for the
//!   S-I/R-I/Sy-I family;
//! * **accounting** — useful work `F` (service demand of jobs that finish
//!   within their `U_b` benefit deadline), RMS overhead `G` (scheduler +
//!   estimator busy time), RP overhead `H` (per-job control cost), and the
//!   efficiency `E = F/(F+G+H)`.
//!
//! RMS *policies* (CENTRAL, LOWEST, … — crate `gridscale-rms`) plug in via
//! the [`Policy`] trait; this crate is policy-agnostic machinery.

#![warn(missing_docs)]

mod config;
mod msg;
mod policy;
mod report;
mod sim;
pub mod timeline;
mod view;

pub use config::{Enablers, GridConfig, OverheadCosts, Thresholds, TopologySpec};
pub use msg::{Msg, PolicyMsg};
pub use policy::{LocalOnly, Policy};
pub use report::SimReport;
pub use sim::{run_simulation, Ctx, GridEvent, GridSim, ReplayStats, SimTemplate, WorkItem};
pub use timeline::{Sample, Timeline};
pub use view::{ClusterView, ResourceView};
