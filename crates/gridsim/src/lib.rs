//! # gridscale-gridsim
//!
//! The managed-Grid simulation model of the paper's §3.1, built on
//! [`gridscale_desim`]:
//!
//! * a **resource pool (RP)** — the *managee*: homogeneous resources with
//!   finite service rate executing a synthetic workload FIFO;
//! * a **resource management system (RMS)** — the *manager*: per-cluster
//!   schedulers (and, for Case 3, status *estimators*) modelled as
//!   single-server FIFO queues whose busy time **is** the RMS overhead
//!   `G(k)`;
//! * **status dissemination** — resources push periodic load updates
//!   (interval τ, with change-suppression as in the paper: "an update might
//!   be suppressed"), optionally via estimators that batch-forward;
//! * **message transport** — every message is routed over the topology and
//!   delayed by propagation (scaled by the link-delay enabler) plus
//!   transmission, with an optional middleware queueing stage for the
//!   S-I/R-I/Sy-I family;
//! * **accounting** — useful work `F` (service demand of jobs that finish
//!   within their `U_b` benefit deadline), RMS overhead `G` (scheduler +
//!   estimator busy time), RP overhead `H` (per-job control cost), and the
//!   efficiency `E = F/(F+G+H)`.
//!
//! RMS *policies* (CENTRAL, LOWEST, … — crate `gridscale-rms`) plug in via
//! the [`Policy`] trait; this crate is policy-agnostic machinery.
//!
//! # Module map
//!
//! Each subsystem owns its slice of the per-run state and communicates
//! with the others only through the shared event queue:
//!
//! | module | owns | paper concept |
//! |---|---|---|
//! | `world` | topology, routing, trace, placement layout | the Grid |
//! | `net` | link fabric, middleware queue | message transport (§3.3) |
//! | `flow` | per-lane flow books over virtual links | bandwidth contention (Case 5) |
//! | `sched` | scheduler stations + stale views | RMS workers, `G(k)` |
//! | `resource` | run queues, execution, DAG release | RP, `F(k)`/`H(k)` |
//! | `estimator` | status batching | Case-3 estimators |
//! | `accounting` | the F/G/H ledger → [`SimReport`] | `E = F/(F+G+H)` |
//! | `kernel` | event routing, policy trampoline | — |
//! | `fel` | lane-keyed scheduling, cross-shard routing | — |
//! | `ctx` | capability-scoped policy API | policy decision costs |
//! | `sim` | templates, pooling, run paths, sharded executor | repeated measurements |

#![warn(missing_docs)]

mod accounting;
mod config;
mod ctx;
mod estimator;
mod event;
mod fel;
mod flow;
mod kernel;
mod msg;
mod net;
mod policy;
mod report;
mod resource;
mod sched;
mod sim;
pub mod timeline;
mod view;
mod world;

pub use config::{BandwidthConfig, Enablers, GridConfig, OverheadCosts, Thresholds, TopologySpec};
pub use ctx::{Clock, Comms, Ctx, Dispatch, Telemetry, Timers};
pub use event::{GridEvent, WorkItem};
pub use gridscale_desim::{QueueDiscipline, QueueTelemetry};
pub use msg::{Msg, PolicyMsg};
pub use policy::{LocalOnly, Policy};
pub use report::SimReport;
pub use sim::{run_simulation, GridSim, QueueSummary, ReplayStats, ShardSummary, SimTemplate};
pub use timeline::{Sample, Timeline};
pub use view::{ClusterView, ResourceView};
