//! The simulator's event alphabet and scheduler work items.
//!
//! Every subsystem — network fabric, scheduler service stations, resource
//! pool, estimators — communicates exclusively by scheduling
//! [`GridEvent`]s on the shared DES queue; none of them call each other
//! directly across time. This file is the complete vocabulary of those
//! interactions.

use crate::msg::{Msg, PolicyMsg};
use gridscale_topology::NodeId;
use gridscale_workload::Job;

/// A unit of RMS work queued at a scheduler's single-server queue.
#[derive(Debug, Clone)]
pub enum WorkItem {
    /// A freshly submitted job: receive + make a scheduling decision.
    Job(Job),
    /// A job transferred in from another cluster.
    TransferIn(Job),
    /// A direct status update from a resource (global resource index).
    Update {
        /// Reporting resource.
        res: u32,
        /// Reported jobs-in-system.
        load: f64,
    },
    /// A batched set of updates relayed by an estimator.
    Batch(Vec<(u32, f64)>),
    /// An inter-scheduler policy message.
    Policy(PolicyMsg),
    /// A policy timer armed via [`Timers::set_timer`](crate::Timers::set_timer).
    Timer(u64),
}

/// The simulator's event alphabet.
#[derive(Debug, Clone)]
pub enum GridEvent {
    /// The `i`-th trace job arrives at its submission host.
    Arrival(u32),
    /// A network message reaches its destination node.
    Deliver {
        /// Destination node.
        to: NodeId,
        /// Payload.
        msg: Msg,
    },
    /// The running job at a resource completes.
    Finish {
        /// Global resource index.
        res: u32,
    },
    /// A resource's periodic status-update timer fires.
    UpdateTick {
        /// Global resource index.
        res: u32,
    },
    /// An estimator's batch-forward timer fires.
    EstFlush {
        /// Estimator index.
        est: u32,
    },
    /// A scheduler finishes processing a work item (its effects happen now).
    SchedWork {
        /// Cluster index of the scheduler.
        sched: u32,
        /// The item processed.
        item: WorkItem,
        /// Service time of the item, charged to `G` on completion — work
        /// still queued when the horizon ends is never charged, so a
        /// saturated scheduler's `G` is bounded by wall-clock busy time.
        cost: f64,
    },
    /// A policy timer fires (it is then queued as scheduler work).
    PolicyTimer {
        /// Cluster index.
        cluster: u32,
        /// Policy-defined tag.
        tag: u64,
    },
    /// The timeline recorder samples system state.
    Sample,
}

impl GridEvent {
    /// Packs the event into one 64-bit word for the event-stream
    /// fingerprint: variant kind in the top byte, a variant-specific
    /// refinement (message/work-item discriminant or timer tag) in the
    /// next 24 bits, and the target index in the low 32.
    ///
    /// The word deliberately omits float payloads (loads, costs): they
    /// are *consequences* of the delivery order the fingerprint pins
    /// down, and folding `(at, seq, word)` per event already
    /// discriminates streams that diverge in any way that matters —
    /// a divergent float implies an earlier divergent delivery.
    pub fn fp_word(&self) -> u64 {
        let (kind, extra, target) = match self {
            GridEvent::Arrival(i) => (1u64, 0u64, *i),
            GridEvent::Deliver { to, msg } => (2, msg_code(msg), *to),
            GridEvent::Finish { res } => (3, 0, *res),
            GridEvent::UpdateTick { res } => (4, 0, *res),
            GridEvent::EstFlush { est } => (5, 0, *est),
            GridEvent::SchedWork { sched, item, .. } => (6, item_code(item), *sched),
            GridEvent::PolicyTimer { cluster, tag } => (7, tag & 0xff_ffff, *cluster),
            GridEvent::Sample => (8, 0, 0),
        };
        (kind << 56) | ((extra & 0xff_ffff) << 32) | target as u64
    }
}

/// Fingerprint refinement for a network message: payload family plus the
/// policy-message discriminant where applicable.
fn msg_code(msg: &Msg) -> u64 {
    match msg {
        Msg::StatusUpdate { .. } => 1,
        Msg::StatusBatch { .. } => 2,
        Msg::Dispatch { .. } => 3,
        Msg::Transfer { .. } => 4,
        Msg::Submit { .. } => 5,
        Msg::Recall { .. } => 6,
        Msg::Policy(p) => 0x100 | policy_code(p),
    }
}

/// Fingerprint refinement for inter-scheduler policy traffic.
fn policy_code(p: &PolicyMsg) -> u64 {
    match p {
        PolicyMsg::Poll { .. } => 1,
        PolicyMsg::PollReply { .. } => 2,
        PolicyMsg::Reserve { .. } => 3,
        PolicyMsg::ReserveCancel { .. } => 4,
        PolicyMsg::ReserveProbe { .. } => 5,
        PolicyMsg::ReserveProbeReply { .. } => 6,
        PolicyMsg::AuctionInvite { .. } => 7,
        PolicyMsg::Bid { .. } => 8,
        PolicyMsg::AuctionAward { .. } => 9,
        PolicyMsg::Volunteer { .. } => 10,
        PolicyMsg::DemandRequest { .. } => 11,
        PolicyMsg::DemandReply { .. } => 12,
        PolicyMsg::LoadReport { .. } => 13,
        PolicyMsg::PlaceRequest { .. } => 14,
        PolicyMsg::PlaceReply { .. } => 15,
    }
}

/// Fingerprint refinement for scheduler work items.
fn item_code(item: &WorkItem) -> u64 {
    match item {
        WorkItem::Job(_) => 1,
        WorkItem::TransferIn(_) => 2,
        WorkItem::Update { .. } => 3,
        WorkItem::Batch(_) => 4,
        WorkItem::Policy(p) => 0x100 | policy_code(p),
        WorkItem::Timer(tag) => 0x200 | (tag & 0xffff),
    }
}
