//! The simulator's event alphabet and scheduler work items.
//!
//! Every subsystem — network fabric, scheduler service stations, resource
//! pool, estimators — communicates exclusively by scheduling
//! [`GridEvent`]s on the shared DES queue; none of them call each other
//! directly across time. This file is the complete vocabulary of those
//! interactions.

use crate::msg::{Msg, PolicyMsg};
use gridscale_topology::NodeId;
use gridscale_workload::Job;

/// A unit of RMS work queued at a scheduler's single-server queue.
#[derive(Debug, Clone)]
pub enum WorkItem {
    /// A freshly submitted job: receive + make a scheduling decision.
    Job(Job),
    /// A job transferred in from another cluster.
    TransferIn(Job),
    /// A direct status update from a resource (global resource index).
    Update {
        /// Reporting resource.
        res: u32,
        /// Reported jobs-in-system.
        load: f64,
    },
    /// A batched set of updates relayed by an estimator.
    Batch(Vec<(u32, f64)>),
    /// An inter-scheduler policy message.
    Policy(PolicyMsg),
    /// A policy timer armed via [`Timers::set_timer`](crate::Timers::set_timer).
    Timer(u64),
}

/// The simulator's event alphabet.
#[derive(Debug, Clone)]
pub enum GridEvent {
    /// The `i`-th trace job arrives at its submission host.
    Arrival(u32),
    /// A network message reaches its destination node.
    Deliver {
        /// Destination node.
        to: NodeId,
        /// Payload.
        msg: Msg,
    },
    /// The running job at a resource completes.
    Finish {
        /// Global resource index.
        res: u32,
    },
    /// A resource's periodic status-update timer fires.
    UpdateTick {
        /// Global resource index.
        res: u32,
    },
    /// An estimator's batch-forward timer fires.
    EstFlush {
        /// Estimator index.
        est: u32,
    },
    /// A scheduler finishes processing a work item (its effects happen now).
    SchedWork {
        /// Cluster index of the scheduler.
        sched: u32,
        /// The item processed.
        item: WorkItem,
        /// Service time of the item, charged to `G` on completion — work
        /// still queued when the horizon ends is never charged, so a
        /// saturated scheduler's `G` is bounded by wall-clock busy time.
        cost: f64,
    },
    /// A policy timer fires (it is then queued as scheduler work).
    PolicyTimer {
        /// Cluster index.
        cluster: u32,
        /// Policy-defined tag.
        tag: u64,
    },
    /// The timeline recorder samples system state.
    Sample,
}
