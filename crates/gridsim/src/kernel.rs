//! The event kernel: owns the subsystems, routes every [`GridEvent`] to
//! its owning subsystem, and trampolines scheduler decisions into the
//! active [`Policy`].
//!
//! The kernel itself makes no scheduling decisions and charges no costs —
//! it only moves events between the link fabric ([`crate::net`]), the
//! scheduler stations ([`crate::sched`]), the resource pool
//! ([`crate::resource`]), and the estimators ([`crate::estimator`]), all
//! of which book into the single [`Accounting`] ledger.
//!
//! # Lane discipline
//!
//! Every event belongs to exactly one **lane** (see
//! [`SimCore::lane_of`]): cluster lanes `0..C`, estimator lanes
//! `C..C+E`, and the global timeline lane `C+E`. Handling an event at
//! lane `l` mutates only lane-`l` state — its RNG stream
//! (`lane_rngs[l]`), token counter, accounting slots, subsystem scratch
//! — and every event it emits is stamped with `src_lane == l`. This is
//! the invariant that makes the event stream a deterministic function of
//! per-lane histories, independent of how lanes are interleaved — and
//! therefore lets the sharded executor run disjoint lane groups on
//! worker threads and still reproduce the sequential fingerprint
//! bit-for-bit.
//!
//! [`Accounting`]: crate::accounting::Accounting

use crate::config::{Enablers, GridConfig};
use crate::ctx::Ctx;
use crate::event::{GridEvent, WorkItem};
use crate::fel::{Fel, LANE_SHIFT};
use crate::msg::Msg;
use crate::net::NetFabric;
use crate::policy::Policy;
use crate::report::SimReport;
use crate::sim::HotState;
use crate::timeline::{Sample, Timeline};
use crate::world::SharedWorld;
use gridscale_desim::{SimRng, SimTime};
use gridscale_topology::NodeId;
use gridscale_workload::JobClass;
use std::sync::Arc;

/// All simulator state except the policy (which is borrowed per event so
/// that policy callbacks can mutably access both).
pub(crate) struct SimCore {
    pub(crate) cfg: Arc<GridConfig>,
    /// The per-run enabler overlay; read instead of `cfg.enablers`.
    pub(crate) enablers: Enablers,
    pub(crate) shared: Arc<SharedWorld>,
    /// Lane → its private RNG stream, forked position-independently from
    /// the simulation root so a lane's draw sequence depends only on its
    /// own history.
    pub(crate) lane_rngs: Vec<SimRng>,
    pub(crate) hot: HotState,
    /// The link fabric (and its per-lane middleware queue state).
    pub(crate) net: NetFabric,
    /// Lane → its correlation-token counter (tokens are
    /// `lane << LANE_SHIFT | count`, unique without global coordination).
    pub(crate) lane_tokens: Vec<u64>,
    /// Lane → running event-stream fingerprint of the events *handled* by
    /// that lane: each delivered `(at, seq, fp_word)` tuple folded through
    /// a splitmix64-style mixer. The run fingerprint is [`fold_lanes`] of
    /// this vector; two runs with equal fingerprints delivered the same
    /// events in the same per-lane order — the runtime half of the
    /// determinism contract (`gridscale audit` checks the static half).
    pub(crate) lane_fp: Vec<u64>,
    /// Optional time-series recorder.
    pub(crate) timeline: Option<Timeline>,
}

/// One round of the splitmix64 finalizer: a cheap, well-mixed 64-bit
/// permutation. Used to fold event tuples into the stream fingerprint.
#[inline]
pub(crate) fn fp_mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Folds the per-lane fingerprints into the single run fingerprint, in
/// lane order. Shared by the sequential report path and the sharded
/// merge (where each lane's slot is non-zero in exactly one shard), so
/// both executors publish the same value for the same event streams.
pub(crate) fn fold_lanes(lane_fp: &[u64]) -> u64 {
    let mut fp = 0u64;
    for (lane, &f) in lane_fp.iter().enumerate() {
        fp = fp_mix(fp ^ f.wrapping_add(fp_mix(lane as u64)));
    }
    fp
}

impl SimCore {
    /// `seed` is the template's RNG root (usually `cfg.seed`; a replica
    /// template overrides it) and `rep` is the replication index: rep 0
    /// draws the per-run streams from `root.fork(3)` exactly as always,
    /// while rep `i > 0` forks one level deeper (`root.fork(3).fork(i)`)
    /// so only the simulation-side streams — arrival lane draws, update /
    /// flush staggers, policy randomness — change between replications of
    /// one shared world.
    pub(crate) fn new(
        cfg: Arc<GridConfig>,
        enablers: Enablers,
        shared: Arc<SharedWorld>,
        hot: HotState,
        seed: u64,
        rep: u64,
    ) -> SimCore {
        let root = SimRng::new(seed);
        let base = root.fork(3);
        let sim_root = if rep == 0 { base } else { base.fork(rep) };
        let n_lanes = shared.layout.n_lanes();
        let lane_rngs = (0..n_lanes).map(|l| sim_root.fork(l as u64)).collect();
        let net = NetFabric::new(enablers.link_delay_factor, cfg.middleware_service, n_lanes);
        SimCore {
            cfg,
            enablers,
            shared,
            lane_rngs,
            hot,
            net,
            lane_tokens: vec![0; n_lanes],
            lane_fp: vec![0; n_lanes],
            timeline: None,
        }
    }

    #[inline]
    pub(crate) fn n_clusters(&self) -> usize {
        self.shared.layout.members.len()
    }

    /// The lane that handles `ev` — the partitioning function of the
    /// sharded executor and the index of every per-lane stream.
    #[inline]
    pub(crate) fn lane_of(&self, ev: &GridEvent) -> usize {
        let l = &self.shared.layout;
        match ev {
            GridEvent::Arrival(i) => {
                (self.shared.trace[*i as usize].submit_point as usize) % l.members.len()
            }
            GridEvent::Deliver { to, .. } => l.node_lane[*to as usize] as usize,
            GridEvent::Finish { res } | GridEvent::UpdateTick { res } => {
                l.res_cluster[*res as usize] as usize
            }
            GridEvent::EstFlush { est } => l.members.len() + *est as usize,
            GridEvent::SchedWork { sched, .. } => *sched as usize,
            GridEvent::PolicyTimer { cluster, .. } => *cluster as usize,
            GridEvent::Sample => l.global_lane(),
        }
    }

    /// Seeds arrivals, update ticks, and estimator flush timers.
    ///
    /// When `owned` is `Some((shard_of_lane, shard))`, only events whose
    /// lane belongs to `shard` are scheduled. The iteration still visits
    /// every slot in global order, but each slot's stagger draw comes
    /// from the *target lane's* RNG and each event from the target
    /// lane's sequence counter, so restricting to owned lanes leaves
    /// every owned lane's stream identical to the sequential run's.
    pub(crate) fn bootstrap(&mut self, fel: &mut Fel, owned: Option<(&[u32], u32)>) {
        let owns = |lane: usize| match owned {
            None => true,
            Some((plan, shard)) => plan[lane] == shard,
        };
        let nc = self.n_clusters();
        match self.shared.dag.as_ref() {
            None => {
                for (i, job) in self.shared.trace.iter().enumerate() {
                    let lane = (job.submit_point as usize) % nc;
                    if owns(lane) {
                        fel.schedule(lane, job.arrival, GridEvent::Arrival(i as u32));
                    }
                }
            }
            Some(dag) => {
                // Only dependency roots arrive on schedule; the rest are
                // released as their parents complete.
                for j in dag.roots() {
                    let job = &self.shared.trace[j as usize];
                    let lane = (job.submit_point as usize) % nc;
                    if owns(lane) {
                        fel.schedule(lane, job.arrival, GridEvent::Arrival(j as u32));
                    }
                }
            }
        }
        let tau = self.enablers.update_interval;
        let nr = self.shared.layout.res_node.len();
        for r in 0..nr {
            let lane = self.shared.layout.res_cluster[r] as usize;
            if !owns(lane) {
                continue;
            }
            let stagger = self.lane_rngs[lane].int_range(1, tau.max(1));
            fel.schedule(
                lane,
                SimTime::from_ticks(stagger),
                GridEvent::UpdateTick { res: r as u32 },
            );
        }
        let flush = self.flush_interval();
        let ne = self.shared.layout.est_node.len();
        for e in 0..ne {
            let lane = nc + e;
            if !owns(lane) {
                continue;
            }
            let stagger = self.lane_rngs[lane].int_range(1, flush.max(1));
            fel.schedule(
                lane,
                SimTime::from_ticks(stagger),
                GridEvent::EstFlush { est: e as u32 },
            );
        }
    }

    fn flush_interval(&self) -> u64 {
        (self.enablers.update_interval / 2).max(1)
    }

    /// A fresh correlation token for `lane`: unique across the run, and
    /// a function of the lane's own issue count only.
    #[inline]
    pub(crate) fn next_token(&mut self, lane: usize) -> u64 {
        self.lane_tokens[lane] += 1;
        ((lane as u64) << LANE_SHIFT) | self.lane_tokens[lane]
    }

    /// Charges decision-time work to scheduler `c` (see
    /// [`SchedulerBank::charge`](crate::sched::SchedulerBank::charge)).
    pub(crate) fn charge_sched(&mut self, c: usize, cost: f64) {
        self.hot.sched.charge(c, cost, &mut self.hot.acct);
    }

    /// Sends one message over the link fabric from `src_lane` (see
    /// [`NetFabric::send`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn send_net(
        &mut self,
        now: SimTime,
        src_lane: usize,
        from: NodeId,
        to: NodeId,
        msg: Msg,
        via_middleware: bool,
        fel: &mut Fel,
    ) {
        self.net.send(
            now,
            src_lane,
            from,
            to,
            msg,
            via_middleware,
            &self.shared,
            &mut self.hot.acct,
            fel,
        );
    }

    fn enqueue_sched_work(&mut self, now: SimTime, c: usize, item: WorkItem, fel: &mut Fel) {
        let members = self.shared.layout.members[c].len() as f64;
        self.hot
            .sched
            .enqueue_work(now, c, item, &self.cfg.costs, members, fel);
    }

    pub(crate) fn handle<P: Policy + ?Sized>(
        &mut self,
        now: SimTime,
        ev: GridEvent,
        fel: &mut Fel,
        policy: &mut P,
    ) {
        match ev {
            GridEvent::Arrival(i) => {
                let mut job = self.shared.trace[i as usize];
                // For dependency-released jobs the effective arrival is the
                // release instant; for independent jobs this is a no-op.
                job.arrival = now;
                let c = (job.submit_point as usize) % self.n_clusters();
                // The submission host is a random resource of the arrival
                // cluster; the submit message pays the network distance to
                // the coordinating scheduler.
                let n_members = self.shared.layout.members[c].len();
                let pick = self.lane_rngs[c].index(n_members);
                let host = self.shared.layout.members[c][pick];
                let from = self.shared.layout.res_node[host as usize];
                let to = self.shared.layout.sched_node[c];
                self.send_net(now, c, from, to, Msg::Submit { job }, false, fel);
            }

            GridEvent::Deliver { to, msg } => self.deliver(now, to, msg, fel),

            GridEvent::Finish { res } => {
                let r = res as usize;
                let rl = self.hot.rp.local(r);
                let job = self.hot.rp.running[rl]
                    .take()
                    .expect("Finish without a running job");
                let cluster = self.shared.layout.res_cluster[r] as usize;
                self.hot.rp.complete_job(
                    now,
                    job,
                    cluster,
                    &self.shared,
                    self.cfg.dag_data_cost,
                    &mut self.net,
                    &mut self.hot.acct,
                    fel,
                );
                if let Some(next) = self.hot.rp.queue[rl].pop_front() {
                    self.hot
                        .rp
                        .start_job(now, r, cluster, next, self.cfg.service_rate, fel);
                }
            }

            GridEvent::UpdateTick { res } => {
                let r = res as usize;
                let rl = self.hot.rp.local(r);
                let lane = self.shared.layout.res_cluster[r] as usize;
                let load = self.hot.rp.load(r);
                let delta = (load - self.hot.rp.last_sent[rl]).abs();
                if delta >= self.cfg.thresholds.suppress_delta {
                    self.hot.rp.last_sent[rl] = load;
                    self.hot.acct.updates_sent += 1;
                    let rnode = self.shared.layout.res_node[r];
                    let dest = match self.shared.map.estimator_for(rnode) {
                        Some(e) => e,
                        None => self.shared.layout.sched_node[lane],
                    };
                    self.send_net(
                        now,
                        lane,
                        rnode,
                        dest,
                        Msg::StatusUpdate { res, load },
                        false,
                        fel,
                    );
                } else {
                    self.hot.acct.updates_suppressed += 1;
                }
                let tau = self.enablers.update_interval;
                fel.schedule(
                    lane,
                    now + SimTime::from_ticks(tau),
                    GridEvent::UpdateTick { res },
                );
            }

            GridEvent::EstFlush { est } => {
                let e = est as usize;
                self.hot.est.flush(
                    now,
                    e,
                    self.cfg.costs.batch_fixed,
                    &self.shared,
                    &mut self.net,
                    &mut self.hot.acct,
                    fel,
                );
                let flush = self.flush_interval();
                let lane = self.n_clusters() + e;
                fel.schedule(
                    lane,
                    now + SimTime::from_ticks(flush),
                    GridEvent::EstFlush { est },
                );
            }

            GridEvent::PolicyTimer { cluster, tag } => {
                self.enqueue_sched_work(now, cluster as usize, WorkItem::Timer(tag), fel);
            }

            GridEvent::Sample => {
                if let Some(mut tl) = self.timeline.take() {
                    let nr = self.shared.layout.res_node.len();
                    let mut sum = 0.0;
                    let mut max_load: f64 = 0.0;
                    for r in 0..nr {
                        let l = self.hot.rp.load(r);
                        sum += l;
                        max_load = max_load.max(l);
                    }
                    let mean_load = sum / nr.max(1) as f64;
                    let rms_backlog = self
                        .hot
                        .sched
                        .next_free
                        .iter()
                        .map(|nf| (nf - now.as_f64()).max(0.0))
                        .fold(0.0, f64::max);
                    let g_busy_so_far: f64 = self
                        .hot
                        .acct
                        .g_sched
                        .iter()
                        .chain(self.hot.acct.g_est.iter())
                        .sum();
                    let sample = Sample {
                        at: now,
                        mean_load,
                        max_load,
                        rms_backlog,
                        f_so_far: self.hot.acct.f_work.iter().sum(),
                        g_busy_so_far,
                        completed: self.hot.acct.completed,
                    };
                    tl.push(sample);
                    let interval = tl.interval();
                    let lane = self.shared.layout.global_lane();
                    fel.schedule(lane, now + SimTime::from_ticks(interval), GridEvent::Sample);
                    self.timeline = Some(tl);
                }
            }

            GridEvent::SchedWork { sched, item, cost } => {
                let c = sched as usize;
                let cl = self.hot.acct.c_local(sched);
                self.hot.acct.g_sched[cl] += cost;
                match item {
                    WorkItem::Job(job) => {
                        let class = job.class(self.cfg.thresholds.t_cpu);
                        let mut ctx = Ctx {
                            core: self,
                            fel,
                            now,
                            lane: c,
                        };
                        match class {
                            JobClass::Local => policy.on_local_job(&mut ctx, c, job),
                            JobClass::Remote => policy.on_remote_job(&mut ctx, c, job),
                        }
                    }
                    WorkItem::TransferIn(job) => {
                        let mut ctx = Ctx {
                            core: self,
                            fel,
                            now,
                            lane: c,
                        };
                        policy.on_transfer_in(&mut ctx, c, job);
                    }
                    WorkItem::Update { res, load } => {
                        self.apply_update(now, c, res, load, fel, policy);
                    }
                    WorkItem::Batch(updates) => {
                        for (res, load) in updates {
                            self.apply_update(now, c, res, load, fel, policy);
                        }
                    }
                    WorkItem::Policy(msg) => {
                        let mut ctx = Ctx {
                            core: self,
                            fel,
                            now,
                            lane: c,
                        };
                        policy.on_policy_msg(&mut ctx, c, msg);
                    }
                    WorkItem::Timer(tag) => {
                        let mut ctx = Ctx {
                            core: self,
                            fel,
                            now,
                            lane: c,
                        };
                        policy.on_timer(&mut ctx, c, tag);
                    }
                }
            }
        }
    }

    fn apply_update<P: Policy + ?Sized>(
        &mut self,
        now: SimTime,
        c: usize,
        res: u32,
        load: f64,
        fel: &mut Fel,
        policy: &mut P,
    ) {
        // Guard against misrouted updates (cluster mismatch cannot happen
        // by construction, but stay defensive).
        if self.shared.layout.res_cluster[res as usize] as usize != c {
            return;
        }
        let pos = self.shared.layout.res_pos[res as usize] as usize;
        let cl = self.hot.sched.local(c);
        self.hot.sched.views[cl].apply_update(pos, load, now);
        let mut ctx = Ctx {
            core: self,
            fel,
            now,
            lane: c,
        };
        policy.on_update(&mut ctx, c, pos, load);
    }

    fn deliver(&mut self, now: SimTime, to: NodeId, msg: Msg, fel: &mut Fel) {
        match msg {
            Msg::Dispatch { job } => {
                let r = self.shared.layout.res_at_node[to as usize];
                debug_assert_ne!(r, u32::MAX, "Dispatch to a non-resource node");
                let cluster = self.shared.layout.res_cluster[r as usize] as usize;
                self.hot.rp.enqueue(
                    now,
                    r as usize,
                    cluster,
                    job,
                    self.cfg.costs.rp_job_control,
                    self.cfg.service_rate,
                    &mut self.hot.acct,
                    fel,
                );
            }
            Msg::Recall { to_cluster } => {
                let r = self.shared.layout.res_at_node[to as usize];
                debug_assert_ne!(r, u32::MAX, "Recall to a non-resource node");
                let rl = self.hot.rp.local(r as usize);
                if let Some(job) = self.hot.rp.queue[rl].pop_back() {
                    self.hot.acct.transfers += 1;
                    let lane = self.shared.layout.res_cluster[r as usize] as usize;
                    let from = self.shared.layout.res_node[r as usize];
                    let dest = self.shared.layout.sched_node[to_cluster as usize];
                    self.send_net(now, lane, from, dest, Msg::Transfer { job }, false, fel);
                }
            }
            Msg::StatusUpdate { res, load } => {
                let e = self.shared.layout.est_at_node[to as usize];
                if e != u32::MAX {
                    let ci = self.shared.layout.res_cluster[res as usize] as usize;
                    self.hot.est.ingest(
                        now,
                        e as usize,
                        res,
                        load,
                        ci,
                        self.cfg.costs.update,
                        &mut self.hot.acct,
                    );
                } else {
                    let c = self.shared.layout.sched_at_node[to as usize];
                    debug_assert_ne!(c, u32::MAX, "update to a non-RMS node");
                    self.enqueue_sched_work(now, c as usize, WorkItem::Update { res, load }, fel);
                }
            }
            Msg::StatusBatch { updates } => {
                let c = self.shared.layout.sched_at_node[to as usize];
                debug_assert_ne!(c, u32::MAX);
                self.enqueue_sched_work(now, c as usize, WorkItem::Batch(updates), fel);
            }
            Msg::Submit { job } => {
                let c = self.shared.layout.sched_at_node[to as usize];
                debug_assert_ne!(c, u32::MAX);
                self.enqueue_sched_work(now, c as usize, WorkItem::Job(job), fel);
            }
            Msg::Transfer { job } => {
                let c = self.shared.layout.sched_at_node[to as usize];
                debug_assert_ne!(c, u32::MAX);
                self.enqueue_sched_work(now, c as usize, WorkItem::TransferIn(job), fel);
            }
            Msg::Policy(pmsg) => {
                let c = self.shared.layout.sched_at_node[to as usize];
                debug_assert_ne!(c, u32::MAX);
                self.hot.acct.policy_msgs += 1;
                self.enqueue_sched_work(now, c as usize, WorkItem::Policy(pmsg), fel);
            }
        }
    }

    /// Folds one delivered event into its handling lane's fingerprint.
    /// Called by the engine's observe hook for *every* delivery, before
    /// handling.
    #[inline]
    pub(crate) fn fold_event(&mut self, at: SimTime, seq: u64, ev: &GridEvent) {
        let lane = self.lane_of(ev);
        let word = fp_mix(at.ticks())
            .wrapping_add(fp_mix(seq))
            .wrapping_add(fp_mix(ev.fp_word()));
        self.lane_fp[lane] = fp_mix(self.lane_fp[lane] ^ word);
    }

    /// Folds the run's ledger into a [`SimReport`].
    pub(crate) fn report(
        &self,
        policy: &str,
        horizon: SimTime,
        events_processed: u64,
    ) -> SimReport {
        let mut report = self.hot.acct.report(
            policy,
            horizon,
            events_processed,
            self.shared.trace.len() as u64,
            &self.hot.rp.busy,
            self.cfg.costs.overhead_weight,
            self.cfg.nodes,
        );
        report.event_fingerprint = fold_lanes(&self.lane_fp);
        report
    }
}
