//! The event kernel: owns the subsystems, routes every [`GridEvent`] to
//! its owning subsystem, and trampolines scheduler decisions into the
//! active [`Policy`].
//!
//! The kernel itself makes no scheduling decisions and charges no costs —
//! it only moves events between the link fabric ([`crate::net`]), the
//! scheduler stations ([`crate::sched`]), the resource pool
//! ([`crate::resource`]), and the estimators ([`crate::estimator`]), all
//! of which book into the single [`Accounting`] ledger.

use crate::config::{Enablers, GridConfig};
use crate::ctx::Ctx;
use crate::event::{GridEvent, WorkItem};
use crate::msg::Msg;
use crate::net::NetFabric;
use crate::policy::Policy;
use crate::report::SimReport;
use crate::sim::HotState;
use crate::timeline::{Sample, Timeline};
use crate::world::SharedWorld;
use gridscale_desim::{EventQueue, SimRng, SimTime};
use gridscale_topology::NodeId;
use gridscale_workload::JobClass;
use std::sync::Arc;

/// All simulator state except the policy (which is borrowed per event so
/// that policy callbacks can mutably access both).
pub(crate) struct SimCore {
    pub(crate) cfg: Arc<GridConfig>,
    /// The per-run enabler overlay; read instead of `cfg.enablers`.
    pub(crate) enablers: Enablers,
    pub(crate) shared: Arc<SharedWorld>,
    pub(crate) rng: SimRng,
    pub(crate) hot: HotState,
    /// The link fabric (and its middleware queue state).
    pub(crate) net: NetFabric,
    pub(crate) token_counter: u64,
    /// Running event-stream fingerprint: every delivered event's
    /// `(at, seq, fp_word)` tuple folded through a splitmix64-style
    /// mixer. Two runs with equal fingerprints delivered the same events
    /// in the same order — the runtime half of the determinism contract
    /// (`gridscale audit` checks the static half).
    pub(crate) fingerprint: u64,
    /// Optional time-series recorder.
    pub(crate) timeline: Option<Timeline>,
}

/// One round of the splitmix64 finalizer: a cheap, well-mixed 64-bit
/// permutation. Used to fold event tuples into the stream fingerprint.
#[inline]
pub(crate) fn fp_mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl SimCore {
    pub(crate) fn new(
        cfg: Arc<GridConfig>,
        enablers: Enablers,
        shared: Arc<SharedWorld>,
        hot: HotState,
    ) -> SimCore {
        let root = SimRng::new(cfg.seed);
        let sim_rng = root.fork(3);
        let net = NetFabric::new(enablers.link_delay_factor, cfg.middleware_service);
        SimCore {
            cfg,
            enablers,
            shared,
            rng: sim_rng,
            hot,
            net,
            token_counter: 0,
            fingerprint: 0,
            timeline: None,
        }
    }

    #[inline]
    pub(crate) fn n_clusters(&self) -> usize {
        self.shared.layout.members.len()
    }

    /// Seeds arrivals, update ticks, and estimator flush timers.
    pub(crate) fn bootstrap(&mut self, queue: &mut EventQueue<GridEvent>) {
        match self.shared.dag.as_ref() {
            None => {
                // One bulk reservation for the whole trace instead of
                // growing the heap arrival by arrival.
                queue.schedule_batch(
                    self.shared
                        .trace
                        .iter()
                        .enumerate()
                        .map(|(i, job)| (job.arrival, GridEvent::Arrival(i as u32))),
                );
            }
            Some(dag) => {
                // Only dependency roots arrive on schedule; the rest are
                // released as their parents complete.
                for j in dag.roots() {
                    queue.schedule(
                        self.shared.trace[j as usize].arrival,
                        GridEvent::Arrival(j as u32),
                    );
                }
            }
        }
        let tau = self.enablers.update_interval;
        let nr = self.shared.layout.res_node.len();
        for r in 0..nr {
            let stagger = self.rng.int_range(1, tau.max(1));
            queue.schedule(
                SimTime::from_ticks(stagger),
                GridEvent::UpdateTick { res: r as u32 },
            );
        }
        let flush = self.flush_interval();
        let ne = self.shared.layout.est_node.len();
        for e in 0..ne {
            let stagger = self.rng.int_range(1, flush.max(1));
            queue.schedule(
                SimTime::from_ticks(stagger),
                GridEvent::EstFlush { est: e as u32 },
            );
        }
    }

    fn flush_interval(&self) -> u64 {
        (self.enablers.update_interval / 2).max(1)
    }

    /// Charges decision-time work to scheduler `c` (see
    /// [`SchedulerBank::charge`]).
    pub(crate) fn charge_sched(&mut self, c: usize, cost: f64) {
        self.hot.sched.charge(c, cost, &mut self.hot.acct);
    }

    /// Sends one message over the link fabric (see [`NetFabric::send`]).
    pub(crate) fn send_net(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        msg: Msg,
        via_middleware: bool,
        queue: &mut EventQueue<GridEvent>,
    ) {
        self.net.send(
            now,
            from,
            to,
            msg,
            via_middleware,
            &self.shared.rt,
            &mut self.hot.acct,
            queue,
        );
    }

    fn enqueue_sched_work(
        &mut self,
        now: SimTime,
        c: usize,
        item: WorkItem,
        queue: &mut EventQueue<GridEvent>,
    ) {
        let members = self.shared.layout.members[c].len() as f64;
        self.hot
            .sched
            .enqueue_work(now, c, item, &self.cfg.costs, members, queue);
    }

    pub(crate) fn handle<P: Policy + ?Sized>(
        &mut self,
        now: SimTime,
        ev: GridEvent,
        queue: &mut EventQueue<GridEvent>,
        policy: &mut P,
    ) {
        match ev {
            GridEvent::Arrival(i) => {
                let mut job = self.shared.trace[i as usize];
                // For dependency-released jobs the effective arrival is the
                // release instant; for independent jobs this is a no-op.
                job.arrival = now;
                let c = (job.submit_point as usize) % self.n_clusters();
                // The submission host is a random resource of the arrival
                // cluster; the submit message pays the network distance to
                // the coordinating scheduler.
                let members = &self.shared.layout.members[c];
                let host = members[self.rng.index(members.len())];
                let from = self.shared.layout.res_node[host as usize];
                let to = self.shared.layout.sched_node[c];
                self.send_net(now, from, to, Msg::Submit { job }, false, queue);
            }

            GridEvent::Deliver { to, msg } => self.deliver(now, to, msg, queue),

            GridEvent::Finish { res } => {
                let r = res as usize;
                let job = self.hot.rp.running[r]
                    .take()
                    .expect("Finish without a running job");
                let cluster = self.shared.layout.res_cluster[r] as usize;
                self.hot.rp.complete_job(
                    now,
                    job,
                    cluster,
                    &self.shared,
                    self.cfg.dag_data_cost,
                    &mut self.hot.acct,
                    queue,
                );
                if let Some(next) = self.hot.rp.queue[r].pop_front() {
                    self.hot
                        .rp
                        .start_job(now, r, next, self.cfg.service_rate, queue);
                }
            }

            GridEvent::UpdateTick { res } => {
                let r = res as usize;
                let load = self.hot.rp.load(r);
                let delta = (load - self.hot.rp.last_sent[r]).abs();
                if delta >= self.cfg.thresholds.suppress_delta {
                    self.hot.rp.last_sent[r] = load;
                    self.hot.acct.updates_sent += 1;
                    let rnode = self.shared.layout.res_node[r];
                    let dest = match self.shared.map.estimator_for(rnode) {
                        Some(e) => e,
                        None => {
                            self.shared.layout.sched_node
                                [self.shared.layout.res_cluster[r] as usize]
                        }
                    };
                    self.send_net(
                        now,
                        rnode,
                        dest,
                        Msg::StatusUpdate { res, load },
                        false,
                        queue,
                    );
                } else {
                    self.hot.acct.updates_suppressed += 1;
                }
                let tau = self.enablers.update_interval;
                queue.schedule(
                    now + SimTime::from_ticks(tau),
                    GridEvent::UpdateTick { res },
                );
            }

            GridEvent::EstFlush { est } => {
                let e = est as usize;
                self.hot.est.flush(
                    now,
                    e,
                    self.cfg.costs.batch_fixed,
                    &self.shared,
                    &mut self.net,
                    &mut self.hot.acct,
                    queue,
                );
                let flush = self.flush_interval();
                queue.schedule(
                    now + SimTime::from_ticks(flush),
                    GridEvent::EstFlush { est },
                );
            }

            GridEvent::PolicyTimer { cluster, tag } => {
                self.enqueue_sched_work(now, cluster as usize, WorkItem::Timer(tag), queue);
            }

            GridEvent::Sample => {
                if let Some(tl) = &mut self.timeline {
                    let nr = self.shared.layout.res_node.len();
                    let mut sum = 0.0;
                    let mut max_load: f64 = 0.0;
                    for r in 0..nr {
                        let l = self.hot.rp.load(r);
                        sum += l;
                        max_load = max_load.max(l);
                    }
                    let mean_load = sum / nr.max(1) as f64;
                    let rms_backlog = self
                        .hot
                        .sched
                        .next_free
                        .iter()
                        .map(|nf| (nf - now.as_f64()).max(0.0))
                        .fold(0.0, f64::max);
                    let g_busy_so_far: f64 = self
                        .hot
                        .acct
                        .g_sched
                        .iter()
                        .chain(self.hot.acct.g_est.iter())
                        .sum();
                    let sample = Sample {
                        at: now,
                        mean_load,
                        max_load,
                        rms_backlog,
                        f_so_far: self.hot.acct.f_work,
                        g_busy_so_far,
                        completed: self.hot.acct.completed,
                    };
                    tl.push(sample);
                    let interval = tl.interval();
                    queue.schedule(now + SimTime::from_ticks(interval), GridEvent::Sample);
                }
            }

            GridEvent::SchedWork { sched, item, cost } => {
                let c = sched as usize;
                self.hot.acct.g_sched[c] += cost;
                match item {
                    WorkItem::Job(job) => {
                        let class = job.class(self.cfg.thresholds.t_cpu);
                        let mut ctx = Ctx {
                            core: self,
                            queue,
                            now,
                        };
                        match class {
                            JobClass::Local => policy.on_local_job(&mut ctx, c, job),
                            JobClass::Remote => policy.on_remote_job(&mut ctx, c, job),
                        }
                    }
                    WorkItem::TransferIn(job) => {
                        let mut ctx = Ctx {
                            core: self,
                            queue,
                            now,
                        };
                        policy.on_transfer_in(&mut ctx, c, job);
                    }
                    WorkItem::Update { res, load } => {
                        self.apply_update(now, c, res, load, queue, policy);
                    }
                    WorkItem::Batch(updates) => {
                        for (res, load) in updates {
                            self.apply_update(now, c, res, load, queue, policy);
                        }
                    }
                    WorkItem::Policy(msg) => {
                        let mut ctx = Ctx {
                            core: self,
                            queue,
                            now,
                        };
                        policy.on_policy_msg(&mut ctx, c, msg);
                    }
                    WorkItem::Timer(tag) => {
                        let mut ctx = Ctx {
                            core: self,
                            queue,
                            now,
                        };
                        policy.on_timer(&mut ctx, c, tag);
                    }
                }
            }
        }
    }

    fn apply_update<P: Policy + ?Sized>(
        &mut self,
        now: SimTime,
        c: usize,
        res: u32,
        load: f64,
        queue: &mut EventQueue<GridEvent>,
        policy: &mut P,
    ) {
        // Guard against misrouted updates (cluster mismatch cannot happen
        // by construction, but stay defensive).
        if self.shared.layout.res_cluster[res as usize] as usize != c {
            return;
        }
        let pos = self.shared.layout.res_pos[res as usize] as usize;
        self.hot.sched.views[c].apply_update(pos, load, now);
        let mut ctx = Ctx {
            core: self,
            queue,
            now,
        };
        policy.on_update(&mut ctx, c, pos, load);
    }

    fn deliver(&mut self, now: SimTime, to: NodeId, msg: Msg, queue: &mut EventQueue<GridEvent>) {
        match msg {
            Msg::Dispatch { job } => {
                let r = self.shared.layout.res_at_node[to as usize];
                debug_assert_ne!(r, u32::MAX, "Dispatch to a non-resource node");
                self.hot.rp.enqueue(
                    now,
                    r as usize,
                    job,
                    self.cfg.costs.rp_job_control,
                    self.cfg.service_rate,
                    &mut self.hot.acct,
                    queue,
                );
            }
            Msg::Recall { to_cluster } => {
                let r = self.shared.layout.res_at_node[to as usize];
                debug_assert_ne!(r, u32::MAX, "Recall to a non-resource node");
                if let Some(job) = self.hot.rp.queue[r as usize].pop_back() {
                    self.hot.acct.transfers += 1;
                    let from = self.shared.layout.res_node[r as usize];
                    let dest = self.shared.layout.sched_node[to_cluster as usize];
                    self.send_net(now, from, dest, Msg::Transfer { job }, false, queue);
                }
            }
            Msg::StatusUpdate { res, load } => {
                let e = self.shared.layout.est_at_node[to as usize];
                if e != u32::MAX {
                    let ci = self.shared.layout.res_cluster[res as usize] as usize;
                    self.hot.est.ingest(
                        now,
                        e as usize,
                        res,
                        load,
                        ci,
                        self.cfg.costs.update,
                        &mut self.hot.acct,
                    );
                } else {
                    let c = self.shared.layout.sched_at_node[to as usize];
                    debug_assert_ne!(c, u32::MAX, "update to a non-RMS node");
                    self.enqueue_sched_work(now, c as usize, WorkItem::Update { res, load }, queue);
                }
            }
            Msg::StatusBatch { updates } => {
                let c = self.shared.layout.sched_at_node[to as usize];
                debug_assert_ne!(c, u32::MAX);
                self.enqueue_sched_work(now, c as usize, WorkItem::Batch(updates), queue);
            }
            Msg::Submit { job } => {
                let c = self.shared.layout.sched_at_node[to as usize];
                debug_assert_ne!(c, u32::MAX);
                self.enqueue_sched_work(now, c as usize, WorkItem::Job(job), queue);
            }
            Msg::Transfer { job } => {
                let c = self.shared.layout.sched_at_node[to as usize];
                debug_assert_ne!(c, u32::MAX);
                self.enqueue_sched_work(now, c as usize, WorkItem::TransferIn(job), queue);
            }
            Msg::Policy(pmsg) => {
                let c = self.shared.layout.sched_at_node[to as usize];
                debug_assert_ne!(c, u32::MAX);
                self.hot.acct.policy_msgs += 1;
                self.enqueue_sched_work(now, c as usize, WorkItem::Policy(pmsg), queue);
            }
        }
    }

    /// Folds one delivered event into the stream fingerprint. Called by
    /// the engine's observe hook for *every* delivery, before handling.
    #[inline]
    pub(crate) fn fold_event(&mut self, at: SimTime, seq: u64, ev: &GridEvent) {
        let word = fp_mix(at.ticks())
            .wrapping_add(fp_mix(seq))
            .wrapping_add(fp_mix(ev.fp_word()));
        self.fingerprint = fp_mix(self.fingerprint ^ word);
    }

    /// Folds the run's ledger into a [`SimReport`].
    pub(crate) fn report(
        &self,
        policy: &str,
        horizon: SimTime,
        events_processed: u64,
    ) -> SimReport {
        let mut report = self.hot.acct.report(
            policy,
            horizon,
            events_processed,
            self.shared.trace.len() as u64,
            &self.hot.rp.busy,
            self.cfg.costs.overhead_weight,
            self.cfg.nodes,
        );
        report.event_fingerprint = self.fingerprint;
        report
    }
}
