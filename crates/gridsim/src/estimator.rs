//! Status estimators (paper Case 3): per-estimator single-server queues
//! that ingest resource status updates, buffer them per destination
//! cluster, and batch-forward on a flush timer. Estimator busy time is
//! the second component of the RMS overhead `G(k)`.

use crate::accounting::Accounting;
use crate::fel::Fel;
use crate::msg::Msg;
use crate::net::NetFabric;
use crate::world::SharedWorld;
use gridscale_desim::SimTime;

/// Per-estimator service state and batching buffers.
pub(crate) struct EstimatorBank {
    /// Estimator → server availability, fractional ticks.
    pub(crate) next_free: Vec<f64>,
    /// Estimator → buffered updates per destination cluster.
    pub(crate) buffer: Vec<Vec<Vec<(u32, f64)>>>,
}

impl EstimatorBank {
    pub(crate) fn new(n_est: usize, n_clusters: usize) -> EstimatorBank {
        EstimatorBank {
            next_free: vec![0.0; n_est],
            buffer: (0..n_est).map(|_| vec![Vec::new(); n_clusters]).collect(),
        }
    }

    /// Restores the pristine post-`new` state, keeping allocations.
    pub(crate) fn reset(&mut self) {
        self.next_free.iter_mut().for_each(|x| *x = 0.0);
        for per_cluster in &mut self.buffer {
            per_cluster.iter_mut().for_each(|b| b.clear());
        }
    }

    /// Estimator `e` ingests one status update for a resource of
    /// `cluster`: charge its server, buffer for the resource's cluster.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn ingest(
        &mut self,
        now: SimTime,
        e: usize,
        res: u32,
        load: f64,
        cluster: usize,
        update_cost: f64,
        acct: &mut Accounting,
    ) {
        acct.g_est[e] += update_cost;
        self.next_free[e] = now.as_f64().max(self.next_free[e]) + update_cost;
        self.buffer[e][cluster].push((res, load));
    }

    /// Estimator `e`'s flush timer fires: forward each non-empty
    /// per-cluster buffer as one batch message to that cluster's
    /// scheduler, charging the batch-fixed cost per batch. Sends are
    /// stamped with the estimator's own lane (`C + e`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn flush(
        &mut self,
        now: SimTime,
        e: usize,
        batch_fixed: f64,
        shared: &SharedWorld,
        net: &mut NetFabric,
        acct: &mut Accounting,
        fel: &mut Fel,
    ) {
        let nc = shared.layout.members.len();
        let src_lane = nc + e;
        for ci in 0..nc {
            if self.buffer[e][ci].is_empty() {
                continue;
            }
            let updates = std::mem::take(&mut self.buffer[e][ci]);
            acct.g_est[e] += batch_fixed;
            self.next_free[e] = now.as_f64().max(self.next_free[e]) + batch_fixed;
            acct.batches += 1;
            let from = shared.layout.est_node[e];
            let to = shared.layout.sched_node[ci];
            net.send(
                now,
                src_lane,
                from,
                to,
                Msg::StatusBatch { updates },
                false,
                &shared.routing,
                acct,
                fel,
            );
        }
    }

    /// Approximate resident bytes (capacity-based; telemetry only).
    pub(crate) fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.next_free.capacity() * 8
            + self
                .buffer
                .iter()
                .flat_map(|per| per.iter())
                .map(|v| v.capacity() * size_of::<(u32, f64)>())
                .sum::<usize>()
    }
}
