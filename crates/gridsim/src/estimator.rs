//! Status estimators (paper Case 3): per-estimator single-server queues
//! that ingest resource status updates, buffer them per destination
//! cluster, and batch-forward on a flush timer. Estimator busy time is
//! the second component of the RMS overhead `G(k)`.

use crate::accounting::Accounting;
use crate::fel::Fel;
use crate::msg::Msg;
use crate::net::NetFabric;
use crate::world::{LaneScope, SharedWorld};
use gridscale_desim::SimTime;
use std::sync::Arc;

/// Per-estimator service state and batching buffers. The outer vectors
/// are sized to the owning [`LaneScope`]'s estimators and indexed by
/// **local** estimator id; the per-destination buffer dimension stays
/// **global**-cluster-wide, because flush destinations can live on
/// foreign shards. Method parameters stay global.
pub(crate) struct EstimatorBank {
    /// Global estimator id → local slot (shared scope table).
    est_local: Arc<Vec<u32>>,
    /// Local estimator → server availability, fractional ticks.
    pub(crate) next_free: Vec<f64>,
    /// Local estimator → buffered updates per (global) destination cluster.
    pub(crate) buffer: Vec<Vec<Vec<(u32, f64)>>>,
}

impl EstimatorBank {
    pub(crate) fn new(scope: &LaneScope, n_clusters: usize) -> EstimatorBank {
        let n_est = scope.estimators.len();
        EstimatorBank {
            est_local: Arc::clone(&scope.est_local),
            next_free: vec![0.0; n_est],
            buffer: (0..n_est).map(|_| vec![Vec::new(); n_clusters]).collect(),
        }
    }

    /// Local slot of global estimator `e` under this bank's scope.
    #[inline(always)]
    pub(crate) fn local(&self, e: usize) -> usize {
        self.est_local[e] as usize
    }

    /// Restores the pristine post-`new` state, keeping allocations.
    pub(crate) fn reset(&mut self) {
        self.next_free.iter_mut().for_each(|x| *x = 0.0);
        for per_cluster in &mut self.buffer {
            per_cluster.iter_mut().for_each(|b| b.clear());
        }
    }

    /// Estimator `e` ingests one status update for a resource of
    /// `cluster`: charge its server, buffer for the resource's cluster.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn ingest(
        &mut self,
        now: SimTime,
        e: usize,
        res: u32,
        load: f64,
        cluster: usize,
        update_cost: f64,
        acct: &mut Accounting,
    ) {
        let el = self.local(e);
        let ea = acct.e_local(e as u32);
        acct.g_est[ea] += update_cost;
        self.next_free[el] = now.as_f64().max(self.next_free[el]) + update_cost;
        self.buffer[el][cluster].push((res, load));
    }

    /// Estimator `e`'s flush timer fires: forward each non-empty
    /// per-cluster buffer as one batch message to that cluster's
    /// scheduler, charging the batch-fixed cost per batch. Sends are
    /// stamped with the estimator's own lane (`C + e`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn flush(
        &mut self,
        now: SimTime,
        e: usize,
        batch_fixed: f64,
        shared: &SharedWorld,
        net: &mut NetFabric,
        acct: &mut Accounting,
        fel: &mut Fel,
    ) {
        let nc = shared.layout.members.len();
        let src_lane = nc + e;
        let el = self.local(e);
        let ea = acct.e_local(e as u32);
        for ci in 0..nc {
            if self.buffer[el][ci].is_empty() {
                continue;
            }
            let updates = std::mem::take(&mut self.buffer[el][ci]);
            acct.g_est[ea] += batch_fixed;
            self.next_free[el] = now.as_f64().max(self.next_free[el]) + batch_fixed;
            acct.batches += 1;
            let from = shared.layout.est_node[e];
            let to = shared.layout.sched_node[ci];
            net.send(
                now,
                src_lane,
                from,
                to,
                Msg::StatusBatch { updates },
                false,
                shared,
                acct,
                fel,
            );
        }
    }

    /// Approximate resident bytes (capacity-based; telemetry only).
    pub(crate) fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.next_free.capacity() * 8
            + self
                .buffer
                .iter()
                .flat_map(|per| per.iter())
                .map(|v| v.capacity() * size_of::<(u32, f64)>())
                .sum::<usize>()
    }
}
