//! F/G/H accounting: the single ledger every subsystem charges into, and
//! the [`SimReport`] emitted from it when a run ends.
//!
//! Paper mapping: `f_work` is the useful work `F(k)` (service demand of
//! jobs finishing within their benefit deadline), `g_sched`/`g_est` are
//! the per-server RMS busy times summed into `G(k)`, and `h_overhead` is
//! the resource pool's job-control cost `H(k)`. The efficiency reported
//! is `E = F/(F+G+H)` (paper eq. 1).
//!
//! # Per-cluster slots and shard merging
//!
//! Every float tally is kept **per cluster** (or per estimator) and only
//! summed — in global slot order — when the report is folded. This is
//! what lets the sharded executor keep one private lane-scoped
//! `Accounting` per shard (vectors sized to the shard's own partition)
//! and combine them bit-exactly afterwards: a shard only ever charges
//! slots of lanes it owns, every global slot is owned by exactly one
//! shard, and [`Accounting::absorb_shard`] scatters each shard's local
//! slots back to their global positions (`0.0 + x == x` for the
//! non-negative tallies booked here) plus identity-respecting
//! [`Welford::merge`] and bin-wise [`Histogram::absorb`]. Both executors
//! therefore fold the same per-slot partial sums in the same order.

use crate::report::SimReport;
use crate::world::LaneScope;
use gridscale_desim::stats::{Histogram, Welford};
use gridscale_desim::SimTime;
use std::sync::Arc;

/// The run's tally sheet. Owned by the hot-state arena and reset (not
/// reallocated) between pooled runs.
///
/// All per-cluster / per-estimator vectors are sized to the owning
/// [`LaneScope`] and indexed by **local** id; callers holding a global id
/// translate once through [`Accounting::c_local`] /
/// [`Accounting::e_local`]. Under the identity scope (sequential engine,
/// single shard) local == global.
pub(crate) struct Accounting {
    /// Global cluster id → local slot (shared scope table).
    cluster_local: Arc<Vec<u32>>,
    /// Global estimator id → local slot (shared scope table).
    est_local: Arc<Vec<u32>>,
    /// Local cluster → useful work (`F`) of jobs completed in deadline.
    pub(crate) f_work: Vec<f64>,
    /// Local cluster → RP job-control cost (`H`) charged at its resources.
    pub(crate) h_overhead: Vec<f64>,
    /// Local cluster → its scheduler's accumulated busy time.
    pub(crate) g_sched: Vec<f64>,
    /// Local estimator → accumulated busy time.
    pub(crate) g_est: Vec<f64>,
    pub(crate) completed: u64,
    pub(crate) succeeded: u64,
    pub(crate) deadline_missed: u64,
    pub(crate) updates_sent: u64,
    pub(crate) updates_suppressed: u64,
    pub(crate) batches: u64,
    pub(crate) policy_msgs: u64,
    pub(crate) transfers: u64,
    pub(crate) dispatches: u64,
    pub(crate) dag_deferred: u64,
    pub(crate) msgs_sent: u64,
    /// Sized flows admitted on virtual links (bandwidth model only).
    pub(crate) net_flows: u64,
    /// Flows that were delayed or throttled by link contention.
    pub(crate) net_flows_contended: u64,
    /// Local cluster → measured transfer busy time (`size / rate`) of
    /// flows sent from its lanes. Also charged into `h_overhead` — this
    /// separate tally is what lets reports split the measured network
    /// share of `H(k)` out of the job-control constant.
    pub(crate) net_transfer_busy: Vec<f64>,
    /// Local cluster → response-time moments of jobs completed there.
    pub(crate) response: Vec<Welford>,
    pub(crate) response_hist: Histogram,
}

impl Accounting {
    pub(crate) fn new(scope: &LaneScope) -> Self {
        let n_sched = scope.clusters.len();
        let n_est = scope.estimators.len();
        Accounting {
            cluster_local: Arc::clone(&scope.cluster_local),
            est_local: Arc::clone(&scope.est_local),
            f_work: vec![0.0; n_sched],
            h_overhead: vec![0.0; n_sched],
            g_sched: vec![0.0; n_sched],
            g_est: vec![0.0; n_est],
            completed: 0,
            succeeded: 0,
            deadline_missed: 0,
            updates_sent: 0,
            updates_suppressed: 0,
            batches: 0,
            policy_msgs: 0,
            transfers: 0,
            dispatches: 0,
            dag_deferred: 0,
            msgs_sent: 0,
            net_flows: 0,
            net_flows_contended: 0,
            net_transfer_busy: vec![0.0; n_sched],
            response: vec![Welford::new(); n_sched],
            response_hist: Histogram::new(100.0, 4000),
        }
    }

    /// Zeroes every tally in place (vector lengths and the histogram's
    /// bins are structural and kept), restoring the `new` state exactly.
    pub(crate) fn reset(&mut self) {
        self.f_work.iter_mut().for_each(|g| *g = 0.0);
        self.h_overhead.iter_mut().for_each(|g| *g = 0.0);
        self.g_sched.iter_mut().for_each(|g| *g = 0.0);
        self.g_est.iter_mut().for_each(|g| *g = 0.0);
        self.completed = 0;
        self.succeeded = 0;
        self.deadline_missed = 0;
        self.updates_sent = 0;
        self.updates_suppressed = 0;
        self.batches = 0;
        self.policy_msgs = 0;
        self.transfers = 0;
        self.dispatches = 0;
        self.dag_deferred = 0;
        self.msgs_sent = 0;
        self.net_flows = 0;
        self.net_flows_contended = 0;
        self.net_transfer_busy.iter_mut().for_each(|g| *g = 0.0);
        self.response.iter_mut().for_each(|w| w.reset());
        self.response_hist.reset();
    }

    /// Local slot of global cluster `c` under this ledger's scope.
    #[inline(always)]
    pub(crate) fn c_local(&self, c: u32) -> usize {
        self.cluster_local[c as usize] as usize
    }

    /// Local slot of global estimator `e` under this ledger's scope.
    #[inline(always)]
    pub(crate) fn e_local(&self, e: u32) -> usize {
        self.est_local[e as usize] as usize
    }

    /// Approximate heap footprint of the tally vectors and histogram.
    pub(crate) fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.f_work.len() + self.h_overhead.len() + self.g_sched.len() + self.g_est.len())
            * size_of::<f64>()
            + self.response.len() * size_of::<Welford>()
            + 4000 * size_of::<u64>() // response_hist bins
    }

    /// The blessed barrier-merge: scatters a shard's lane-scoped ledger
    /// (`other`, indexed by `scope`-local ids) into this **global-scope**
    /// ledger. Every global slot is owned by exactly one shard, so each
    /// scatter target receives exactly one non-trivial partial — addition
    /// onto the `0.0` initial value reproduces the sequential per-slot
    /// sums bit-exactly, [`Welford::merge`] respects its identity, and
    /// the histogram merges bin-wise. Counters add commutatively.
    pub(crate) fn absorb_shard(&mut self, other: &Accounting, scope: &LaneScope) {
        debug_assert_eq!(other.f_work.len(), scope.clusters.len());
        debug_assert_eq!(other.g_est.len(), scope.estimators.len());
        for (lc, &gc) in scope.clusters.iter().enumerate() {
            let gc = gc as usize;
            self.f_work[gc] += other.f_work[lc];
            self.h_overhead[gc] += other.h_overhead[lc];
            self.g_sched[gc] += other.g_sched[lc];
            self.net_transfer_busy[gc] += other.net_transfer_busy[lc];
            self.response[gc].merge(&other.response[lc]);
        }
        for (le, &ge) in scope.estimators.iter().enumerate() {
            self.g_est[ge as usize] += other.g_est[le];
        }
        self.completed += other.completed;
        self.succeeded += other.succeeded;
        self.deadline_missed += other.deadline_missed;
        self.updates_sent += other.updates_sent;
        self.updates_suppressed += other.updates_suppressed;
        self.batches += other.batches;
        self.policy_msgs += other.policy_msgs;
        self.transfers += other.transfers;
        self.dispatches += other.dispatches;
        self.dag_deferred += other.dag_deferred;
        self.msgs_sent += other.msgs_sent;
        self.net_flows += other.net_flows;
        self.net_flows_contended += other.net_flows_contended;
        self.response_hist.absorb(&other.response_hist);
    }

    /// Folds the tallies into a [`SimReport`]. Must run on a ledger whose
    /// scope covers the whole world (sequential run or post-merge
    /// accumulator), so local slot order *is* global slot order.
    ///
    /// Every float fold below is an in-order chain over the per-slot
    /// partial sums (schedulers then estimators for `g_busy_raw`,
    /// cluster order for `F`/`H`/response) — part of the
    /// bit-reproducibility contract, so the summation order must never
    /// change.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn report(
        &self,
        policy: &str,
        horizon: SimTime,
        events_processed: u64,
        jobs_total: u64,
        res_busy: &[f64],
        overhead_weight: f64,
        nodes: usize,
    ) -> SimReport {
        let a = self;
        let g_busy_raw: f64 = a.g_sched.iter().chain(a.g_est.iter()).sum();
        let g = g_busy_raw * overhead_weight;
        let h: f64 = a.h_overhead.iter().sum();
        let f: f64 = a.f_work.iter().sum();
        let efficiency = if f > 0.0 { f / (f + g + h) } else { 0.0 };
        let ht = horizon.as_f64();
        let busy_total: f64 = res_busy.iter().sum();
        let n_res = res_busy.len();
        let mut response = Welford::new();
        for w in &a.response {
            response.merge(w);
        }
        SimReport {
            policy: policy.to_string(),
            f_work: f,
            g_overhead: g,
            h_overhead: h,
            efficiency,
            jobs_total,
            completed: a.completed,
            succeeded: a.succeeded,
            deadline_missed: a.deadline_missed,
            unfinished: jobs_total - a.completed,
            throughput: a.completed as f64 / ht,
            goodput: a.succeeded as f64 / ht,
            mean_response: response.mean(),
            p95_response: a.response_hist.quantile(0.95).unwrap_or(0.0),
            updates_sent: a.updates_sent,
            updates_suppressed: a.updates_suppressed,
            batches: a.batches,
            policy_msgs: a.policy_msgs,
            transfers: a.transfers,
            dispatches: a.dispatches,
            dag_deferred: a.dag_deferred,
            g_busy_raw,
            g_busy_max_scheduler: a.g_sched.iter().copied().fold(0.0, f64::max),
            resource_utilization: if n_res == 0 {
                0.0
            } else {
                busy_total / (n_res as f64 * ht)
            },
            horizon_ticks: horizon.ticks(),
            nodes,
            events_processed,
            msgs_sent: a.msgs_sent,
            net_flows: a.net_flows,
            net_flows_contended: a.net_flows_contended,
            net_transfer_busy: a.net_transfer_busy.iter().sum(),
            // Stamped by SimCore::report, which owns the running hash.
            event_fingerprint: 0,
        }
    }
}
