//! The Grid simulator: event handling, transport, servers, accounting.

use crate::config::{Enablers, GridConfig, Thresholds, TopologySpec};
use crate::msg::{Msg, PolicyMsg};
use crate::policy::Policy;
use crate::report::SimReport;
use crate::timeline::{Sample, Timeline};
use crate::view::ClusterView;
use gridscale_desim::stats::{Histogram, Welford};
use gridscale_desim::{Engine, EventQueue, SimRng, SimTime, World};
use gridscale_topology::generate::{self, LinkParams};
use gridscale_topology::{Graph, GridMap, NodeId, RoutingTable};
use gridscale_workload::{generate as gen_workload, Job, JobClass};
use std::collections::VecDeque;

/// Base link bandwidth used for the transmission-delay term (payload units
/// per tick), matching [`LinkParams::default`].
const BASE_BANDWIDTH: f64 = 100.0;

/// Guard against runaway models: no single run may process more events.
const EVENT_BUDGET: u64 = 200_000_000;

/// A unit of RMS work queued at a scheduler's single-server queue.
#[derive(Debug, Clone)]
pub enum WorkItem {
    /// A freshly submitted job: receive + make a scheduling decision.
    Job(Job),
    /// A job transferred in from another cluster.
    TransferIn(Job),
    /// A direct status update from a resource (global resource index).
    Update {
        /// Reporting resource.
        res: u32,
        /// Reported jobs-in-system.
        load: f64,
    },
    /// A batched set of updates relayed by an estimator.
    Batch(Vec<(u32, f64)>),
    /// An inter-scheduler policy message.
    Policy(PolicyMsg),
    /// A policy timer armed via [`Ctx::set_timer`].
    Timer(u64),
}

/// The simulator's event alphabet.
#[derive(Debug, Clone)]
pub enum GridEvent {
    /// The `i`-th trace job arrives at its submission host.
    Arrival(u32),
    /// A network message reaches its destination node.
    Deliver {
        /// Destination node.
        to: NodeId,
        /// Payload.
        msg: Msg,
    },
    /// The running job at a resource completes.
    Finish {
        /// Global resource index.
        res: u32,
    },
    /// A resource's periodic status-update timer fires.
    UpdateTick {
        /// Global resource index.
        res: u32,
    },
    /// An estimator's batch-forward timer fires.
    EstFlush {
        /// Estimator index.
        est: u32,
    },
    /// A scheduler finishes processing a work item (its effects happen now).
    SchedWork {
        /// Cluster index of the scheduler.
        sched: u32,
        /// The item processed.
        item: WorkItem,
        /// Service time of the item, charged to `G` on completion — work
        /// still queued when the horizon ends is never charged, so a
        /// saturated scheduler's `G` is bounded by wall-clock busy time.
        cost: f64,
    },
    /// A policy timer fires (it is then queued as scheduler work).
    PolicyTimer {
        /// Cluster index.
        cluster: u32,
        /// Policy-defined tag.
        tag: u64,
    },
    /// The timeline recorder samples system state.
    Sample,
}

struct ResState {
    node: NodeId,
    cluster: u32,
    pos: u32,
    queue: VecDeque<Job>,
    running: Option<Job>,
    last_sent_load: f64,
    busy: f64,
}

impl ResState {
    fn load(&self) -> f64 {
        self.queue.len() as f64 + if self.running.is_some() { 1.0 } else { 0.0 }
    }
}

struct SchedState {
    node: NodeId,
    view: ClusterView,
    /// Global resource indices by cluster position.
    members: Vec<u32>,
    /// Work-server availability, fractional ticks.
    next_free: f64,
}

struct EstState {
    node: NodeId,
    next_free: f64,
    /// Buffered updates per destination cluster.
    buffer: Vec<Vec<(u32, f64)>>,
}

struct Accounting {
    f_work: f64,
    h_overhead: f64,
    g_sched: Vec<f64>,
    g_est: Vec<f64>,
    completed: u64,
    succeeded: u64,
    deadline_missed: u64,
    updates_sent: u64,
    updates_suppressed: u64,
    batches: u64,
    policy_msgs: u64,
    transfers: u64,
    dispatches: u64,
    dag_deferred: u64,
    response: Welford,
    response_hist: Histogram,
}

impl Accounting {
    fn new(n_sched: usize, n_est: usize) -> Self {
        Accounting {
            f_work: 0.0,
            h_overhead: 0.0,
            g_sched: vec![0.0; n_sched],
            g_est: vec![0.0; n_est],
            completed: 0,
            succeeded: 0,
            deadline_missed: 0,
            updates_sent: 0,
            updates_suppressed: 0,
            batches: 0,
            policy_msgs: 0,
            transfers: 0,
            dispatches: 0,
            dag_deferred: 0,
            response: Welford::new(),
            response_hist: Histogram::new(100.0, 4000),
        }
    }
}

/// The enabler-independent world of one configuration: topology, routing,
/// grid map, and workload trace.
///
/// Building these dominates setup cost (routing is `O(V·E log V)`, ~50 ms
/// at 1000 nodes) and none of it depends on the scaling *enablers* — only
/// on the scaling *variables*. The annealer therefore builds one template
/// per `(model, k)` point and runs dozens of enabler settings against it.
pub struct SimTemplate {
    cfg: GridConfig,
    shared: std::sync::Arc<SharedWorld>,
    /// Recycled event queues: runs return their (reset) queue here so the
    /// next run reuses the heap allocation instead of growing a fresh one.
    queue_pool: std::sync::Mutex<Vec<EventQueue<GridEvent>>>,
    /// Peak queue length observed by completed runs — the pre-reserve hint
    /// for the next run of this (structurally identical) world.
    cap_hint: std::sync::atomic::AtomicUsize,
}

pub(crate) struct SharedWorld {
    rt: RoutingTable,
    map: GridMap,
    trace: Vec<Job>,
    /// Precedence constraints (paper future-work (b)); `None` reproduces
    /// the paper's evaluated setting (independent jobs).
    dag: Option<gridscale_workload::DependencyGraph>,
}

impl SimTemplate {
    /// Builds the world for `cfg` (topology, routing tables, grid map,
    /// workload trace).
    pub fn new(cfg: &GridConfig) -> SimTemplate {
        cfg.validate().expect("invalid GridConfig");
        let root = SimRng::new(cfg.seed);
        let mut topo_rng = root.fork(1);
        let mut wl_rng = root.fork(2);

        let lp = LinkParams::default();
        let n = cfg.nodes;
        let graph: Graph = match cfg.topology {
            TopologySpec::BarabasiAlbert { m } => {
                generate::barabasi_albert(n, m, lp, &mut topo_rng)
            }
            TopologySpec::Waxman { alpha, beta } => {
                generate::waxman(n, alpha, beta, lp, &mut topo_rng)
            }
            TopologySpec::TransitStub => {
                // Shape ratios: ~10% transit nodes, stubs of ~8.
                let transits = (n / 64).max(1);
                let transit_size = 4;
                let stub_size = 8;
                let stubs_per_transit =
                    ((n - transits * transit_size) / (transits * stub_size)).max(1);
                generate::transit_stub(
                    transits,
                    transit_size,
                    stubs_per_transit,
                    stub_size,
                    lp,
                    &mut topo_rng,
                )
            }
            TopologySpec::Ring => generate::ring(n, lp),
            TopologySpec::Star => generate::star(n, lp),
        };
        let rt = RoutingTable::build(&graph);
        let map = GridMap::build(
            &graph,
            &rt,
            cfg.schedulers,
            cfg.estimators,
            cfg.resource_fraction,
        );
        let mut wl_cfg = cfg.workload.clone();
        wl_cfg.submit_points = map.cluster_count() as u32;
        let trace = gen_workload(&wl_cfg, &mut wl_rng).jobs().to_vec();
        let dag = (cfg.dag_edge_prob > 0.0).then(|| {
            let mut dag_rng = root.fork(4);
            gridscale_workload::DependencyGraph::random(
                trace.len(),
                cfg.dag_edge_prob,
                cfg.dag_max_parents,
                &mut dag_rng,
            )
        });
        SimTemplate {
            cfg: cfg.clone(),
            shared: std::sync::Arc::new(SharedWorld { rt, map, trace, dag }),
            queue_pool: std::sync::Mutex::new(Vec::new()),
            cap_hint: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// The configuration the template was built for.
    pub fn config(&self) -> &GridConfig {
        &self.cfg
    }

    /// Number of jobs in the pre-generated trace.
    pub fn trace_len(&self) -> usize {
        self.shared.trace.len()
    }

    /// Runs one simulation with `enablers` substituted into the template's
    /// configuration. The world (topology, routing, trace) is shared, so
    /// results across enabler settings are directly comparable.
    pub fn run(&self, enablers: crate::config::Enablers, policy: &mut dyn Policy) -> SimReport {
        self.run_inner(enablers, policy, None).0
    }

    /// Like [`SimTemplate::run`], but also records a [`Timeline`] sampled
    /// every `sample_interval` ticks.
    pub fn run_with_timeline(
        &self,
        enablers: crate::config::Enablers,
        policy: &mut dyn Policy,
        sample_interval: u64,
    ) -> (SimReport, Timeline) {
        let (report, tl) = self.run_inner(enablers, policy, Some(sample_interval));
        (report, tl.expect("timeline requested"))
    }

    fn run_inner(
        &self,
        enablers: crate::config::Enablers,
        policy: &mut dyn Policy,
        sample_interval: Option<u64>,
    ) -> (SimReport, Option<Timeline>) {
        let mut cfg = self.cfg.clone();
        cfg.enablers = enablers;
        cfg.validate().expect("invalid enablers");
        let mut core = SimCore::new(cfg, self.shared.clone());
        core.use_middleware = policy.uses_middleware();
        // Check out a recycled queue (or make a fresh one) and pre-reserve
        // the peak occupancy the previous run of this world observed, so
        // the heap never regrows mid-simulation. A reset queue behaves
        // exactly like a new one, keeping runs bit-reproducible.
        let mut queue = self
            .queue_pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        queue.reset();
        queue.reserve(self.cap_hint.load(std::sync::atomic::Ordering::Relaxed));
        let mut engine: Engine<GridEvent> = Engine::from_queue(queue).with_event_budget(EVENT_BUDGET);
        core.bootstrap(engine.queue_mut());
        if let Some(interval) = sample_interval {
            core.timeline = Some(Timeline::new(interval));
            engine
                .queue_mut()
                .schedule(SimTime::from_ticks(interval), GridEvent::Sample);
        }
        {
            let mut ctx = Ctx {
                core: &mut core,
                queue: engine.queue_mut(),
                now: SimTime::ZERO,
            };
            policy.init(&mut ctx);
        }
        let horizon = core.cfg.horizon();
        let mut sim = GridSim { core, policy };
        engine.run_until(&mut sim, horizon);
        let name = sim.policy.name();
        let report = sim.core.report(name, horizon);
        // Recycle the queue allocation and refresh the capacity hint.
        let queue = engine.into_queue();
        self.cap_hint
            .fetch_max(queue.peak_len(), std::sync::atomic::Ordering::Relaxed);
        self.queue_pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(queue);
        (report, sim.core.timeline.take())
    }
}

/// All simulator state except the policy (which is borrowed per event so
/// that policy callbacks can mutably access both).
pub struct SimCore {
    cfg: GridConfig,
    shared: std::sync::Arc<SharedWorld>,
    rng: SimRng,
    resources: Vec<ResState>,
    scheds: Vec<SchedState>,
    ests: Vec<EstState>,
    /// NodeId → resource index (`u32::MAX` if none).
    res_at_node: Vec<u32>,
    /// NodeId → scheduler (cluster) index.
    sched_at_node: Vec<u32>,
    /// NodeId → estimator index.
    est_at_node: Vec<u32>,
    mw_next_free: f64,
    use_middleware: bool,
    token_counter: u64,
    mean_demand: f64,
    /// Per-job countdown of unmet dependencies (empty when no DAG).
    remaining_parents: Vec<u32>,
    /// Optional time-series recorder.
    timeline: Option<Timeline>,
    acct: Accounting,
}

/// The [`World`] adapter: simulator core plus the policy under test.
pub struct GridSim<'p> {
    core: SimCore,
    policy: &'p mut dyn Policy,
}

impl World for GridSim<'_> {
    type Event = GridEvent;
    fn handle(&mut self, now: SimTime, ev: GridEvent, queue: &mut EventQueue<GridEvent>) {
        self.core.handle(now, ev, queue, self.policy);
    }
}

/// The policy-facing API: queries about the acting scheduler's (stale)
/// knowledge plus cost-charged actions. See [`Policy`].
pub struct Ctx<'a> {
    core: &'a mut SimCore,
    queue: &'a mut EventQueue<GridEvent>,
    now: SimTime,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of clusters (= schedulers).
    pub fn clusters(&self) -> usize {
        self.core.scheds.len()
    }

    /// Resources in cluster `c`.
    pub fn cluster_size(&self, c: usize) -> usize {
        self.core.scheds[c].members.len()
    }

    /// The scheduler's (stale) view of its cluster.
    pub fn view(&self, c: usize) -> &ClusterView {
        &self.core.scheds[c].view
    }

    /// Believed mean load (jobs per resource) of cluster `c`.
    pub fn avg_load(&self, c: usize) -> f64 {
        self.core.scheds[c].view.avg_load()
    }

    /// Believed busy fraction (RUS) of cluster `c`.
    pub fn rus(&self, c: usize) -> f64 {
        self.core.scheds[c].view.rus()
    }

    /// Approximate waiting time for a new arrival in cluster `c`.
    pub fn awt(&self, c: usize) -> f64 {
        self.core.scheds[c]
            .view
            .awt(self.core.mean_demand, self.core.cfg.service_rate)
    }

    /// Expected run time of a job with demand `exec` on this Grid's
    /// (homogeneous) resources.
    pub fn ert(&self, exec: SimTime) -> f64 {
        exec.as_f64() / self.core.cfg.service_rate
    }

    /// The analytic mean service demand of the workload (the schedulers'
    /// demand estimate).
    pub fn mean_demand(&self) -> f64 {
        self.core.mean_demand
    }

    /// Resource service rate.
    pub fn service_rate(&self) -> f64 {
        self.core.cfg.service_rate
    }

    /// The active scaling enablers.
    pub fn enablers(&self) -> Enablers {
        self.core.cfg.enablers
    }

    /// The policy thresholds (Table 1).
    pub fn thresholds(&self) -> Thresholds {
        self.core.cfg.thresholds
    }

    /// A fresh correlation token for pending-reply tables.
    pub fn next_token(&mut self) -> u64 {
        self.core.token_counter += 1;
        self.core.token_counter
    }

    /// The simulation's policy-stream RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.core.rng
    }

    /// `n` distinct random clusters other than `c` (fewer if the Grid has
    /// fewer peers).
    pub fn random_remotes(&mut self, c: usize, n: usize) -> Vec<usize> {
        let total = self.core.scheds.len();
        if total <= 1 {
            return Vec::new();
        }
        let picks = self.core.rng.sample_indices(total - 1, n.min(total - 1));
        picks
            .into_iter()
            .map(|i| if i >= c { i + 1 } else { i })
            .collect()
    }

    /// Dispatches `job` to the resource at `pos` of cluster `c`: charges
    /// the dispatch cost, optimistically bumps the view, and sends the job
    /// over the network.
    pub fn dispatch_local(&mut self, c: usize, pos: usize, job: Job) {
        let cost = self.core.cfg.costs.dispatch;
        self.core.charge_sched(c, cost);
        self.core.scheds[c].view.bump(pos, 1.0);
        self.core.acct.dispatches += 1;
        let res = self.core.scheds[c].members[pos];
        let from = self.core.scheds[c].node;
        let to = self.core.resources[res as usize].node;
        self.core
            .send_net(self.now, from, to, Msg::Dispatch { job }, false, self.queue);
    }

    /// Dispatches to the believed least-loaded resource of cluster `c`.
    pub fn dispatch_least_loaded(&mut self, c: usize, job: Job) {
        let pos = self.core.scheds[c]
            .view
            .least_loaded()
            .expect("clusters are never empty (GridMap guarantee)");
        self.dispatch_local(c, pos, job);
    }

    /// Transfers `job` from cluster `from` to cluster `to`; the receiving
    /// scheduler will process it as [`WorkItem::TransferIn`].
    pub fn transfer(&mut self, from: usize, to: usize, job: Job) {
        debug_assert_ne!(from, to, "transfer to self");
        let cost = self.core.cfg.costs.dispatch;
        self.core.charge_sched(from, cost);
        self.core.acct.transfers += 1;
        let f = self.core.scheds[from].node;
        let t = self.core.scheds[to].node;
        let mw = self.core.use_middleware;
        self.core
            .send_net(self.now, f, t, Msg::Transfer { job }, mw, self.queue);
    }

    /// Sends a policy message from cluster `from` to cluster `to`
    /// (middleware-routed for the S-I/R-I/Sy-I family).
    pub fn send_policy(&mut self, from: usize, to: usize, msg: PolicyMsg) {
        debug_assert_ne!(from, to, "policy message to self");
        let cost = self.core.cfg.costs.dispatch;
        self.core.charge_sched(from, cost);
        let f = self.core.scheds[from].node;
        let t = self.core.scheds[to].node;
        let mw = self.core.use_middleware;
        self.core
            .send_net(self.now, f, t, Msg::Policy(msg), mw, self.queue);
    }

    /// Asks the resource at `pos` of cluster `c` to hand one queued job
    /// back for migration to `to_cluster` (no-op at the resource if its
    /// queue is empty by then).
    pub fn recall(&mut self, c: usize, pos: usize, to_cluster: usize) {
        let cost = self.core.cfg.costs.dispatch;
        self.core.charge_sched(c, cost);
        self.core.scheds[c].view.bump(pos, -1.0);
        let res = self.core.scheds[c].members[pos];
        let from = self.core.scheds[c].node;
        let to = self.core.resources[res as usize].node;
        self.core.send_net(
            self.now,
            from,
            to,
            Msg::Recall {
                to_cluster: to_cluster as u32,
            },
            false,
            self.queue,
        );
    }

    /// Arms a policy timer at cluster `c`, `delay` ticks from now; it will
    /// surface as [`Policy::on_timer`] with `tag` after passing through the
    /// scheduler's work queue.
    pub fn set_timer(&mut self, c: usize, delay: SimTime, tag: u64) {
        self.queue.schedule(
            self.now + delay,
            GridEvent::PolicyTimer {
                cluster: c as u32,
                tag,
            },
        );
    }
}

impl SimCore {
    fn new(cfg: GridConfig, shared: std::sync::Arc<SharedWorld>) -> SimCore {
        let root = SimRng::new(cfg.seed);
        let sim_rng = root.fork(3);
        let map = &shared.map;
        let n = cfg.nodes;

        // Dense resource indexing, cluster-major so positions are stable.
        let mut resources = Vec::new();
        let mut res_at_node = vec![u32::MAX; n];
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); map.cluster_count()];
        #[allow(clippy::needless_range_loop)]
        for ci in 0..map.cluster_count() {
            for (pos, &node) in map.cluster_resources(ci).iter().enumerate() {
                let idx = resources.len() as u32;
                res_at_node[node as usize] = idx;
                members[ci].push(idx);
                resources.push(ResState {
                    node,
                    cluster: ci as u32,
                    pos: pos as u32,
                    queue: VecDeque::new(),
                    running: None,
                    last_sent_load: 0.0,
                    busy: 0.0,
                });
            }
        }

        let mut sched_at_node = vec![u32::MAX; n];
        let scheds: Vec<SchedState> = (0..map.cluster_count())
            .map(|ci| {
                let node = map.cluster_scheduler(ci);
                sched_at_node[node as usize] = ci as u32;
                SchedState {
                    node,
                    view: ClusterView::new(members[ci].len()),
                    members: std::mem::take(&mut members[ci]),
                    next_free: 0.0,
                }
            })
            .collect();

        let mut est_at_node = vec![u32::MAX; n];
        let ests: Vec<EstState> = map
            .estimators()
            .iter()
            .enumerate()
            .map(|(ei, &node)| {
                est_at_node[node as usize] = ei as u32;
                EstState {
                    node,
                    next_free: 0.0,
                    buffer: vec![Vec::new(); map.cluster_count()],
                }
            })
            .collect();

        let mean_demand = cfg.workload.exec_time.mean();
        let n_sched = scheds.len();
        let n_est = ests.len();
        let remaining_parents = shared
            .dag
            .as_ref()
            .map(|d| d.parent_counts())
            .unwrap_or_default();
        SimCore {
            cfg,
            shared,
            rng: sim_rng,
            resources,
            scheds,
            ests,
            res_at_node,
            sched_at_node,
            est_at_node,
            mw_next_free: 0.0,
            use_middleware: false,
            token_counter: 0,
            mean_demand,
            remaining_parents,
            timeline: None,
            acct: Accounting::new(n_sched, n_est),
        }
    }

    /// Seeds arrivals, update ticks, and estimator flush timers.
    fn bootstrap(&mut self, queue: &mut EventQueue<GridEvent>) {
        match self.shared.dag.as_ref() {
            None => {
                // One bulk reservation for the whole trace instead of
                // growing the heap arrival by arrival.
                queue.schedule_batch(
                    self.shared
                        .trace
                        .iter()
                        .enumerate()
                        .map(|(i, job)| (job.arrival, GridEvent::Arrival(i as u32))),
                );
            }
            Some(dag) => {
                // Only dependency roots arrive on schedule; the rest are
                // released as their parents complete.
                for j in dag.roots() {
                    queue.schedule(
                        self.shared.trace[j as usize].arrival,
                        GridEvent::Arrival(j as u32),
                    );
                }
            }
        }
        let tau = self.cfg.enablers.update_interval;
        for r in 0..self.resources.len() {
            let stagger = self.rng.int_range(1, tau.max(1));
            queue.schedule(
                SimTime::from_ticks(stagger),
                GridEvent::UpdateTick { res: r as u32 },
            );
        }
        let flush = self.flush_interval();
        for e in 0..self.ests.len() {
            let stagger = self.rng.int_range(1, flush.max(1));
            queue.schedule(
                SimTime::from_ticks(stagger),
                GridEvent::EstFlush { est: e as u32 },
            );
        }
    }

    fn flush_interval(&self) -> u64 {
        (self.cfg.enablers.update_interval / 2).max(1)
    }

    fn charge_sched(&mut self, c: usize, cost: f64) {
        self.acct.g_sched[c] += cost;
        self.scheds[c].next_free += cost;
    }

    /// Network (and optionally middleware) transport of one message.
    fn send_net(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        msg: Msg,
        via_middleware: bool,
        queue: &mut EventQueue<GridEvent>,
    ) {
        let size = msg.size();
        let (lat, hops) = if from == to {
            (0.0, 0.0)
        } else {
            let lat = self
                .shared
                .rt
                .latency(from, to)
                .expect("generated topologies are connected") as f64;
            let hops = self.shared.rt.hops(from, to).unwrap_or(1) as f64;
            (lat, hops)
        };
        let prop = lat * self.cfg.enablers.link_delay_factor;
        let trans = hops.max(1.0) * size / BASE_BANDWIDTH;
        let mut depart = now.as_f64();
        if via_middleware {
            // "A simple queue with infinite capacity and finite but small
            // service time" (paper §3.3).
            let start = depart.max(self.mw_next_free);
            depart = start + self.cfg.middleware_service;
            self.mw_next_free = depart;
        }
        let arrive = SimTime::from_f64((depart + prop + trans).max(now.as_f64() + 1.0));
        queue.schedule(arrive, GridEvent::Deliver { to, msg });
    }

    /// Enqueues a work item at scheduler `c`'s single-server queue; the
    /// item's effects occur when the server finishes it.
    fn enqueue_sched_work(
        &mut self,
        now: SimTime,
        c: usize,
        item: WorkItem,
        queue: &mut EventQueue<GridEvent>,
    ) {
        let costs = &self.cfg.costs;
        let members = self.scheds[c].members.len() as f64;
        let cost = match &item {
            WorkItem::Job(_) | WorkItem::TransferIn(_) => {
                costs.recv_job + costs.decision_base + costs.decision_per_candidate * members
            }
            WorkItem::Update { .. } => costs.update,
            WorkItem::Batch(v) => costs.batch_fixed + costs.batch_per_item * v.len() as f64,
            WorkItem::Policy(_) => costs.policy_msg,
            WorkItem::Timer(_) => costs.timer_check,
        };
        let s = &mut self.scheds[c];
        let start = now.as_f64().max(s.next_free);
        let done = start + cost;
        s.next_free = done;
        queue.schedule(
            SimTime::from_f64(done),
            GridEvent::SchedWork {
                sched: c as u32,
                item,
                cost,
            },
        );
    }

    fn start_job(&mut self, now: SimTime, r: usize, job: Job, queue: &mut EventQueue<GridEvent>) {
        let dur = SimTime::from_f64((job.exec_time.as_f64() / self.cfg.service_rate).max(1.0));
        self.resources[r].busy += dur.as_f64();
        self.resources[r].running = Some(job);
        queue.schedule(now + dur, GridEvent::Finish { res: r as u32 });
    }

    fn res_enqueue(&mut self, now: SimTime, r: usize, job: Job, queue: &mut EventQueue<GridEvent>) {
        self.acct.h_overhead += self.cfg.costs.rp_job_control;
        if self.resources[r].running.is_none() {
            self.start_job(now, r, job, queue);
        } else {
            self.resources[r].queue.push_back(job);
        }
    }

    fn complete_job(
        &mut self,
        now: SimTime,
        job: Job,
        cluster: usize,
        queue: &mut EventQueue<GridEvent>,
    ) {
        let response = (now - job.arrival).as_f64();
        self.acct.completed += 1;
        self.acct.response.push(response);
        self.acct.response_hist.push(response);
        if job.meets_deadline(now) {
            self.acct.succeeded += 1;
            self.acct.f_work += job.exec_time.as_f64();
        } else {
            self.acct.deadline_missed += 1;
        }
        // Precedence extension (paper future-work (b)): releasing children
        // charges the data-management cost of each dependency edge to H —
        // cheap when producer and consumer share a cluster.
        let shared = self.shared.clone();
        if let Some(dag) = shared.dag.as_ref() {
            for &c in dag.children(job.id) {
                let child = &shared.trace[c as usize];
                let child_cluster = (child.submit_point as usize) % self.scheds.len();
                let factor = if child_cluster == cluster { 0.2 } else { 1.0 };
                self.acct.h_overhead += factor * self.cfg.dag_data_cost;
                let rp = &mut self.remaining_parents[c as usize];
                debug_assert!(*rp > 0, "child released twice");
                *rp -= 1;
                if *rp == 0 {
                    let at = child.arrival.max(now);
                    if at > child.arrival {
                        self.acct.dag_deferred += 1;
                    }
                    queue.schedule(at, GridEvent::Arrival(c));
                }
            }
        }
    }

    fn handle(
        &mut self,
        now: SimTime,
        ev: GridEvent,
        queue: &mut EventQueue<GridEvent>,
        policy: &mut dyn Policy,
    ) {
        match ev {
            GridEvent::Arrival(i) => {
                let mut job = self.shared.trace[i as usize];
                // For dependency-released jobs the effective arrival is the
                // release instant; for independent jobs this is a no-op.
                job.arrival = now;
                let c = (job.submit_point as usize) % self.scheds.len();
                // The submission host is a random resource of the arrival
                // cluster; the submit message pays the network distance to
                // the coordinating scheduler.
                let members = &self.scheds[c].members;
                let host = members[self.rng.index(members.len())];
                let from = self.resources[host as usize].node;
                let to = self.scheds[c].node;
                self.send_net(now, from, to, Msg::Submit { job }, false, queue);
            }

            GridEvent::Deliver { to, msg } => self.deliver(now, to, msg, queue),

            GridEvent::Finish { res } => {
                let r = res as usize;
                let job = self.resources[r]
                    .running
                    .take()
                    .expect("Finish without a running job");
                let cluster = self.resources[r].cluster as usize;
                self.complete_job(now, job, cluster, queue);
                if let Some(next) = self.resources[r].queue.pop_front() {
                    self.start_job(now, r, next, queue);
                }
            }

            GridEvent::UpdateTick { res } => {
                let r = res as usize;
                let load = self.resources[r].load();
                let delta = (load - self.resources[r].last_sent_load).abs();
                if delta >= self.cfg.thresholds.suppress_delta {
                    self.resources[r].last_sent_load = load;
                    self.acct.updates_sent += 1;
                    let rnode = self.resources[r].node;
                    let dest = match self.shared.map.estimator_for(rnode) {
                        Some(e) => e,
                        None => self.scheds[self.resources[r].cluster as usize].node,
                    };
                    self.send_net(now, rnode, dest, Msg::StatusUpdate { res, load }, false, queue);
                } else {
                    self.acct.updates_suppressed += 1;
                }
                let tau = self.cfg.enablers.update_interval;
                queue.schedule(now + SimTime::from_ticks(tau), GridEvent::UpdateTick { res });
            }

            GridEvent::EstFlush { est } => {
                let e = est as usize;
                for ci in 0..self.scheds.len() {
                    if self.ests[e].buffer[ci].is_empty() {
                        continue;
                    }
                    let updates = std::mem::take(&mut self.ests[e].buffer[ci]);
                    self.acct.g_est[e] += self.cfg.costs.batch_fixed;
                    self.ests[e].next_free =
                        now.as_f64().max(self.ests[e].next_free) + self.cfg.costs.batch_fixed;
                    self.acct.batches += 1;
                    let from = self.ests[e].node;
                    let to = self.scheds[ci].node;
                    self.send_net(now, from, to, Msg::StatusBatch { updates }, false, queue);
                }
                let flush = self.flush_interval();
                queue.schedule(now + SimTime::from_ticks(flush), GridEvent::EstFlush { est });
            }

            GridEvent::PolicyTimer { cluster, tag } => {
                self.enqueue_sched_work(now, cluster as usize, WorkItem::Timer(tag), queue);
            }

            GridEvent::Sample => {
                if let Some(tl) = self.timeline.as_mut() {
                    let loads: Vec<f64> = self.resources.iter().map(|r| r.load()).collect();
                    let n = loads.len().max(1) as f64;
                    let mean_load = loads.iter().sum::<f64>() / n;
                    let max_load = loads.iter().copied().fold(0.0, f64::max);
                    let rms_backlog = self
                        .scheds
                        .iter()
                        .map(|sc| (sc.next_free - now.as_f64()).max(0.0))
                        .fold(0.0, f64::max);
                    let g_busy_so_far: f64 = self
                        .acct
                        .g_sched
                        .iter()
                        .chain(self.acct.g_est.iter())
                        .sum();
                    tl.push(Sample {
                        at: now,
                        mean_load,
                        max_load,
                        rms_backlog,
                        f_so_far: self.acct.f_work,
                        g_busy_so_far,
                        completed: self.acct.completed,
                    });
                    let interval = tl.interval();
                    queue.schedule(now + SimTime::from_ticks(interval), GridEvent::Sample);
                }
            }

            GridEvent::SchedWork { sched, item, cost } => {
                let c = sched as usize;
                self.acct.g_sched[c] += cost;
                match item {
                    WorkItem::Job(job) => {
                        let class = job.class(self.cfg.thresholds.t_cpu);
                        let mut ctx = Ctx { core: self, queue, now };
                        match class {
                            JobClass::Local => policy.on_local_job(&mut ctx, c, job),
                            JobClass::Remote => policy.on_remote_job(&mut ctx, c, job),
                        }
                    }
                    WorkItem::TransferIn(job) => {
                        let mut ctx = Ctx { core: self, queue, now };
                        policy.on_transfer_in(&mut ctx, c, job);
                    }
                    WorkItem::Update { res, load } => {
                        self.apply_update(now, c, res, load, queue, policy);
                    }
                    WorkItem::Batch(updates) => {
                        for (res, load) in updates {
                            self.apply_update(now, c, res, load, queue, policy);
                        }
                    }
                    WorkItem::Policy(msg) => {
                        let mut ctx = Ctx { core: self, queue, now };
                        policy.on_policy_msg(&mut ctx, c, msg);
                    }
                    WorkItem::Timer(tag) => {
                        let mut ctx = Ctx { core: self, queue, now };
                        policy.on_timer(&mut ctx, c, tag);
                    }
                }
            }
        }
    }

    fn apply_update(
        &mut self,
        now: SimTime,
        c: usize,
        res: u32,
        load: f64,
        queue: &mut EventQueue<GridEvent>,
        policy: &mut dyn Policy,
    ) {
        let r = &self.resources[res as usize];
        // Guard against misrouted updates (cluster mismatch cannot happen
        // by construction, but stay defensive).
        if r.cluster as usize != c {
            return;
        }
        let pos = r.pos as usize;
        self.scheds[c].view.apply_update(pos, load, now);
        let mut ctx = Ctx { core: self, queue, now };
        policy.on_update(&mut ctx, c, pos, load);
    }

    fn deliver(&mut self, now: SimTime, to: NodeId, msg: Msg, queue: &mut EventQueue<GridEvent>) {
        match msg {
            Msg::Dispatch { job } => {
                let r = self.res_at_node[to as usize];
                debug_assert_ne!(r, u32::MAX, "Dispatch to a non-resource node");
                self.res_enqueue(now, r as usize, job, queue);
            }
            Msg::Recall { to_cluster } => {
                let r = self.res_at_node[to as usize];
                debug_assert_ne!(r, u32::MAX, "Recall to a non-resource node");
                if let Some(job) = self.resources[r as usize].queue.pop_back() {
                    self.acct.transfers += 1;
                    let from = self.resources[r as usize].node;
                    let dest = self.scheds[to_cluster as usize].node;
                    self.send_net(now, from, dest, Msg::Transfer { job }, false, queue);
                }
            }
            Msg::StatusUpdate { res, load } => {
                let e = self.est_at_node[to as usize];
                if e != u32::MAX {
                    // Estimator ingest: charge its server, buffer for the
                    // resource's cluster.
                    let cost = self.cfg.costs.update;
                    self.acct.g_est[e as usize] += cost;
                    let est = &mut self.ests[e as usize];
                    est.next_free = now.as_f64().max(est.next_free) + cost;
                    let ci = self.resources[res as usize].cluster as usize;
                    est.buffer[ci].push((res, load));
                } else {
                    let c = self.sched_at_node[to as usize];
                    debug_assert_ne!(c, u32::MAX, "update to a non-RMS node");
                    self.enqueue_sched_work(now, c as usize, WorkItem::Update { res, load }, queue);
                }
            }
            Msg::StatusBatch { updates } => {
                let c = self.sched_at_node[to as usize];
                debug_assert_ne!(c, u32::MAX);
                self.enqueue_sched_work(now, c as usize, WorkItem::Batch(updates), queue);
            }
            Msg::Submit { job } => {
                let c = self.sched_at_node[to as usize];
                debug_assert_ne!(c, u32::MAX);
                self.enqueue_sched_work(now, c as usize, WorkItem::Job(job), queue);
            }
            Msg::Transfer { job } => {
                let c = self.sched_at_node[to as usize];
                debug_assert_ne!(c, u32::MAX);
                self.enqueue_sched_work(now, c as usize, WorkItem::TransferIn(job), queue);
            }
            Msg::Policy(pmsg) => {
                let c = self.sched_at_node[to as usize];
                debug_assert_ne!(c, u32::MAX);
                self.acct.policy_msgs += 1;
                self.enqueue_sched_work(now, c as usize, WorkItem::Policy(pmsg), queue);
            }
        }
    }

    fn report(&self, policy: &str, horizon: SimTime) -> SimReport {
        let a = &self.acct;
        let g_busy_raw: f64 = a.g_sched.iter().chain(a.g_est.iter()).sum();
        let g = g_busy_raw * self.cfg.costs.overhead_weight;
        let h = a.h_overhead;
        let f = a.f_work;
        let efficiency = if f > 0.0 { f / (f + g + h) } else { 0.0 };
        let ht = horizon.as_f64();
        let res_busy: f64 = self.resources.iter().map(|r| r.busy).sum();
        SimReport {
            policy: policy.to_string(),
            f_work: f,
            g_overhead: g,
            h_overhead: h,
            efficiency,
            jobs_total: self.shared.trace.len() as u64,
            completed: a.completed,
            succeeded: a.succeeded,
            deadline_missed: a.deadline_missed,
            unfinished: self.shared.trace.len() as u64 - a.completed,
            throughput: a.completed as f64 / ht,
            goodput: a.succeeded as f64 / ht,
            mean_response: a.response.mean(),
            p95_response: a.response_hist.quantile(0.95).unwrap_or(0.0),
            updates_sent: a.updates_sent,
            updates_suppressed: a.updates_suppressed,
            batches: a.batches,
            policy_msgs: a.policy_msgs,
            transfers: a.transfers,
            dispatches: a.dispatches,
            dag_deferred: a.dag_deferred,
            g_busy_raw,
            g_busy_max_scheduler: a.g_sched.iter().copied().fold(0.0, f64::max),
            resource_utilization: if self.resources.is_empty() {
                0.0
            } else {
                res_busy / (self.resources.len() as f64 * ht)
            },
            horizon_ticks: horizon.ticks(),
            nodes: self.cfg.nodes,
        }
    }
}

/// Runs one complete Grid simulation of `policy` under `cfg` and returns
/// the measured report.
///
/// The run is a pure function of `(cfg, policy)` — identical inputs give
/// identical reports.
pub fn run_simulation(cfg: &GridConfig, policy: &mut dyn Policy) -> SimReport {
    SimTemplate::new(cfg).run(cfg.enablers, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::LocalOnly;
    use gridscale_workload::WorkloadConfig;

    /// A small, fast configuration for machinery tests.
    fn small_cfg() -> GridConfig {
        GridConfig {
            nodes: 40,
            schedulers: 3,
            estimators: 0,
            workload: WorkloadConfig {
                arrival_rate: 0.02,
                duration: SimTime::from_ticks(20_000),
                ..WorkloadConfig::default()
            },
            drain: SimTime::from_ticks(30_000),
            ..GridConfig::default()
        }
    }

    #[test]
    fn local_only_completes_jobs() {
        let cfg = small_cfg();
        let mut p = LocalOnly;
        let r = run_simulation(&cfg, &mut p);
        assert!(r.jobs_total > 200, "trace has jobs ({})", r.jobs_total);
        assert!(
            r.completed as f64 >= 0.95 * r.jobs_total as f64,
            "most jobs complete: {}/{}",
            r.completed,
            r.jobs_total
        );
        assert!(r.succeeded > 0);
        assert_eq!(r.completed, r.succeeded + r.deadline_missed);
        assert_eq!(r.jobs_total, r.completed + r.unfinished);
        assert!(r.f_work > 0.0);
        assert!(r.g_overhead > 0.0);
        assert!(r.efficiency > 0.0 && r.efficiency < 1.0);
    }

    #[test]
    fn deterministic_runs() {
        let cfg = small_cfg();
        let a = run_simulation(&cfg, &mut LocalOnly);
        let b = run_simulation(&cfg, &mut LocalOnly);
        assert_eq!(a.f_work, b.f_work);
        assert_eq!(a.g_overhead, b.g_overhead);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.updates_sent, b.updates_sent);
        assert_eq!(a.mean_response, b.mean_response);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = small_cfg();
        let mut cfg2 = cfg.clone();
        cfg2.seed = cfg.seed + 1;
        let a = run_simulation(&cfg, &mut LocalOnly);
        let b = run_simulation(&cfg2, &mut LocalOnly);
        assert_ne!(a.f_work, b.f_work);
    }

    #[test]
    fn updates_flow_and_suppression_works() {
        let cfg = small_cfg();
        let r = run_simulation(&cfg, &mut LocalOnly);
        assert!(r.updates_sent > 0, "resources report status");
        assert!(
            r.updates_suppressed > 0,
            "idle resources suppress unchanged loads"
        );
        assert_eq!(r.batches, 0, "no estimators configured");
    }

    #[test]
    fn estimators_batch_updates() {
        let mut cfg = small_cfg();
        cfg.estimators = 2;
        let r = run_simulation(&cfg, &mut LocalOnly);
        assert!(r.batches > 0, "estimators forward batches");
        assert!(r.updates_sent > 0);
    }

    #[test]
    fn longer_update_interval_reduces_overhead() {
        let mut fast = small_cfg();
        fast.enablers.update_interval = 50;
        let mut slow = small_cfg();
        slow.enablers.update_interval = 2000;
        let rf = run_simulation(&fast, &mut LocalOnly);
        let rs = run_simulation(&slow, &mut LocalOnly);
        assert!(
            rf.g_overhead > rs.g_overhead,
            "τ=50 ⇒ G {} should exceed τ=2000 ⇒ G {}",
            rf.g_overhead,
            rs.g_overhead
        );
        assert!(rf.updates_sent > rs.updates_sent);
    }

    #[test]
    fn saturated_rp_misses_deadlines() {
        let mut cfg = small_cfg();
        cfg.workload.arrival_rate = 0.2; // far beyond RP capacity
        let r = run_simulation(&cfg, &mut LocalOnly);
        assert!(
            r.deadline_missed + r.unfinished > r.succeeded,
            "overload must hurt: ok={} missed={} unfinished={}",
            r.succeeded,
            r.deadline_missed,
            r.unfinished
        );
    }

    #[test]
    fn central_shape_single_scheduler() {
        let mut cfg = small_cfg();
        cfg.schedulers = 1;
        let r = run_simulation(&cfg, &mut LocalOnly);
        assert!(r.completed > 0);
        assert!(
            (r.g_busy_max_scheduler - r.g_busy_raw).abs() < 1e-9,
            "all overhead on the single scheduler"
        );
    }

    #[test]
    fn template_reruns_recycle_queues_without_changing_results() {
        let cfg = small_cfg();
        let template = SimTemplate::new(&cfg);
        // First run populates the pool and the capacity hint...
        let a = template.run(cfg.enablers, &mut LocalOnly);
        let hint = template
            .cap_hint
            .load(std::sync::atomic::Ordering::Relaxed);
        assert!(hint > 0, "a completed run records its peak queue length");
        assert_eq!(
            template
                .queue_pool
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len(),
            1,
            "the run's queue returns to the pool"
        );
        // ...and the recycled second run is bit-identical.
        let b = template.run(cfg.enablers, &mut LocalOnly);
        assert_eq!(a.f_work, b.f_work);
        assert_eq!(a.g_overhead, b.g_overhead);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_response, b.mean_response);
    }

    #[test]
    fn report_invariants() {
        let r = run_simulation(&small_cfg(), &mut LocalOnly);
        assert!(r.resource_utilization > 0.0 && r.resource_utilization < 1.0);
        assert!(r.mean_response > 0.0);
        assert!(r.p95_response >= r.mean_response * 0.5);
        assert!(r.throughput >= r.goodput);
        assert!(r.g_busy_max_scheduler <= r.g_busy_raw + 1e-9);
        assert!(r.bottleneck_utilization() < 1.05);
    }
}
